//! Node-count scaling sweeps: how AllReduce and COARSE behave as the
//! cluster grows across the 25 Gbit/s network (extends Fig. 16f).

use coarse_fabric::machines::{aws_v100_cluster, PartitionScheme};
use coarse_models::profile::ModelProfile;

use crate::config::TrainResult;
use crate::{simulate_allreduce, simulate_coarse};

/// One point of the node-scaling sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalingPoint {
    /// Cluster size in nodes (4 workers each).
    pub nodes: u32,
    /// AllReduce result at this size.
    pub allreduce: TrainResult,
    /// COARSE result at this size.
    pub coarse: TrainResult,
}

impl ScalingPoint {
    /// COARSE throughput advantage at this size.
    pub fn coarse_gain(&self) -> f64 {
        self.coarse.throughput / self.allreduce.throughput
    }
}

/// Sweeps cluster sizes for `model` at `batch` per GPU.
///
/// # Panics
///
/// Panics if `node_counts` is empty or contains zero.
pub fn node_scaling(model: &ModelProfile, batch: u32, node_counts: &[u32]) -> Vec<ScalingPoint> {
    assert!(!node_counts.is_empty(), "need at least one cluster size");
    node_counts
        .iter()
        .map(|&nodes| {
            assert!(nodes >= 1, "cluster sizes must be positive");
            let machine = aws_v100_cluster(nodes);
            let part = machine.partition(PartitionScheme::OneToOne);
            ScalingPoint {
                nodes,
                allreduce: simulate_allreduce(&machine, &part, model, batch, 2),
                coarse: simulate_coarse(&machine, &part, model, batch, 2),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use coarse_models::zoo::bert_large;

    #[test]
    fn scaling_sweep_shapes() {
        let points = node_scaling(&bert_large(), 2, &[1, 2]);
        assert_eq!(points.len(), 2);
        // Per-iteration time grows sharply: sync is network-bound. This is
        // exactly the paper's Fig. 16f point — scaling BERT-Large across a
        // 25 Gbit network is so inefficient that a single node with a
        // larger batch wins.
        assert!(points[1].coarse.iteration_time > points[0].coarse.iteration_time * 2);
        assert!(points[1].allreduce.iteration_time > points[0].allreduce.iteration_time * 2);
        // Scaling efficiency is below 1: doubling workers does not double
        // aggregate throughput.
        let efficiency = points[1].coarse.throughput / (2.0 * points[0].coarse.throughput);
        assert!(efficiency < 0.75, "efficiency {efficiency}");
        // COARSE keeps an advantage at both sizes.
        for p in &points {
            assert!(
                p.coarse_gain() > 1.0,
                "{} nodes: gain {}",
                p.nodes,
                p.coarse_gain()
            );
        }
    }
}
