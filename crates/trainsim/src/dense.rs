//! The DENSE baseline (Fig. 5): a single CCI memory device hosts the global
//! parameters; every worker updates them coherently and pulls the published
//! values back. All parameter traffic funnels through that one device.
//!
//! Rate derivation follows §V-B: "we assume the GPU Direct method achieves
//! full serial bus bandwidth, and use correlated speedup/slowdown to derive
//! CCI and GPU Indirect bandwidth in the DENSE system". Concretely, the
//! coherent CCI access path runs at the prototype's measured ratio of the
//! machine's own bus bandwidth (the ~4× slowdown of CCI writes vs. direct
//! DMA, Figs. 3/13b), further inflated by the coherence cost of `p` sharers
//! on one region (§III-D). On the no-p2p T4 machine the probe measures the
//! staged GPU→CPU→device path, which halves the base rate automatically.

use coarse_cci::coherence::sharing_overhead_factor;
use coarse_core::resilience::ResiliencePolicy;
use coarse_fabric::machines::{Machine, Partition};
use coarse_fabric::probe;
use coarse_fabric::topology::{LinkClass, LinkMask};
use coarse_models::profile::ModelProfile;
use coarse_models::training::IterationPlan;
use coarse_simcore::critpath::{class as crit_class, CritPath, NodeId};
use coarse_simcore::faults::FaultPlan;
use coarse_simcore::time::{SimDuration, SimTime};
use coarse_simcore::timeline::ResourceTimeline;
use coarse_simcore::units::ByteSize;

use crate::config::TrainResult;
use crate::gpu_for;

/// The prototype's measured slowdown of coherent CCI access relative to
/// direct DMA at large transfers (Fig. 3: 4× on writes).
pub const CCI_COHERENT_SLOWDOWN: f64 = 4.0;

const PCIE_ONLY: LinkMask = LinkMask::only(LinkClass::Pcie);

/// Simulates DENSE training. Pushes stream out as the backward pass emits
/// gradients (they still serialize on the device's single ingress path);
/// pulls follow once a tensor has every worker's contribution; the next
/// iteration starts when the slowest pull lands.
pub fn simulate_dense(
    machine: &Machine,
    partition: &Partition,
    model: &ModelProfile,
    batch_per_gpu: u32,
    iterations: u32,
) -> TrainResult {
    dense_inner(machine, partition, model, batch_per_gpu, iterations, None)
}

/// [`simulate_dense`] with a critical-path recorder attached: each iteration
/// registers a `compute` node, every push/pull on the parameter device a
/// `sync` node FIFO-ordered on the `dense ingress` / `dense egress`
/// resources, and the iteration boundary is marked as a sink — so
/// [`CritPath::analyze`] attributes DENSE's funnel serialization.
/// Observation-only — the result is identical with or without the recorder.
///
/// # Panics
///
/// Panics under the same conditions as [`simulate_dense`].
pub fn simulate_dense_explained(
    machine: &Machine,
    partition: &Partition,
    model: &ModelProfile,
    batch_per_gpu: u32,
    iterations: u32,
    critpath: &CritPath,
) -> TrainResult {
    dense_inner(
        machine,
        partition,
        model,
        batch_per_gpu,
        iterations,
        Some(critpath),
    )
}

fn dense_inner(
    machine: &Machine,
    partition: &Partition,
    model: &ModelProfile,
    batch_per_gpu: u32,
    iterations: u32,
    critpath: Option<&CritPath>,
) -> TrainResult {
    assert!(
        iterations >= 2,
        "need ≥2 iterations for a steady-state period"
    );
    let gpu = gpu_for(machine.sku());
    let plan = IterationPlan::new(model, &gpu, batch_per_gpu);
    let workers = partition.workers.len();
    // The single global parameter device of the DENSE design.
    let device = partition.mem_devices[0];

    // Base rates: what the bus actually delivers from each worker to the
    // device (staged through the CPU on non-p2p machines; the local worker
    // may sit on a slower hairpin path than remote ones).
    let coherence = sharing_overhead_factor(workers + 1);
    let rates: Vec<f64> = partition
        .workers
        .iter()
        .map(|&w| {
            let bus = probe::measure_unidirectional(
                machine.topology(),
                w,
                device,
                ByteSize::mib(64),
                PCIE_ONLY,
            );
            // Coherent-access rate, per the prototype's correlated slowdown
            // plus sharer-dependent coherence traffic.
            bus / CCI_COHERENT_SLOWDOWN / coherence
        })
        .collect();
    let access_time =
        |size: ByteSize, w: usize| SimDuration::from_secs_f64(size.as_f64() / rates[w]);

    // The device's serial-bus interface: one timeline per direction.
    let mut ingress = ResourceTimeline::new();
    let mut egress = ResourceTimeline::new();

    let mut start = SimTime::ZERO;
    let mut first_period_end = SimTime::ZERO;
    let mut prev_sink: Option<NodeId> = None;
    for k in 0..iterations {
        let forward_end = start + plan.forward_time();
        let mut iter_end = start + plan.compute_time();
        // The iteration's forward+backward pass; gradients are emitted
        // part-way through, so pushes depend on it.
        let compute = critpath.map(|cp| {
            let deps: Vec<NodeId> = prev_sink.into_iter().collect();
            cp.span(
                crit_class::COMPUTE,
                format!("fwd+bwd iter {k}"),
                start,
                start + plan.compute_time(),
                &deps,
            )
        });
        let mut last_egress: Option<NodeId> = None;
        for ev in plan.gradients() {
            let tensor = &model.tensors()[ev.tensor];
            // Each worker pushes this tensor when its backward pass emits it.
            let emitted = forward_end + ev.ready;
            let mut all_pushed = emitted;
            let mut last_ingress: Option<NodeId> = None;
            for w in 0..workers {
                let grant = ingress.reserve(emitted, access_time(tensor.byte_size(), w));
                all_pushed = all_pushed.max(grant.end);
                if let Some(cp) = critpath {
                    let deps: Vec<NodeId> = compute.into_iter().collect();
                    last_ingress = Some(cp.span_on(
                        crit_class::SYNC,
                        format!("push t{} w{w}", ev.tensor),
                        "dense ingress",
                        grant.start,
                        grant.end,
                        &deps,
                    ));
                }
            }
            // Publication, then every worker pulls the averaged value.
            for w in 0..workers {
                let grant = egress.reserve(all_pushed, access_time(tensor.byte_size(), w));
                iter_end = iter_end.max(grant.end);
                if let Some(cp) = critpath {
                    // The pull waits for every worker's push (the ingress
                    // timeline is FIFO, so the tensor's last push carries
                    // the publication time).
                    let deps: Vec<NodeId> = last_ingress.into_iter().collect();
                    last_egress = Some(cp.span_on(
                        crit_class::SYNC,
                        format!("pull t{} w{w}", ev.tensor),
                        "dense egress",
                        grant.start,
                        grant.end,
                        &deps,
                    ));
                }
            }
        }
        if let Some(cp) = critpath {
            let deps: Vec<NodeId> = compute.into_iter().chain(last_egress).collect();
            let sink = cp.instant(
                crit_class::SYNC,
                format!("iteration {k} boundary"),
                iter_end,
                &deps,
            );
            cp.mark_iteration(k as u64, sink);
            prev_sink = Some(sink);
        }
        if k == 0 {
            first_period_end = iter_end;
        }
        start = iter_end;
    }
    let period = (start - first_period_end) / (iterations as u64 - 1).max(1);
    let global_batch = batch_per_gpu * workers as u32;
    TrainResult::new(period, plan.compute_time(), global_batch)
}

/// Simulates DENSE training under an injected [`FaultPlan`].
///
/// DENSE has a single parameter device and no decentralized fallback, so
/// its resilience story is thinner than COARSE's: worker↔device accesses
/// are stretched by active link degradations and stalled by proxy stalls,
/// and a dropout of the parameter device fails the service over to the
/// next memory device of the partition (one detection timeout each). An
/// **empty plan takes the fast path** and is byte-identical to
/// [`simulate_dense`].
///
/// # Panics
///
/// Same conditions as [`simulate_dense`], plus running out of surviving
/// memory devices (DENSE cannot degrade to GPU-only synchronization).
pub fn simulate_dense_faulty(
    machine: &Machine,
    partition: &Partition,
    model: &ModelProfile,
    batch_per_gpu: u32,
    iterations: u32,
    plan: &FaultPlan,
    policy: &ResiliencePolicy,
) -> TrainResult {
    if plan.is_empty() {
        return simulate_dense(machine, partition, model, batch_per_gpu, iterations);
    }
    assert!(
        iterations >= 2,
        "need ≥2 iterations for a steady-state period"
    );
    let gpu = gpu_for(machine.sku());
    let iter_plan = IterationPlan::new(model, &gpu, batch_per_gpu);
    let workers = partition.workers.len();
    let coherence = sharing_overhead_factor(workers + 1);
    // Rates are re-probed (on the healthy fabric) whenever the service
    // fails over to a different device.
    let rates_for = |device| -> Vec<f64> {
        partition
            .workers
            .iter()
            .map(|&w| {
                let bus = probe::measure_unidirectional(
                    machine.topology(),
                    w,
                    device,
                    ByteSize::mib(64),
                    PCIE_ONLY,
                );
                bus / CCI_COHERENT_SLOWDOWN / coherence
            })
            .collect()
    };
    let mut device_slot = 0usize;
    let mut device = partition.mem_devices[device_slot];
    let mut rates = rates_for(device);

    let mut ingress = ResourceTimeline::new();
    let mut egress = ResourceTimeline::new();
    let mut start = SimTime::ZERO;
    let mut first_period_end = SimTime::ZERO;
    for k in 0..iterations {
        // Detect a dropped parameter device at the round boundary and fail
        // over to the next memory device of the partition.
        while plan.device_down(device.index() as u32, start) {
            device_slot += 1;
            assert!(
                device_slot < partition.mem_devices.len(),
                "DENSE ran out of surviving parameter devices"
            );
            device = partition.mem_devices[device_slot];
            rates = rates_for(device);
            start += policy.detect_timeout;
        }
        let access_time = |size: ByteSize, w: usize, at: SimTime, workers_dev: u32| {
            let base = size.as_f64() / rates[w];
            let factor = plan.degradation(workers_dev, device.index() as u32, at);
            let mut d = SimDuration::from_secs_f64(base);
            if factor != 1.0 {
                d = d.mul_f64(factor);
            }
            d + plan.stall(device.index() as u32, at)
        };
        let forward_end = start + iter_plan.forward_time();
        let mut iter_end = start + iter_plan.compute_time();
        for ev in iter_plan.gradients() {
            let tensor = &model.tensors()[ev.tensor];
            let emitted = forward_end + ev.ready;
            let mut all_pushed = emitted;
            for (w, &worker) in partition.workers.iter().enumerate() {
                let grant = ingress.reserve(
                    emitted,
                    access_time(tensor.byte_size(), w, emitted, worker.index() as u32),
                );
                all_pushed = all_pushed.max(grant.end);
            }
            for (w, &worker) in partition.workers.iter().enumerate() {
                let grant = egress.reserve(
                    all_pushed,
                    access_time(tensor.byte_size(), w, all_pushed, worker.index() as u32),
                );
                iter_end = iter_end.max(grant.end);
            }
        }
        if k == 0 {
            first_period_end = iter_end;
        }
        start = iter_end;
    }
    let period = (start - first_period_end) / (iterations as u64 - 1).max(1);
    let global_batch = batch_per_gpu * workers as u32;
    TrainResult::new(period, iter_plan.compute_time(), global_batch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use coarse_fabric::machines::{aws_t4, aws_v100, PartitionScheme};
    use coarse_models::zoo::{bert_large, resnet50};

    #[test]
    fn dense_is_communication_bound_for_bert() {
        let m = aws_v100();
        let p = m.partition(PartitionScheme::OneToOne);
        let r = simulate_dense(&m, &p, &bert_large(), 2, 3);
        // 4 workers × 2 × 1.25 GiB through a ~2.7 GiB/s coherent path:
        // seconds of blocked communication vs ~0.25 s compute.
        assert!(
            r.comm_fraction() > 0.8,
            "comm fraction {}",
            r.comm_fraction()
        );
        assert!(r.blocked_comm.as_secs_f64() > 2.0);
    }

    #[test]
    fn indirect_path_hurts_t4() {
        let t4 = aws_t4();
        let pt = t4.partition(PartitionScheme::OneToOne);
        let v100 = aws_v100();
        let pv = v100.partition(PartitionScheme::OneToOne);
        let model = resnet50();
        let t = simulate_dense(&t4, &pt, &model, 64, 3);
        let v = simulate_dense(&v100, &pv, &model, 64, 3);
        assert!(
            t.blocked_comm > v.blocked_comm,
            "staged T4 pushes must cost more: {:?} vs {:?}",
            t.blocked_comm,
            v.blocked_comm
        );
    }

    #[test]
    fn blocked_comm_scales_with_payload() {
        let m = aws_v100();
        let p = m.partition(PartitionScheme::OneToOne);
        let small = simulate_dense(&m, &p, &resnet50(), 64, 3);
        let large = simulate_dense(&m, &p, &bert_large(), 2, 3);
        let ratio = large.blocked_comm.as_secs_f64() / small.blocked_comm.as_secs_f64();
        // BERT-Large's payload is ~13x ResNet-50's.
        assert!(
            ratio > 8.0,
            "expected payload-proportional comm, got {ratio}"
        );
    }

    #[test]
    fn dense_faulty_empty_plan_is_byte_identical() {
        let m = aws_v100();
        let p = m.partition(PartitionScheme::OneToOne);
        let model = resnet50();
        let clean = simulate_dense(&m, &p, &model, 64, 3);
        let faulty = simulate_dense_faulty(
            &m,
            &p,
            &model,
            64,
            3,
            &FaultPlan::empty(),
            &ResiliencePolicy::default(),
        );
        assert_eq!(clean, faulty, "empty plan must perturb nothing");
    }

    #[test]
    fn dense_degradation_slows_and_dropout_fails_over() {
        let m = aws_v100();
        let p = m.partition(PartitionScheme::OneToOne);
        let model = resnet50();
        let clean = simulate_dense(&m, &p, &model, 64, 3);
        // Degrade every worker->device pair for the whole run.
        let dev = p.mem_devices[0].index() as u32;
        let mut plan = FaultPlan::new(5);
        for &w in &p.workers {
            plan = plan.degrade_link(w.index() as u32, dev, SimTime::ZERO, SimTime::MAX, 3.0);
        }
        let slow =
            simulate_dense_faulty(&m, &p, &model, 64, 3, &plan, &ResiliencePolicy::default());
        assert!(
            slow.iteration_time > clean.iteration_time,
            "degraded run must be slower: {:?} vs {:?}",
            slow.iteration_time,
            clean.iteration_time
        );
        // Dropping the parameter device forces failover to the next one;
        // the run still completes and is deterministic.
        let drop = FaultPlan::new(6).drop_device(dev, SimTime::ZERO);
        let a = simulate_dense_faulty(&m, &p, &model, 64, 3, &drop, &ResiliencePolicy::default());
        let b = simulate_dense_faulty(&m, &p, &model, 64, 3, &drop, &ResiliencePolicy::default());
        assert_eq!(a, b, "faulty runs must be deterministic");
        assert!(a.iteration_time > SimDuration::ZERO);
    }

    #[test]
    fn explained_dense_is_sync_dominated_and_unperturbed() {
        let m = aws_v100();
        let p = m.partition(PartitionScheme::OneToOne);
        let model = bert_large();
        let bare = simulate_dense(&m, &p, &model, 2, 3);
        let cp = CritPath::new();
        let wired = simulate_dense_explained(&m, &p, &model, 2, 3, &cp);
        assert_eq!(bare, wired, "recording must not perturb the result");
        let ex = cp.analyze();
        assert_eq!(ex.iterations.len(), 3);
        assert_eq!(
            ex.dominant(),
            Some(crit_class::SYNC),
            "DENSE funnels all parameter traffic through one device: {:?}",
            ex.blame
        );
        let sum: f64 = crit_class::ALL.iter().map(|c| ex.fraction(c)).sum();
        assert!((sum - 1.0).abs() < 1e-12, "fractions sum to {sum}");
        assert!(ex.fraction(crit_class::COMPUTE) > 0.0);
    }

    #[test]
    fn steady_state_periods_equal() {
        let m = aws_v100();
        let p = m.partition(PartitionScheme::OneToOne);
        let a = simulate_dense(&m, &p, &resnet50(), 64, 2);
        let b = simulate_dense(&m, &p, &resnet50(), 64, 5);
        let rel = (a.iteration_time.as_secs_f64() - b.iteration_time.as_secs_f64()).abs()
            / b.iteration_time.as_secs_f64();
        assert!(rel < 0.05, "periods should be stable, got {rel}");
    }
}
