//! Experiment configuration and result types.

use coarse_simcore::time::SimDuration;

/// The parameter-synchronization scheme under test (§V-D).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheme {
    /// Naive centralized CCI parameter server (Fig. 5).
    Dense,
    /// NCCL-style ring AllReduce among the worker GPUs, no CCI memory.
    AllReduce,
    /// COARSE: decentralized synchronization over CCI memory devices.
    Coarse,
}

impl Scheme {
    /// Label used in the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            Scheme::Dense => "DENSE",
            Scheme::AllReduce => "AllReduce",
            Scheme::Coarse => "COARSE",
        }
    }
}

impl std::fmt::Display for Scheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Steady-state results of one simulated training run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainResult {
    /// Steady-state time per iteration.
    pub iteration_time: SimDuration,
    /// Pure compute per iteration (`T_FP + T_BP`).
    pub compute_time: SimDuration,
    /// Communication time that blocks training compute per iteration
    /// (Fig. 17's metric): `iteration_time − compute_time`.
    pub blocked_comm: SimDuration,
    /// Samples per second across all workers.
    pub throughput: f64,
}

impl TrainResult {
    /// Builds a result from period and compute time.
    ///
    /// # Panics
    ///
    /// Panics if the period is shorter than the compute time.
    pub fn new(iteration_time: SimDuration, compute_time: SimDuration, global_batch: u32) -> Self {
        let blocked_comm = iteration_time.saturating_sub(compute_time);
        TrainResult {
            iteration_time,
            compute_time,
            blocked_comm,
            throughput: global_batch as f64 / iteration_time.as_secs_f64(),
        }
    }

    /// GPU compute utilization: compute / iteration time.
    pub fn gpu_utilization(&self) -> f64 {
        self.compute_time.as_secs_f64() / self.iteration_time.as_secs_f64()
    }

    /// Fraction of the iteration spent in blocking communication.
    pub fn comm_fraction(&self) -> f64 {
        self.blocked_comm.as_secs_f64() / self.iteration_time.as_secs_f64()
    }

    /// Speedup of this result over `baseline` (>1 means faster).
    pub fn speedup_over(&self, baseline: &TrainResult) -> f64 {
        baseline.iteration_time.as_secs_f64() / self.iteration_time.as_secs_f64()
    }
}

/// Errors from experiment setup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrainError {
    /// The requested batch does not fit in GPU memory under this scheme.
    OutOfMemory {
        /// The requested per-GPU batch size.
        batch: u32,
        /// The largest batch that would fit.
        max_batch: u32,
    },
    /// The preset name is not one of the known Fig. 16 panels.
    UnknownPreset {
        /// The rejected name.
        name: String,
    },
    /// The machine's partition leaves no worker GPUs to train on.
    NoWorkers,
    /// COARSE needs a proxy tier of at least two memory devices.
    NoProxyTier {
        /// How many memory devices the partition actually has.
        mem_devices: usize,
    },
    /// A per-GPU batch of zero trains nothing.
    ZeroBatch,
    /// Steady-state measurement needs at least two iterations.
    TooFewIterations {
        /// The rejected iteration count.
        iterations: u32,
    },
    /// The model has no parameter bytes to synchronize.
    EmptyModel,
    /// A chaos repro document failed to parse or validate.
    BadRepro {
        /// What was wrong with it.
        reason: String,
    },
}

impl std::fmt::Display for TrainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrainError::OutOfMemory { batch, max_batch } => write!(
                f,
                "batch {batch} exceeds GPU memory (max {max_batch} for this scheme)"
            ),
            TrainError::UnknownPreset { name } => {
                write!(f, "unknown scenario preset {name:?}")
            }
            TrainError::NoWorkers => f.write_str("the partition has no worker GPUs"),
            TrainError::NoProxyTier { mem_devices } => write!(
                f,
                "COARSE needs at least two memory devices, the partition has {mem_devices}"
            ),
            TrainError::ZeroBatch => f.write_str("per-GPU batch size must be at least 1"),
            TrainError::TooFewIterations { iterations } => write!(
                f,
                "need at least 2 iterations for a steady-state period, got {iterations}"
            ),
            TrainError::EmptyModel => {
                f.write_str("the model has no parameter bytes to synchronize")
            }
            TrainError::BadRepro { reason } => write!(f, "bad chaos repro: {reason}"),
        }
    }
}

impl std::error::Error for TrainError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn result_arithmetic() {
        let r = TrainResult::new(
            SimDuration::from_millis(500),
            SimDuration::from_millis(400),
            256,
        );
        assert_eq!(r.blocked_comm, SimDuration::from_millis(100));
        assert!((r.gpu_utilization() - 0.8).abs() < 1e-12);
        assert!((r.comm_fraction() - 0.2).abs() < 1e-12);
        assert!((r.throughput - 512.0).abs() < 1e-9);
    }

    #[test]
    fn speedup_direction() {
        let fast = TrainResult::new(
            SimDuration::from_millis(100),
            SimDuration::from_millis(90),
            8,
        );
        let slow = TrainResult::new(
            SimDuration::from_millis(400),
            SimDuration::from_millis(90),
            8,
        );
        assert!((fast.speedup_over(&slow) - 4.0).abs() < 1e-9);
        assert!(slow.speedup_over(&fast) < 1.0);
    }

    #[test]
    fn scheme_labels() {
        assert_eq!(Scheme::Dense.label(), "DENSE");
        assert_eq!(Scheme::Coarse.to_string(), "COARSE");
    }
}
