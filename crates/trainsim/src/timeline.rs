//! Iteration timelines: the phase spans of one training iteration and an
//! ASCII Gantt renderer showing how COARSE overlaps communication with
//! compute (the visual intuition behind Figs. 9 and 17).

use coarse_simcore::time::{SimDuration, SimTime};

/// What a span of simulated time was spent on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PhaseKind {
    /// Forward pass compute.
    Forward,
    /// Backward pass compute.
    Backward,
    /// Clients pushing gradient shards to proxies.
    Push,
    /// Proxy collective over the CCI device fabric.
    Collective,
    /// Workers pulling updated values back.
    Pull,
    /// The blocking GPU-path ring of dual synchronization.
    GpuSync,
}

impl PhaseKind {
    /// Row order and label for the Gantt rendering.
    pub const ALL: [PhaseKind; 6] = [
        PhaseKind::Forward,
        PhaseKind::Backward,
        PhaseKind::Push,
        PhaseKind::Collective,
        PhaseKind::Pull,
        PhaseKind::GpuSync,
    ];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            PhaseKind::Forward => "forward",
            PhaseKind::Backward => "backward",
            PhaseKind::Push => "push",
            PhaseKind::Collective => "collective",
            PhaseKind::Pull => "pull",
            PhaseKind::GpuSync => "gpu sync",
        }
    }
}

/// One phase interval of an iteration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseSpan {
    /// What happened.
    pub kind: PhaseKind,
    /// Span start.
    pub start: SimTime,
    /// Span end.
    pub end: SimTime,
    /// Human-readable detail (bucket id, payload, ...).
    pub detail: String,
}

impl PhaseSpan {
    /// Creates a span.
    ///
    /// # Panics
    ///
    /// Panics if `end < start`.
    pub fn new(kind: PhaseKind, start: SimTime, end: SimTime, detail: impl Into<String>) -> Self {
        assert!(end >= start, "span must not be reversed");
        PhaseSpan {
            kind,
            start,
            end,
            detail: detail.into(),
        }
    }

    /// Span duration.
    pub fn duration(&self) -> SimDuration {
        self.end - self.start
    }
}

/// The recorded timeline of one steady-state iteration.
#[derive(Debug, Clone)]
pub struct IterationTrace {
    spans: Vec<PhaseSpan>,
    period: SimDuration,
}

impl IterationTrace {
    /// Wraps recorded spans.
    pub fn new(spans: Vec<PhaseSpan>, period: SimDuration) -> Self {
        IterationTrace { spans, period }
    }

    /// All spans, in recording order.
    pub fn spans(&self) -> &[PhaseSpan] {
        &self.spans
    }

    /// The iteration period the spans belong to.
    pub fn period(&self) -> SimDuration {
        self.period
    }

    /// Spans of one kind.
    pub fn of_kind(&self, kind: PhaseKind) -> impl Iterator<Item = &PhaseSpan> {
        self.spans.iter().filter(move |s| s.kind == kind)
    }

    /// Total busy time per kind (overlaps within a kind merged).
    pub fn busy_by_kind(&self, kind: PhaseKind) -> SimDuration {
        let mut tracker = coarse_simcore::stats::BusyTracker::new();
        for s in self.of_kind(kind) {
            tracker.record(s.start, s.end);
        }
        tracker.busy_time()
    }

    /// Renders an ASCII Gantt chart: one row per phase kind, `width`
    /// columns over the span of the traced iteration.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or no spans were recorded.
    pub fn render_gantt(&self, width: usize) -> String {
        assert!(width > 0, "need at least one column");
        assert!(!self.spans.is_empty(), "no spans recorded");
        // simlint: allow(panic-in-library, reason = "guarded by the documented non-empty assert directly above")
        let t0 = self.spans.iter().map(|s| s.start).min().expect("non-empty");
        // simlint: allow(panic-in-library, reason = "guarded by the documented non-empty assert directly above")
        let t1 = self.spans.iter().map(|s| s.end).max().expect("non-empty");
        let total = (t1 - t0).as_secs_f64().max(1e-12);
        let mut out = String::new();
        for kind in PhaseKind::ALL {
            let mut row = vec![' '; width];
            let mut any = false;
            for s in self.of_kind(kind) {
                any = true;
                let a = ((s.start - t0).as_secs_f64() / total * width as f64) as usize;
                let b = (((s.end - t0).as_secs_f64() / total * width as f64).ceil() as usize)
                    .clamp(a + 1, width);
                for c in row.iter_mut().take(b).skip(a.min(width - 1)) {
                    *c = '#';
                }
            }
            if any {
                out.push_str(&format!(
                    "{:>10} |{}| {}\n",
                    kind.label(),
                    row.into_iter().collect::<String>(),
                    crate::timeline::fmt_dur(self.busy_by_kind(kind)),
                ));
            }
        }
        out.push_str(&format!(
            "{:>10}  0 {:>width$}\n",
            "",
            fmt_dur(t1 - t0),
            width = width
        ));
        out
    }
}

/// Compact duration formatting for the Gantt margin.
fn fmt_dur(d: SimDuration) -> String {
    d.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn busy_by_kind_merges_overlaps() {
        let trace = IterationTrace::new(
            vec![
                PhaseSpan::new(PhaseKind::Push, t(0), t(10), "a"),
                PhaseSpan::new(PhaseKind::Push, t(5), t(15), "b"),
                PhaseSpan::new(PhaseKind::Pull, t(20), t(25), "c"),
            ],
            SimDuration::from_nanos(25),
        );
        assert_eq!(
            trace.busy_by_kind(PhaseKind::Push),
            SimDuration::from_nanos(15)
        );
        assert_eq!(
            trace.busy_by_kind(PhaseKind::Pull),
            SimDuration::from_nanos(5)
        );
        assert_eq!(trace.busy_by_kind(PhaseKind::GpuSync), SimDuration::ZERO);
    }

    #[test]
    fn gantt_renders_rows_for_present_kinds() {
        let trace = IterationTrace::new(
            vec![
                PhaseSpan::new(PhaseKind::Forward, t(0), t(50), "fwd"),
                PhaseSpan::new(PhaseKind::Backward, t(50), t(150), "bwd"),
                PhaseSpan::new(PhaseKind::Push, t(60), t(140), "push"),
            ],
            SimDuration::from_nanos(150),
        );
        let g = trace.render_gantt(40);
        assert!(g.contains("forward"));
        assert!(g.contains("backward"));
        assert!(g.contains("push"));
        assert!(!g.contains("gpu sync"), "absent kinds draw no row");
        assert!(g.contains('#'));
    }

    #[test]
    #[should_panic(expected = "reversed")]
    fn reversed_span_rejected() {
        let _ = PhaseSpan::new(PhaseKind::Pull, t(5), t(1), "bad");
    }

    #[test]
    fn trace_coarse_end_to_end() {
        use coarse_fabric::machines::{aws_v100, PartitionScheme};
        use coarse_models::zoo::bert_large;
        let m = aws_v100();
        let p = m.partition(PartitionScheme::OneToOne);
        let trace = crate::coarse::trace_coarse(&m, &p, &bert_large(), 2);
        // Exactly one forward and one backward span.
        assert_eq!(trace.of_kind(PhaseKind::Forward).count(), 1);
        assert_eq!(trace.of_kind(PhaseKind::Backward).count(), 1);
        // The proxy path produced pushes, collectives, and pulls.
        assert!(trace.of_kind(PhaseKind::Push).count() > 5);
        assert!(trace.of_kind(PhaseKind::Collective).count() > 5);
        assert!(trace.of_kind(PhaseKind::Pull).count() > 5);
        // Overlap is the whole point: push busy time overlaps the backward
        // window substantially.
        let bwd = trace.of_kind(PhaseKind::Backward).next().unwrap().clone();
        let overlapping_pushes = trace
            .of_kind(PhaseKind::Push)
            .filter(|s| s.start < bwd.end && s.end > bwd.start)
            .count();
        assert!(overlapping_pushes > 5, "pushes must overlap backward");
        let g = trace.render_gantt(72);
        assert!(g.contains("collective"));
    }
}
