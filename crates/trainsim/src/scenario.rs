//! The unified scenario builder: the single front door to the simulator.
//!
//! A [`Scenario`] bundles everything one training run needs — machine,
//! partition, model, batch, scheme, and (optionally) a deterministic
//! [`FaultPlan`] with its [`ResiliencePolicy`] — behind a chained builder:
//!
//! ```
//! use coarse_trainsim::scenario::Scenario;
//!
//! let result = Scenario::preset("fig16d").iterations(3).run().unwrap();
//! assert!(result.iteration_time.as_nanos() > 0);
//! ```
//!
//! Presets mirror the paper's Fig. 16 panels; every knob can be overridden
//! after `preset`. Fault-injected runs flow through the same entry point:
//! attach a plan with [`Scenario::faults`] and either [`Scenario::run`]
//! (timing only) or [`Scenario::run_faulty`] (timing plus resilience
//! accounting) — an **empty plan is guaranteed byte-identical** to the
//! fault-free path.

use coarse_core::resilience::{RecoveryPolicy, ResiliencePolicy};
use coarse_fabric::machines::{aws_t4, aws_v100, sdsc_p100, Machine, PartitionScheme};
use coarse_models::memory::{MemoryModel, Residency};
use coarse_models::profile::ModelProfile;
use coarse_models::zoo::{bert_base, bert_large, resnet50};
use coarse_simcore::faults::FaultPlan;

use crate::allreduce::simulate_allreduce;
use crate::coarse::{
    simulate_coarse, simulate_coarse_faulty, simulate_coarse_recovering, FaultyTrainResult,
    RecoveringTrainResult,
};
use crate::config::{Scheme, TrainError, TrainResult};
use crate::dense::simulate_dense_faulty;
use crate::report::RunReport;

/// Builder for one training run: machine, model, scheme, and faults in a
/// single chain ending in [`Scenario::run`].
#[derive(Debug, Clone)]
pub struct Scenario {
    name: String,
    machine: Machine,
    partition: PartitionScheme,
    model: ModelProfile,
    batch_per_gpu: u32,
    iterations: u32,
    scheme: Scheme,
    faults: FaultPlan,
    policy: ResiliencePolicy,
}

impl Scenario {
    /// A scenario from scratch. Defaults: 1:1 partition, batch 2 per GPU,
    /// 3 iterations, COARSE scheme, no faults.
    pub fn new(name: &str, machine: Machine, model: ModelProfile) -> Scenario {
        Scenario {
            name: name.to_string(),
            machine,
            partition: PartitionScheme::OneToOne,
            model,
            batch_per_gpu: 2,
            iterations: 3,
            scheme: Scheme::Coarse,
            faults: FaultPlan::empty(),
            policy: ResiliencePolicy::default(),
        }
    }

    /// One of the paper's named Fig. 16 panels (see [`Scenario::presets`]).
    ///
    /// # Panics
    ///
    /// Panics if `name` is not a known preset. Use [`Scenario::try_preset`]
    /// for a recoverable variant.
    pub fn preset(name: &str) -> Scenario {
        Scenario::try_preset(name).unwrap_or_else(|_| {
            // simlint: allow(panic-in-library, reason = "documented panicking wrapper; try_preset is the fallible variant")
            panic!(
                "unknown scenario preset {name:?}; known presets: {}",
                Scenario::presets().join(", ")
            )
        })
    }

    /// [`Scenario::preset`] without the panic: unknown names come back as
    /// [`TrainError::UnknownPreset`].
    ///
    /// # Errors
    ///
    /// Returns [`TrainError::UnknownPreset`] if `name` is not a known
    /// preset.
    pub fn try_preset(name: &str) -> Result<Scenario, TrainError> {
        Ok(match name {
            "fig16a" => Scenario::new(name, aws_t4(), resnet50()).batch_per_gpu(64),
            "fig16b" => Scenario::new(name, aws_t4(), bert_base()),
            "fig16c" => Scenario::new(name, sdsc_p100(), bert_large()),
            "fig16d" => Scenario::new(name, aws_v100(), bert_large()),
            "fig16d-2to1" => {
                Scenario::new(name, aws_v100(), bert_large()).partition(PartitionScheme::TwoToOne)
            }
            other => {
                return Err(TrainError::UnknownPreset {
                    name: other.to_string(),
                })
            }
        })
    }

    /// Names accepted by [`Scenario::preset`].
    pub fn presets() -> Vec<&'static str> {
        vec!["fig16a", "fig16b", "fig16c", "fig16d", "fig16d-2to1"]
    }

    /// Replaces the machine.
    pub fn machine(mut self, machine: Machine) -> Scenario {
        self.machine = machine;
        self
    }

    /// Replaces the model.
    pub fn model(mut self, model: ModelProfile) -> Scenario {
        self.model = model;
        self
    }

    /// Sets the worker / memory-device split.
    pub fn partition(mut self, partition: PartitionScheme) -> Scenario {
        self.partition = partition;
        self
    }

    /// Sets the per-GPU batch size.
    pub fn batch_per_gpu(mut self, batch: u32) -> Scenario {
        self.batch_per_gpu = batch;
        self
    }

    /// Sets the number of simulated iterations.
    pub fn iterations(mut self, iterations: u32) -> Scenario {
        self.iterations = iterations;
        self
    }

    /// Sets the synchronization scheme (default COARSE).
    pub fn scheme(mut self, scheme: Scheme) -> Scenario {
        self.scheme = scheme;
        self
    }

    /// Attaches a deterministic fault plan. An empty plan is byte-identical
    /// to never calling this.
    pub fn faults(mut self, plan: FaultPlan) -> Scenario {
        self.faults = plan;
        self
    }

    /// Overrides the resilience policy (retry backoff, failure-detection
    /// timeout) used when a fault plan is attached.
    pub fn resilience(mut self, policy: ResiliencePolicy) -> Scenario {
        self.policy = policy;
        self
    }

    /// The scenario label.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The attached fault plan (empty when none was set).
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.faults
    }

    /// Validates the scenario's shape before running it: a non-empty model,
    /// a sane batch and iteration count, and a partition with workers (and,
    /// for COARSE, a proxy tier). The simulators `assert!` the same
    /// invariants; this surfaces them as typed errors instead of panics.
    ///
    /// # Errors
    ///
    /// Returns the first violated precondition as a [`TrainError`].
    pub fn validate(&self) -> Result<(), TrainError> {
        if self.batch_per_gpu == 0 {
            return Err(TrainError::ZeroBatch);
        }
        if self.iterations < 2 {
            return Err(TrainError::TooFewIterations {
                iterations: self.iterations,
            });
        }
        if self.model.total_bytes().is_zero() {
            return Err(TrainError::EmptyModel);
        }
        let part = self.machine.partition(self.partition);
        if part.workers.is_empty() {
            return Err(TrainError::NoWorkers);
        }
        if self.scheme == Scheme::Coarse && part.mem_devices.len() < 2 {
            return Err(TrainError::NoProxyTier {
                mem_devices: part.mem_devices.len(),
            });
        }
        Ok(())
    }

    /// Checks GPU-memory feasibility for the configured scheme: AllReduce
    /// and DENSE keep parameters and optimizer state on the GPU; COARSE
    /// offloads them to the memory devices (§V-D, Fig. 16e).
    ///
    /// # Errors
    ///
    /// Returns [`TrainError::OutOfMemory`] if the batch does not fit.
    pub fn check_memory(&self) -> Result<(), TrainError> {
        let residency = match self.scheme {
            Scheme::Coarse => Residency::OffloadedToCci,
            Scheme::Dense | Scheme::AllReduce => Residency::AllOnGpu,
        };
        let mm = MemoryModel::new(&self.model, self.machine.sku().memory_gib());
        if !mm.fits(self.batch_per_gpu, residency) {
            return Err(TrainError::OutOfMemory {
                batch: self.batch_per_gpu,
                max_batch: mm.max_batch(residency),
            });
        }
        Ok(())
    }

    /// Runs the scenario and returns the steady-state result. With a fault
    /// plan attached, COARSE and DENSE run fault-aware (AllReduce has no
    /// fault path: its collective never touches the proxy tier, so the plan
    /// is ignored).
    ///
    /// # Errors
    ///
    /// Returns a [`TrainError`] if validation fails or the batch does not
    /// fit.
    pub fn run(&self) -> Result<TrainResult, TrainError> {
        self.validate()?;
        self.check_memory()?;
        let part = self.machine.partition(self.partition);
        Ok(match self.scheme {
            Scheme::Dense => simulate_dense_faulty(
                &self.machine,
                &part,
                &self.model,
                self.batch_per_gpu,
                self.iterations,
                &self.faults,
                &self.policy,
            ),
            Scheme::AllReduce => simulate_allreduce(
                &self.machine,
                &part,
                &self.model,
                self.batch_per_gpu,
                self.iterations,
            ),
            Scheme::Coarse if self.faults.is_empty() => simulate_coarse(
                &self.machine,
                &part,
                &self.model,
                self.batch_per_gpu,
                self.iterations,
            ),
            Scheme::Coarse => {
                simulate_coarse_faulty(
                    &self.machine,
                    &part,
                    &self.model,
                    self.batch_per_gpu,
                    self.iterations,
                    &self.faults,
                    &self.policy,
                )
                .result
            }
        })
    }

    /// Runs COARSE fault-aware and returns the full resilience accounting
    /// (retries, failovers, recovery time) alongside the timing result.
    /// Works with an empty plan too — the result is then byte-identical to
    /// [`Scenario::run`] with zeroed accounting.
    ///
    /// # Errors
    ///
    /// Returns a [`TrainError`] if validation fails or the batch does not
    /// fit.
    ///
    /// # Panics
    ///
    /// Panics if the scheme is not [`Scheme::Coarse`].
    pub fn run_faulty(&self) -> Result<FaultyTrainResult, TrainError> {
        assert_eq!(
            self.scheme,
            Scheme::Coarse,
            "run_faulty reports proxy-tier resilience; only COARSE has one"
        );
        self.validate()?;
        self.check_memory()?;
        let part = self.machine.partition(self.partition);
        Ok(simulate_coarse_faulty(
            &self.machine,
            &part,
            &self.model,
            self.batch_per_gpu,
            self.iterations,
            &self.faults,
            &self.policy,
        ))
    }

    /// Runs COARSE under the full recovery engine — elastic membership
    /// repair, pool checkpoints as real traffic, restore-from-checkpoint on
    /// hard failures — and returns the goodput accounting. The scenario's
    /// fault plan drives the failures; `policy` sets the checkpoint
    /// interval and escalation budgets (its embedded resilience settings
    /// override the scenario's).
    ///
    /// # Errors
    ///
    /// Returns a [`TrainError`] if validation fails or the batch does not
    /// fit.
    ///
    /// # Panics
    ///
    /// Panics if the scheme is not [`Scheme::Coarse`].
    pub fn run_recovering(
        &self,
        policy: &RecoveryPolicy,
    ) -> Result<RecoveringTrainResult, TrainError> {
        assert_eq!(
            self.scheme,
            Scheme::Coarse,
            "run_recovering restores the proxy pool; only COARSE has one"
        );
        self.validate()?;
        self.check_memory()?;
        let part = self.machine.partition(self.partition);
        Ok(simulate_coarse_recovering(
            &self.machine,
            &part,
            &self.model,
            self.batch_per_gpu,
            self.iterations,
            &self.faults,
            policy,
        ))
    }

    /// Collects the full three-scheme [`RunReport`] for this scenario.
    /// With a fault plan attached the report additionally carries the
    /// fault-injected COARSE run's resilience accounting.
    pub fn report(&self) -> RunReport {
        RunReport::collect_scenario(self)
    }

    pub(crate) fn machine_ref(&self) -> &Machine {
        &self.machine
    }

    pub(crate) fn model_ref(&self) -> &ModelProfile {
        &self.model
    }

    pub(crate) fn partition_scheme(&self) -> PartitionScheme {
        self.partition
    }

    pub(crate) fn batch(&self) -> u32 {
        self.batch_per_gpu
    }

    pub(crate) fn iters(&self) -> u32 {
        self.iterations
    }

    pub(crate) fn policy_ref(&self) -> &ResiliencePolicy {
        &self.policy
    }

    pub(crate) fn scheme_ref(&self) -> Scheme {
        self.scheme
    }

    /// Reconstructs a scenario from a serialized chaos repro (see
    /// [`crate::chaos::ChaosRepro`]): the named preset with the repro's run
    /// shape and minimal fault plan attached, ready for
    /// [`Scenario::run_faulty`] or [`crate::chaos::replay`].
    ///
    /// # Errors
    ///
    /// Returns [`TrainError::BadRepro`] on a malformed document, or
    /// [`TrainError::UnknownPreset`] if the repro names a preset that no
    /// longer exists.
    pub fn from_repro(input: &str) -> Result<Scenario, TrainError> {
        crate::chaos::ChaosRepro::parse(input)?.scenario()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coarse_simcore::time::{SimDuration, SimTime};

    #[test]
    fn scenario_matches_direct_simulation() {
        let s = Scenario::preset("fig16d");
        let got = s.run().expect("fig16d fits");
        let m = aws_v100();
        let p = m.partition(PartitionScheme::OneToOne);
        let want = simulate_coarse(&m, &p, &bert_large(), 2, 3);
        assert_eq!(got, want, "builder must not perturb the run");
    }

    #[test]
    fn every_preset_runs() {
        for name in Scenario::presets() {
            let r = Scenario::preset(name).run();
            assert!(r.is_ok(), "preset {name} failed: {r:?}");
        }
    }

    #[test]
    fn scheme_override_and_oom_detection() {
        let s = Scenario::preset("fig16d")
            .scheme(Scheme::AllReduce)
            .batch_per_gpu(4);
        let err = s.run().unwrap_err();
        assert!(matches!(err, TrainError::OutOfMemory { max_batch: 3, .. }));
        assert!(Scenario::preset("fig16d").batch_per_gpu(4).run().is_ok());
    }

    #[test]
    fn faulty_scenario_reports_recovery() {
        let m = aws_v100();
        let p = m.partition(PartitionScheme::OneToOne);
        let victim = p.mem_devices[0].index() as u32;
        let plan =
            FaultPlan::new(5).drop_device(victim, SimTime::ZERO + SimDuration::from_millis(1));
        let r = Scenario::preset("fig16d")
            .faults(plan)
            .run_faulty()
            .expect("fits");
        assert_eq!(r.failovers, 1);
        assert!(r.recovery_time > SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "unknown scenario preset")]
    fn unknown_preset_panics() {
        let _ = Scenario::preset("fig99");
    }

    #[test]
    fn try_preset_surfaces_unknown_names_as_errors() {
        let err = Scenario::try_preset("fig99").unwrap_err();
        assert_eq!(
            err,
            TrainError::UnknownPreset {
                name: "fig99".to_string()
            }
        );
        for name in Scenario::presets() {
            assert!(Scenario::try_preset(name).is_ok(), "{name} must resolve");
        }
    }

    #[test]
    fn validation_rejects_zero_batch() {
        let err = Scenario::preset("fig16d")
            .batch_per_gpu(0)
            .run()
            .unwrap_err();
        assert_eq!(err, TrainError::ZeroBatch);
    }

    #[test]
    fn validation_rejects_too_few_iterations() {
        let err = Scenario::preset("fig16d").iterations(1).run().unwrap_err();
        assert_eq!(err, TrainError::TooFewIterations { iterations: 1 });
        let err = Scenario::preset("fig16d")
            .iterations(0)
            .run_faulty()
            .unwrap_err();
        assert_eq!(err, TrainError::TooFewIterations { iterations: 0 });
    }

    #[test]
    fn validation_rejects_zero_sized_models() {
        use coarse_models::profile::{ModelProfile, TensorSpec};
        // ModelProfile requires a non-empty tensor list, but nothing stops a
        // caller handing over tensors with zero elements — zero bytes to
        // synchronize is still a nonsensical run.
        let hollow = ModelProfile::new(
            "hollow",
            vec![TensorSpec {
                name: "w".to_string(),
                elems: 0,
                layer: 0,
            }],
            1.0,
        );
        let err = Scenario::preset("fig16d").model(hollow).run().unwrap_err();
        assert_eq!(err, TrainError::EmptyModel);
    }

    #[test]
    fn validation_errors_render_distinct_messages() {
        let errors = [
            TrainError::ZeroBatch,
            TrainError::TooFewIterations { iterations: 1 },
            TrainError::EmptyModel,
            TrainError::NoWorkers,
            TrainError::NoProxyTier { mem_devices: 1 },
            TrainError::UnknownPreset {
                name: "x".to_string(),
            },
        ];
        let rendered: Vec<String> = errors.iter().map(|e| e.to_string()).collect();
        for (i, a) in rendered.iter().enumerate() {
            assert!(!a.is_empty());
            for b in &rendered[i + 1..] {
                assert_ne!(a, b, "error messages must be distinguishable");
            }
        }
    }
}
