//! Property tests for the workload substrate: model profiles, iteration
//! schedules, and the memory model, driven by the in-repo deterministic
//! harness.

use coarse_models::gpu::GpuCompute;
use coarse_models::memory::{MemoryModel, Residency};
use coarse_models::profile::{ModelProfile, TensorSpec};
use coarse_models::training::IterationPlan;
use coarse_models::zoo;
use coarse_simcore::check::{run_cases, Gen};
use coarse_simcore::time::SimDuration;

fn zoo_models() -> Vec<ModelProfile> {
    vec![
        zoo::resnet50(),
        zoo::bert_base(),
        zoo::bert_large(),
        zoo::vgg16(),
        zoo::gpt2_xl(),
    ]
}

#[test]
fn zoo_layer_bytes_conserve_totals() {
    for m in zoo_models() {
        let sum: u64 = m.layer_bytes().iter().map(|b| b.as_u64()).sum();
        assert_eq!(sum, m.total_bytes().as_u64(), "{}", m.name());
        // Backward order visits every tensor exactly once.
        let mut order = m.backward_order();
        order.sort_unstable();
        assert_eq!(order, (0..m.tensors().len()).collect::<Vec<_>>());
    }
}

#[test]
fn zoo_schedules_are_well_formed() {
    for m in zoo_models() {
        let plan = IterationPlan::new(&m, &GpuCompute::v100(), 2);
        for g in plan.gradients() {
            assert!(g.ready <= plan.backward_time(), "{}", m.name());
            assert!(g.ready > SimDuration::ZERO);
        }
        for n in plan.forward_needs() {
            assert!(n.needed < plan.forward_time(), "{}", m.name());
        }
        // Deeper layers' parameters are needed later.
        let needs = plan.forward_needs();
        for w in needs.windows(2) {
            let (a, b) = (&m.tensors()[w[0].tensor], &m.tensors()[w[1].tensor]);
            if a.layer < b.layer {
                assert!(w[0].needed <= w[1].needed);
            }
        }
    }
}

/// For any synthetic model, gradient-ready offsets are antitone in layer
/// (deeper layers emit first) and cover the full backward window.
#[test]
fn gradient_offsets_antitone_in_layer() {
    run_cases("gradient_offsets_antitone_in_layer", 64, |g: &mut Gen| {
        let layer_elems = g.vec_of(2..30, |g| g.u64_in(1..100_000));
        let tensors: Vec<TensorSpec> = layer_elems
            .iter()
            .enumerate()
            .map(|(i, &elems)| TensorSpec {
                name: format!("t{i}"),
                elems,
                layer: i as u32,
            })
            .collect();
        let model = ModelProfile::new("synthetic", tensors, 1e9);
        let plan = IterationPlan::with_times(
            &model,
            SimDuration::from_millis(10),
            SimDuration::from_millis(20),
        );
        let grads = plan.gradients();
        // Emission order is nondecreasing in ready time...
        for w in grads.windows(2) {
            assert!(w[0].ready <= w[1].ready);
        }
        // ...and descending in layer.
        for w in grads.windows(2) {
            assert!(model.tensors()[w[0].tensor].layer >= model.tensors()[w[1].tensor].layer);
        }
        // The last gradient lands exactly at the end of backward.
        assert_eq!(grads.last().unwrap().ready, plan.backward_time());
    });
}

/// The memory model is monotone: more batch never shrinks the resident
/// footprint, and offload never exceeds the on-GPU footprint.
#[test]
fn memory_model_monotone() {
    run_cases("memory_model_monotone", 64, |g: &mut Gen| {
        let batch = g.u64_in(1..64) as u32;
        let mm = MemoryModel::new(&zoo::bert_large(), 16);
        assert!(
            mm.resident_bytes(batch + 1, Residency::AllOnGpu)
                > mm.resident_bytes(batch, Residency::AllOnGpu)
        );
        assert!(
            mm.resident_bytes(batch, Residency::OffloadedToCci)
                < mm.resident_bytes(batch, Residency::AllOnGpu)
        );
        // max_batch is consistent with fits().
        let max = mm.max_batch(Residency::AllOnGpu);
        if max > 0 {
            assert!(mm.fits(max, Residency::AllOnGpu));
        }
        assert!(!mm.fits(max + 1, Residency::AllOnGpu));
    });
}

/// Compute time scales with the fixed-overhead-corrected batch exactly.
#[test]
fn compute_time_scaling_exact() {
    run_cases("compute_time_scaling_exact", 64, |g: &mut Gen| {
        let b1 = g.u64_in(1..128) as u32;
        let b2 = g.u64_in(1..128) as u32;
        let gpu = GpuCompute::v100();
        let m = zoo::resnet50();
        let t1 = gpu.forward_time(&m, b1).as_secs_f64();
        let t2 = gpu.forward_time(&m, b2).as_secs_f64();
        let expect = (b1 as f64 + coarse_models::gpu::BATCH_FIXED_OVERHEAD)
            / (b2 as f64 + coarse_models::gpu::BATCH_FIXED_OVERHEAD);
        // Nanosecond rounding bounds the relative error.
        assert!((t1 / t2 - expect).abs() < 1e-4);
    });
}
