//! The model zoo: tensor inventories generated from the real architectures.
//!
//! The paper evaluates ResNet-50 (ImageNet, batch 64/GPU) and BERT
//! fine-tuning (SQuAD 1.1, batch 2/GPU) (§V-D). We generate the exact
//! per-layer tensor shapes of ResNet-50 v1.5, BERT-Base and BERT-Large, plus
//! VGG-16 as an additional communication-heavy workload.

use crate::profile::{ModelProfile, TensorSpec};

/// ResNet-50 (v1.5): ≈25.6 M parameters in ≈161 tensors.
/// Forward cost ≈ 8.2 GFLOPs per 224×224 sample.
pub fn resnet50() -> ModelProfile {
    let mut tensors = Vec::new();
    let mut layer = 0u32;
    let mut push = |name: String, elems: u64, layer: u32| {
        tensors.push(TensorSpec { name, elems, layer });
    };

    // Stem.
    push("conv1.weight".into(), 64 * 3 * 7 * 7, layer);
    push("bn1.weight".into(), 64, layer);
    push("bn1.bias".into(), 64, layer);
    layer += 1;

    // Bottleneck stages: widths and block counts of ResNet-50.
    let stages: [(u64, u32); 4] = [(64, 3), (128, 4), (256, 6), (512, 3)];
    let mut in_ch: u64 = 64;
    for (s, &(w, blocks)) in stages.iter().enumerate() {
        for b in 0..blocks {
            let prefix = format!("layer{}.{}", s + 1, b);
            push(format!("{prefix}.conv1.weight"), in_ch * w, layer);
            push(format!("{prefix}.bn1.weight"), w, layer);
            push(format!("{prefix}.bn1.bias"), w, layer);
            push(format!("{prefix}.conv2.weight"), w * w * 9, layer);
            push(format!("{prefix}.bn2.weight"), w, layer);
            push(format!("{prefix}.bn2.bias"), w, layer);
            push(format!("{prefix}.conv3.weight"), w * (w * 4), layer);
            push(format!("{prefix}.bn3.weight"), w * 4, layer);
            push(format!("{prefix}.bn3.bias"), w * 4, layer);
            if b == 0 {
                // Projection shortcut on the first block of each stage.
                push(
                    format!("{prefix}.downsample.0.weight"),
                    in_ch * (w * 4),
                    layer,
                );
                push(format!("{prefix}.downsample.1.weight"), w * 4, layer);
                push(format!("{prefix}.downsample.1.bias"), w * 4, layer);
            }
            in_ch = w * 4;
            layer += 1;
        }
    }

    // Classifier.
    push("fc.weight".into(), 2048 * 1000, layer);
    push("fc.bias".into(), 1000, layer);

    ModelProfile::new("ResNet-50", tensors, 8.2e9)
}

/// BERT encoder profile parameterized by depth and width.
fn bert(
    name: &str,
    hidden: u64,
    layers: u32,
    intermediate: u64,
    seq_len: u64,
    vocab: u64,
) -> ModelProfile {
    let mut tensors = Vec::new();
    let mut layer = 0u32;
    let mut push = |name: String, elems: u64, layer: u32| {
        tensors.push(TensorSpec { name, elems, layer });
    };

    // Embeddings.
    push("embeddings.word".into(), vocab * hidden, layer);
    push("embeddings.position".into(), 512 * hidden, layer);
    push("embeddings.token_type".into(), 2 * hidden, layer);
    push("embeddings.ln.weight".into(), hidden, layer);
    push("embeddings.ln.bias".into(), hidden, layer);
    layer += 1;

    for l in 0..layers {
        let p = format!("encoder.layer.{l}");
        for head in ["query", "key", "value"] {
            push(
                format!("{p}.attention.{head}.weight"),
                hidden * hidden,
                layer,
            );
            push(format!("{p}.attention.{head}.bias"), hidden, layer);
        }
        push(
            format!("{p}.attention.output.weight"),
            hidden * hidden,
            layer,
        );
        push(format!("{p}.attention.output.bias"), hidden, layer);
        push(format!("{p}.attention.ln.weight"), hidden, layer);
        push(format!("{p}.attention.ln.bias"), hidden, layer);
        push(
            format!("{p}.intermediate.weight"),
            hidden * intermediate,
            layer,
        );
        push(format!("{p}.intermediate.bias"), intermediate, layer);
        push(format!("{p}.output.weight"), intermediate * hidden, layer);
        push(format!("{p}.output.bias"), hidden, layer);
        push(format!("{p}.output.ln.weight"), hidden, layer);
        push(format!("{p}.output.ln.bias"), hidden, layer);
        layer += 1;
    }

    // SQuAD span-prediction head.
    push("qa_outputs.weight".into(), hidden * 2, layer);
    push("qa_outputs.bias".into(), 2, layer);

    // Transformer forward cost ≈ 2 FLOPs per parameter per token.
    let params: u64 = tensors.iter().map(|t| t.elems).sum();
    let flops = 2.0 * params as f64 * seq_len as f64;
    ModelProfile::new(name, tensors, flops)
}

/// BERT-Base (SQuAD fine-tuning, sequence length 384): ≈110 M parameters.
pub fn bert_base() -> ModelProfile {
    bert("BERT-Base", 768, 12, 3072, 384, 30_522)
}

/// BERT-Large (SQuAD fine-tuning, sequence length 384): ≈335 M parameters.
pub fn bert_large() -> ModelProfile {
    bert("BERT-Large", 1024, 24, 4096, 384, 30_522)
}

/// GPT-2 XL (1.5 B parameters): an *extension* workload beyond the paper's
/// evaluation. Its resident footprint with on-GPU parameters + Adam state
/// exceeds a 16 GiB GPU at any batch size, so it is only trainable with
/// COARSE's parameter/optimizer offload — the capacity argument of §VI
/// ("COARSE leverages CCI memory devices to enable larger models to be
/// trained").
pub fn gpt2_xl() -> ModelProfile {
    let hidden: u64 = 1600;
    let layers: u32 = 48;
    let vocab: u64 = 50_257;
    let mut tensors = Vec::new();
    let mut layer = 0u32;
    let mut push = |name: String, elems: u64, layer: u32| {
        tensors.push(TensorSpec { name, elems, layer });
    };
    push("wte".into(), vocab * hidden, layer);
    push("wpe".into(), 1024 * hidden, layer);
    layer += 1;
    for l in 0..layers {
        let p = format!("h.{l}");
        push(format!("{p}.ln_1.weight"), hidden, layer);
        push(format!("{p}.ln_1.bias"), hidden, layer);
        push(
            format!("{p}.attn.c_attn.weight"),
            hidden * 3 * hidden,
            layer,
        );
        push(format!("{p}.attn.c_attn.bias"), 3 * hidden, layer);
        push(format!("{p}.attn.c_proj.weight"), hidden * hidden, layer);
        push(format!("{p}.attn.c_proj.bias"), hidden, layer);
        push(format!("{p}.ln_2.weight"), hidden, layer);
        push(format!("{p}.ln_2.bias"), hidden, layer);
        push(format!("{p}.mlp.c_fc.weight"), hidden * 4 * hidden, layer);
        push(format!("{p}.mlp.c_fc.bias"), 4 * hidden, layer);
        push(format!("{p}.mlp.c_proj.weight"), 4 * hidden * hidden, layer);
        push(format!("{p}.mlp.c_proj.bias"), hidden, layer);
        layer += 1;
    }
    push("ln_f.weight".into(), hidden, layer);
    push("ln_f.bias".into(), hidden, layer);
    let params: u64 = tensors.iter().map(|t| t.elems).sum();
    // 2 FLOPs per parameter per token, sequence length 1024.
    let flops = 2.0 * params as f64 * 1024.0;
    ModelProfile::new("GPT-2 XL", tensors, flops)
}

/// VGG-16: ≈138 M parameters dominated by two huge FC tensors — a stress
/// test for tensor partitioning.
pub fn vgg16() -> ModelProfile {
    let mut tensors = Vec::new();
    let mut layer = 0u32;
    let mut push = |name: String, elems: u64, layer: u32| {
        tensors.push(TensorSpec { name, elems, layer });
    };
    let cfg: [(u64, u64); 13] = [
        (3, 64),
        (64, 64),
        (64, 128),
        (128, 128),
        (128, 256),
        (256, 256),
        (256, 256),
        (256, 512),
        (512, 512),
        (512, 512),
        (512, 512),
        (512, 512),
        (512, 512),
    ];
    for (i, &(cin, cout)) in cfg.iter().enumerate() {
        push(format!("features.{i}.weight"), cin * cout * 9, layer);
        push(format!("features.{i}.bias"), cout, layer);
        layer += 1;
    }
    push("classifier.0.weight".into(), 512 * 7 * 7 * 4096, layer);
    push("classifier.0.bias".into(), 4096, layer);
    layer += 1;
    push("classifier.3.weight".into(), 4096 * 4096, layer);
    push("classifier.3.bias".into(), 4096, layer);
    layer += 1;
    push("classifier.6.weight".into(), 4096 * 1000, layer);
    push("classifier.6.bias".into(), 1000, layer);
    ModelProfile::new("VGG-16", tensors, 31.0e9)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resnet50_matches_published_size() {
        let m = resnet50();
        let p = m.total_params();
        assert!(
            (25_400_000..25_700_000).contains(&p),
            "ResNet-50 must have ≈25.56M params, got {p}"
        );
        assert!(
            (150..=170).contains(&m.tensors().len()),
            "ResNet-50 has ≈161 tensors, got {}",
            m.tensors().len()
        );
    }

    #[test]
    fn bert_base_matches_published_size() {
        let p = bert_base().total_params();
        assert!(
            (108_000_000..111_000_000).contains(&p),
            "BERT-Base ≈109.5M params, got {p}"
        );
    }

    #[test]
    fn bert_large_matches_published_size() {
        let p = bert_large().total_params();
        assert!(
            (333_000_000..338_000_000).contains(&p),
            "BERT-Large ≈335M params, got {p}"
        );
    }

    #[test]
    fn gpt2_xl_matches_published_size() {
        let p = gpt2_xl().total_params();
        assert!(
            (1_540_000_000..1_580_000_000).contains(&p),
            "GPT-2 XL ≈1.56B params, got {p}"
        );
    }

    #[test]
    fn vgg16_matches_published_size() {
        let p = vgg16().total_params();
        assert!(
            (138_000_000..139_000_000).contains(&p),
            "VGG-16 ≈138.4M params, got {p}"
        );
    }

    #[test]
    fn bert_large_payload_dominates_resnet() {
        // The paper's BERT results are communication-dominated precisely
        // because the payload is ~13x ResNet-50's.
        let r = resnet50().total_bytes().as_u64();
        let b = bert_large().total_bytes().as_u64();
        assert!(b > 12 * r);
    }

    #[test]
    fn layers_are_monotonically_used() {
        for m in [resnet50(), bert_base(), bert_large(), vgg16()] {
            let lb = m.layer_bytes();
            assert!(
                lb.iter().all(|b| !b.is_zero()),
                "{}: every layer index must own parameters",
                m.name()
            );
        }
    }

    #[test]
    fn tensor_names_unique() {
        for m in [resnet50(), bert_base(), vgg16()] {
            let mut names: Vec<&str> = m.tensors().iter().map(|t| t.name.as_str()).collect();
            names.sort_unstable();
            let before = names.len();
            names.dedup();
            assert_eq!(
                before,
                names.len(),
                "{} has duplicate tensor names",
                m.name()
            );
        }
    }
}
