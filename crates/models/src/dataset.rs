//! Dataset descriptors for the evaluated workloads.
//!
//! Only aggregate shape matters to the synchronization layer: sample count
//! (iterations per epoch) and per-sample input bytes (input pipeline load).

use coarse_simcore::units::ByteSize;

/// A training dataset's aggregate shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dataset {
    name: &'static str,
    samples: u64,
    sample_bytes: ByteSize,
}

impl Dataset {
    /// ImageNet-1k training split (ResNet-50's workload).
    pub fn imagenet() -> Self {
        Dataset {
            name: "ImageNet",
            samples: 1_281_167,
            // 224×224×3 float input after decode/augment.
            sample_bytes: ByteSize::bytes(224 * 224 * 3 * 4),
        }
    }

    /// SQuAD 1.1 training split (BERT fine-tuning's workload).
    pub fn squad11() -> Self {
        Dataset {
            name: "SQuAD 1.1",
            samples: 87_599,
            // 384 tokens × (ids, mask, type) × i32.
            sample_bytes: ByteSize::bytes(384 * 3 * 4),
        }
    }

    /// Dataset name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Number of training samples.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Bytes per preprocessed sample.
    pub fn sample_bytes(&self) -> ByteSize {
        self.sample_bytes
    }

    /// Iterations per epoch at a global batch size.
    ///
    /// # Panics
    ///
    /// Panics if `global_batch` is zero.
    pub fn iterations_per_epoch(&self, global_batch: u32) -> u64 {
        assert!(global_batch > 0, "batch size must be positive");
        self.samples.div_ceil(global_batch as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn imagenet_epoch_length() {
        let d = Dataset::imagenet();
        // 8 workers × batch 64 = 512 global.
        assert_eq!(d.iterations_per_epoch(512), 2503);
    }

    #[test]
    fn squad_epoch_length() {
        let d = Dataset::squad11();
        assert_eq!(d.iterations_per_epoch(8), 10_950);
    }

    #[test]
    fn sample_sizes() {
        assert_eq!(Dataset::imagenet().sample_bytes(), ByteSize::bytes(602_112));
        assert_eq!(Dataset::squad11().sample_bytes(), ByteSize::bytes(4_608));
    }
}
