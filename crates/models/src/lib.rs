//! # coarse-models
//!
//! Workload substrate of the COARSE reproduction: exact tensor inventories
//! of the evaluated DL models ([`zoo`]: ResNet-50, BERT-Base/Large, VGG-16),
//! a GPU compute-time model ([`gpu`]), the GPU memory-capacity model behind
//! the paper's batch-size constraints ([`memory`]), per-iteration gradient /
//! parameter-deadline schedules ([`training`]), and dataset descriptors
//! ([`dataset`]).

#![warn(missing_docs)]

pub mod dataset;
pub mod gpu;
pub mod memory;
pub mod profile;
pub mod training;
pub mod zoo;

pub use dataset::Dataset;
pub use gpu::GpuCompute;
pub use memory::{MemoryModel, Residency};
pub use profile::{ModelProfile, TensorSpec};
pub use training::{ForwardNeed, GradientEvent, IterationPlan};
