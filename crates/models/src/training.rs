//! Per-iteration training schedule: when each gradient becomes available
//! during the backward pass, and when each updated parameter is needed by
//! the next forward pass.
//!
//! "In a DL model backward pass, parameters are updated in reverse order.
//! Therefore, tensors from the first few layers are updated at the end of a
//! training iteration while immediately consumed by the forward pass of the
//! next iteration" (§III-F). This module turns a [`ModelProfile`] plus
//! measured `T_FP`/`T_BP` into those exact event offsets, apportioning
//! per-layer time proportionally to the layer's parameter volume.

use coarse_simcore::time::SimDuration;

use crate::gpu::GpuCompute;
use crate::profile::ModelProfile;

/// One tensor's gradient becoming available during the backward pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GradientEvent {
    /// Index into [`ModelProfile::tensors`].
    pub tensor: usize,
    /// Offset from the *start of the backward pass* at which the gradient is
    /// ready to be pushed.
    pub ready: SimDuration,
}

/// One tensor's updated value being required by the next forward pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ForwardNeed {
    /// Index into [`ModelProfile::tensors`].
    pub tensor: usize,
    /// Offset from the *start of the forward pass* by which the updated
    /// parameter must have arrived.
    pub needed: SimDuration,
}

/// The timing skeleton of one training iteration.
#[derive(Debug, Clone)]
pub struct IterationPlan {
    forward_time: SimDuration,
    backward_time: SimDuration,
    gradients: Vec<GradientEvent>,
    needs: Vec<ForwardNeed>,
}

impl IterationPlan {
    /// Builds the plan for `model` on `gpu` at `batch` samples per GPU.
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero.
    pub fn new(model: &ModelProfile, gpu: &GpuCompute, batch: u32) -> Self {
        assert!(batch > 0, "batch size must be positive");
        let forward_time = gpu.forward_time(model, batch);
        let backward_time = gpu.backward_time(model, batch);
        Self::with_times(model, forward_time, backward_time)
    }

    /// Builds the plan from externally measured pass times (the paper
    /// measures `T_FP`/`T_BP` by running a few iterations, §III-F).
    pub fn with_times(
        model: &ModelProfile,
        forward_time: SimDuration,
        backward_time: SimDuration,
    ) -> Self {
        let layer_bytes = model.layer_bytes();
        let total_bytes: u64 = layer_bytes.iter().map(|b| b.as_u64()).sum();
        let layers = layer_bytes.len();

        // Cumulative byte share of layers [0, l): forward progress when
        // layer l starts; backward progress mirrors it.
        let mut prefix = vec![0u64; layers + 1];
        for l in 0..layers {
            prefix[l + 1] = prefix[l] + layer_bytes[l].as_u64();
        }
        let frac = |bytes: u64| bytes as f64 / total_bytes as f64;

        // Gradient of layer l is ready once the backward pass has consumed
        // all layers above it (layers l+1..) plus layer l itself.
        let mut gradients = Vec::with_capacity(model.tensors().len());
        for (idx, t) in model.tensors().iter().enumerate() {
            let l = t.layer as usize;
            let done_bytes = total_bytes - prefix[l];
            gradients.push(GradientEvent {
                tensor: idx,
                ready: backward_time.mul_f64(frac(done_bytes)),
            });
        }
        // Emission order: descending layer.
        gradients.sort_by_key(|g| (g.ready, g.tensor));

        // The next forward pass needs layer l's parameters when it reaches
        // layer l, i.e. after the layers below have run.
        let needs = model
            .tensors()
            .iter()
            .enumerate()
            .map(|(idx, t)| {
                let l = t.layer as usize;
                ForwardNeed {
                    tensor: idx,
                    needed: forward_time.mul_f64(frac(prefix[l])),
                }
            })
            .collect();

        IterationPlan {
            forward_time,
            backward_time,
            gradients,
            needs,
        }
    }

    /// Forward-pass duration (`T_FP`).
    pub fn forward_time(&self) -> SimDuration {
        self.forward_time
    }

    /// Backward-pass duration (`T_BP`).
    pub fn backward_time(&self) -> SimDuration {
        self.backward_time
    }

    /// Pure compute time of one iteration (`T_FP + T_BP`).
    pub fn compute_time(&self) -> SimDuration {
        self.forward_time + self.backward_time
    }

    /// Gradient availability events, in emission order (descending layer).
    pub fn gradients(&self) -> &[GradientEvent] {
        &self.gradients
    }

    /// Parameter deadlines for the next forward pass, in tensor order.
    pub fn forward_needs(&self) -> &[ForwardNeed] {
        &self.needs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo::{bert_base, resnet50};

    #[test]
    fn gradients_emitted_in_reverse_layer_order() {
        let model = resnet50();
        let plan = IterationPlan::new(&model, &GpuCompute::v100(), 64);
        let layers: Vec<u32> = plan
            .gradients()
            .iter()
            .map(|g| model.tensors()[g.tensor].layer)
            .collect();
        assert!(
            layers.windows(2).all(|w| w[0] >= w[1]),
            "gradient emission must be reverse-layer ordered"
        );
    }

    #[test]
    fn first_gradient_is_last_layer_nonzero_offset() {
        let model = bert_base();
        let plan = IterationPlan::new(&model, &GpuCompute::v100(), 2);
        let first = plan.gradients()[0];
        assert_eq!(model.tensors()[first.tensor].layer, model.layers() - 1);
        assert!(first.ready > SimDuration::ZERO);
        // The earliest-layer gradient lands exactly at the end of backward.
        let last = *plan.gradients().last().unwrap();
        assert_eq!(last.ready, plan.backward_time());
    }

    #[test]
    fn forward_needs_ordered_by_layer() {
        let model = resnet50();
        let plan = IterationPlan::new(&model, &GpuCompute::p100(), 32);
        // Layer-0 tensors are needed immediately.
        let t0 = plan
            .forward_needs()
            .iter()
            .find(|n| model.tensors()[n.tensor].layer == 0)
            .unwrap();
        assert_eq!(t0.needed, SimDuration::ZERO);
        // Deeper layers are needed strictly later.
        let deep = plan
            .forward_needs()
            .iter()
            .find(|n| model.tensors()[n.tensor].layer == model.layers() - 1)
            .unwrap();
        assert!(deep.needed > SimDuration::ZERO);
        assert!(deep.needed < plan.forward_time());
    }

    #[test]
    fn compute_time_sums_passes() {
        let model = resnet50();
        let plan = IterationPlan::new(&model, &GpuCompute::t4(), 64);
        assert_eq!(
            plan.compute_time(),
            plan.forward_time() + plan.backward_time()
        );
    }

    #[test]
    fn measured_times_override() {
        let model = resnet50();
        let plan = IterationPlan::with_times(
            &model,
            SimDuration::from_millis(100),
            SimDuration::from_millis(200),
        );
        assert_eq!(plan.forward_time(), SimDuration::from_millis(100));
        assert_eq!(plan.backward_time(), SimDuration::from_millis(200));
    }
}
