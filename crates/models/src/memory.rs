//! GPU memory-capacity model.
//!
//! The paper's Fig. 16e hinges on capacity: with NCCL AllReduce, BERT-Large
//! fine-tuning fits only batch 2 on a 16 GiB GPU, while COARSE — which keeps
//! master parameters and optimizer state in the CCI memory devices — fits
//! batch 4 and trains 48.3% faster. This module reproduces that constraint:
//! resident bytes = parameters + gradients + optimizer state + activations,
//! where COARSE offloads the master parameters and optimizer state.

use coarse_simcore::units::ByteSize;

use crate::profile::ModelProfile;

/// Bytes of Adam optimizer state per parameter (two FP32 moments).
pub const ADAM_BYTES_PER_PARAM: u64 = 8;

/// Where master parameters and optimizer state live during training.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Residency {
    /// Everything on the GPU (the AllReduce / NCCL baseline).
    AllOnGpu,
    /// Master parameters + optimizer state offloaded to CCI memory devices;
    /// the GPU keeps a working parameter copy and gradients (COARSE).
    OffloadedToCci,
}

/// Per-sample activation footprint of the evaluated models, calibrated so
/// the paper's batch limits hold on 16 GiB GPUs.
pub fn activation_bytes_per_sample(model: &ModelProfile) -> ByteSize {
    match model.name() {
        "ResNet-50" => ByteSize::mib(180),
        "BERT-Base" => ByteSize::mib(1024),
        "BERT-Large" => ByteSize::mib(3 * 1024),
        "VGG-16" => ByteSize::mib(400),
        "GPT-2 XL" => ByteSize::mib(2 * 1024),
        // Generic transformer-ish estimate: 24 bytes per parameter per
        // thousand samples of sequence — fall back to something proportional.
        _ => ByteSize::bytes(model.total_bytes().as_u64() * 2),
    }
}

/// Memory-footprint calculator for one worker GPU.
#[derive(Debug, Clone)]
pub struct MemoryModel {
    params: ByteSize,
    activation_per_sample: ByteSize,
    capacity: ByteSize,
}

impl MemoryModel {
    /// A model for `model` trained on a GPU with `capacity_gib` of DRAM.
    pub fn new(model: &ModelProfile, capacity_gib: u64) -> Self {
        MemoryModel {
            params: model.total_bytes(),
            activation_per_sample: activation_bytes_per_sample(model),
            capacity: ByteSize::gib(capacity_gib),
        }
    }

    /// Resident bytes at `batch` samples under `residency`.
    pub fn resident_bytes(&self, batch: u32, residency: Residency) -> ByteSize {
        let grads = self.params;
        let activations = self.activation_per_sample * batch as u64;
        match residency {
            Residency::AllOnGpu => {
                let params = self.params;
                let optimizer = ByteSize::bytes(self.params.as_u64() / 4 * ADAM_BYTES_PER_PARAM);
                params + grads + optimizer + activations
            }
            Residency::OffloadedToCci => {
                // A working parameter copy stays for compute; the master
                // copy and optimizer state live in the memory devices.
                // Gradients are pushed to the proxies as the backward pass
                // produces them, so only a shard staging buffer remains
                // resident (a quarter of the gradient payload).
                let grad_buffer = ByteSize::bytes(grads.as_u64() / 4);
                self.params + grad_buffer + activations
            }
        }
    }

    /// Whether `batch` fits in GPU memory under `residency`.
    pub fn fits(&self, batch: u32, residency: Residency) -> bool {
        self.resident_bytes(batch, residency) <= self.capacity
    }

    /// Largest batch size that fits (0 if even batch 1 does not).
    pub fn max_batch(&self, residency: Residency) -> u32 {
        let mut b = 0u32;
        while self.fits(b + 1, residency) {
            b += 1;
            if b >= 4096 {
                break;
            }
        }
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo::{bert_large, resnet50};

    #[test]
    fn bert_large_batch_limits_match_fig16e() {
        let mm = MemoryModel::new(&bert_large(), 16);
        // AllReduce: batch 2 fits, batch 4 does not (paper: "AllReduce can
        // only use a batch size of 2 due to memory capacity limitation").
        assert!(mm.fits(2, Residency::AllOnGpu));
        assert!(!mm.fits(4, Residency::AllOnGpu));
        // COARSE: batch 4 fits.
        assert!(mm.fits(4, Residency::OffloadedToCci));
        assert_eq!(mm.max_batch(Residency::AllOnGpu), 3);
        assert!(mm.max_batch(Residency::OffloadedToCci) >= 4);
    }

    #[test]
    fn gpt2_xl_only_trainable_with_offload() {
        // The §VI capacity claim: 1.5B parameters + Adam state exceed
        // 16 GiB at ANY batch on the GPU, but fit under COARSE's offload.
        let mm = MemoryModel::new(&crate::zoo::gpt2_xl(), 16);
        assert_eq!(mm.max_batch(Residency::AllOnGpu), 0, "no batch fits");
        assert!(mm.max_batch(Residency::OffloadedToCci) >= 1);
    }

    #[test]
    fn resnet50_large_batches_fit_everywhere() {
        let mm = MemoryModel::new(&resnet50(), 16);
        assert!(mm.fits(64, Residency::AllOnGpu));
        assert!(mm.fits(64, Residency::OffloadedToCci));
    }

    #[test]
    fn offload_strictly_reduces_footprint() {
        let mm = MemoryModel::new(&bert_large(), 16);
        for batch in [1u32, 2, 4] {
            assert!(
                mm.resident_bytes(batch, Residency::OffloadedToCci)
                    < mm.resident_bytes(batch, Residency::AllOnGpu)
            );
        }
    }

    #[test]
    fn resident_bytes_monotone_in_batch() {
        let mm = MemoryModel::new(&bert_large(), 16);
        let b2 = mm.resident_bytes(2, Residency::AllOnGpu);
        let b4 = mm.resident_bytes(4, Residency::AllOnGpu);
        assert!(b4 > b2);
    }
}
