//! GPU compute-time model.
//!
//! COARSE's dual-sync optimizer needs only `T_FP` and `T_BP` (§III-F), which
//! the paper itself measures and plugs into an analytical model. We derive
//! them from a FLOPs budget and a sustained-throughput figure per GPU SKU.

use coarse_simcore::time::SimDuration;

use crate::profile::ModelProfile;

/// Fraction of peak FP32 throughput sustained by real training kernels.
pub const DEFAULT_EFFICIENCY: f64 = 0.52;

/// Fixed per-iteration overhead (kernel launches, small-batch
/// underutilization), expressed in sample-equivalents. Makes compute time
/// sub-linear in batch size: doubling BERT-Large's batch from 2 to 4 costs
/// ~1.77× — the effect behind Fig. 16e's large-batch win.
pub const BATCH_FIXED_OVERHEAD: f64 = 0.6;

/// Backward-pass cost relative to forward (weight + input gradients).
pub const BACKWARD_FACTOR: f64 = 2.0;

/// A GPU's compute capability.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuCompute {
    /// SKU name.
    pub name: &'static str,
    /// Peak FP32 throughput in TFLOPS.
    pub fp32_tflops: f64,
    /// Sustained fraction of peak.
    pub efficiency: f64,
}

impl GpuCompute {
    /// NVIDIA T4.
    pub fn t4() -> Self {
        GpuCompute {
            name: "T4",
            fp32_tflops: 8.1,
            efficiency: DEFAULT_EFFICIENCY,
        }
    }

    /// NVIDIA P100.
    pub fn p100() -> Self {
        GpuCompute {
            name: "P100",
            fp32_tflops: 9.3,
            efficiency: DEFAULT_EFFICIENCY,
        }
    }

    /// NVIDIA V100.
    pub fn v100() -> Self {
        GpuCompute {
            name: "V100",
            fp32_tflops: 15.7,
            efficiency: DEFAULT_EFFICIENCY,
        }
    }

    /// Sustained throughput in FLOPs per second.
    pub fn sustained_flops(&self) -> f64 {
        self.fp32_tflops * 1e12 * self.efficiency
    }

    /// Time to execute `flops` floating-point operations.
    ///
    /// # Panics
    ///
    /// Panics if `flops` is negative.
    pub fn compute_time(&self, flops: f64) -> SimDuration {
        assert!(flops >= 0.0, "negative FLOPs");
        SimDuration::from_secs_f64(flops / self.sustained_flops())
    }

    /// Forward-pass time for one iteration of `model` at `batch` samples
    /// (sub-linear in batch: a fixed overhead of
    /// [`BATCH_FIXED_OVERHEAD`] sample-equivalents is added).
    pub fn forward_time(&self, model: &ModelProfile, batch: u32) -> SimDuration {
        self.compute_time(model.fwd_flops_per_sample() * (batch as f64 + BATCH_FIXED_OVERHEAD))
    }

    /// Backward-pass time for one iteration of `model` at `batch` samples.
    pub fn backward_time(&self, model: &ModelProfile, batch: u32) -> SimDuration {
        self.compute_time(
            model.fwd_flops_per_sample() * (batch as f64 + BATCH_FIXED_OVERHEAD) * BACKWARD_FACTOR,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo::{bert_large, resnet50};

    #[test]
    fn sku_ordering() {
        assert!(GpuCompute::v100().sustained_flops() > GpuCompute::p100().sustained_flops());
        assert!(GpuCompute::p100().sustained_flops() > GpuCompute::t4().sustained_flops());
    }

    #[test]
    fn resnet50_iteration_time_plausible() {
        let v100 = GpuCompute::v100();
        let m = resnet50();
        let fwd = v100.forward_time(&m, 64);
        let bwd = v100.backward_time(&m, 64);
        // ~84ms forward, ~167ms backward at 40% of 15.7 TFLOPS.
        assert!(
            fwd.as_millis_f64() > 40.0 && fwd.as_millis_f64() < 200.0,
            "fwd {fwd}"
        );
        // Backward is 2x forward up to nanosecond rounding.
        assert!(bwd.as_nanos().abs_diff(fwd.as_nanos() * 2) <= 2);
    }

    #[test]
    fn bert_large_heavier_than_resnet_per_sample() {
        let v100 = GpuCompute::v100();
        let per_bert = v100.forward_time(&bert_large(), 1);
        let per_resnet = v100.forward_time(&resnet50(), 1);
        assert!(per_bert > per_resnet * 10);
    }

    #[test]
    fn compute_time_sublinear_in_batch() {
        let t4 = GpuCompute::t4();
        let m = resnet50();
        let b1 = t4.forward_time(&m, 1);
        let b8 = t4.forward_time(&m, 8);
        let ratio = b8.as_secs_f64() / b1.as_secs_f64();
        // (8 + 0.6) / (1 + 0.6) = 5.375: amortizing the fixed overhead.
        assert!((ratio - 5.375).abs() < 0.01, "got {ratio}");
        // BERT-Large batch 2 → 4 costs ~1.77x, not 2x (Fig. 16e).
        let v100 = GpuCompute::v100();
        let bl = crate::zoo::bert_large();
        let r = v100.forward_time(&bl, 4).as_secs_f64() / v100.forward_time(&bl, 2).as_secs_f64();
        assert!((r - 1.77).abs() < 0.01, "got {r}");
    }

    #[test]
    fn zero_flops_zero_time() {
        assert_eq!(GpuCompute::t4().compute_time(0.0), SimDuration::ZERO);
    }
}
