//! Model profiles: the tensor inventory of a DL model.
//!
//! Parameter synchronization only cares about tensor *sizes, grouping into
//! layers, and ordering* — gradients are produced in reverse layer order
//! during the backward pass (§III-F). A [`ModelProfile`] captures exactly
//! that, generated from the real architectures in [`crate::zoo`].

use coarse_simcore::units::ByteSize;

/// One named parameter tensor of a model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TensorSpec {
    /// Human-readable name (e.g. `"layer3.2.conv2.weight"`).
    pub name: String,
    /// Number of `f32` elements.
    pub elems: u64,
    /// Layer index: 0 is closest to the input. Gradients are produced in
    /// *descending* layer order.
    pub layer: u32,
}

impl TensorSpec {
    /// Payload size in bytes (4 bytes per element).
    pub fn byte_size(&self) -> ByteSize {
        ByteSize::bytes(self.elems * 4)
    }
}

/// A complete model description for the synchronization layer.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelProfile {
    name: String,
    tensors: Vec<TensorSpec>,
    layers: u32,
    fwd_flops_per_sample: f64,
}

impl ModelProfile {
    /// Builds a profile from a tensor list.
    ///
    /// # Panics
    ///
    /// Panics if `tensors` is empty or `fwd_flops_per_sample` is not
    /// positive.
    pub fn new(
        name: impl Into<String>,
        tensors: Vec<TensorSpec>,
        fwd_flops_per_sample: f64,
    ) -> Self {
        assert!(!tensors.is_empty(), "a model needs at least one tensor");
        assert!(fwd_flops_per_sample > 0.0, "forward FLOPs must be positive");
        let layers = tensors.iter().map(|t| t.layer).max().unwrap_or(0) + 1;
        ModelProfile {
            name: name.into(),
            tensors,
            layers,
            fwd_flops_per_sample,
        }
    }

    /// Model name (e.g. `"ResNet-50"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All parameter tensors, in layer order.
    pub fn tensors(&self) -> &[TensorSpec] {
        &self.tensors
    }

    /// Number of logical layers.
    pub fn layers(&self) -> u32 {
        self.layers
    }

    /// Forward-pass FLOPs for one sample.
    pub fn fwd_flops_per_sample(&self) -> f64 {
        self.fwd_flops_per_sample
    }

    /// Total parameter count.
    pub fn total_params(&self) -> u64 {
        self.tensors.iter().map(|t| t.elems).sum()
    }

    /// Total parameter payload (the paper's `n`).
    pub fn total_bytes(&self) -> ByteSize {
        ByteSize::bytes(self.total_params() * 4)
    }

    /// Tensors of one layer.
    pub fn layer_tensors(&self, layer: u32) -> impl Iterator<Item = &TensorSpec> {
        self.tensors.iter().filter(move |t| t.layer == layer)
    }

    /// Parameter bytes per layer, indexed by layer.
    pub fn layer_bytes(&self) -> Vec<ByteSize> {
        let mut v = vec![ByteSize::ZERO; self.layers as usize];
        for t in &self.tensors {
            v[t.layer as usize] += t.byte_size();
        }
        v
    }

    /// Tensor indices in gradient production order (descending layer; stable
    /// within a layer).
    pub fn backward_order(&self) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.tensors.len()).collect();
        idx.sort_by_key(|&i| std::cmp::Reverse(self.tensors[i].layer));
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> ModelProfile {
        ModelProfile::new(
            "toy",
            vec![
                TensorSpec {
                    name: "a".into(),
                    elems: 10,
                    layer: 0,
                },
                TensorSpec {
                    name: "b".into(),
                    elems: 20,
                    layer: 1,
                },
                TensorSpec {
                    name: "c".into(),
                    elems: 30,
                    layer: 1,
                },
                TensorSpec {
                    name: "d".into(),
                    elems: 40,
                    layer: 2,
                },
            ],
            1e9,
        )
    }

    #[test]
    fn totals() {
        let p = profile();
        assert_eq!(p.total_params(), 100);
        assert_eq!(p.total_bytes(), ByteSize::bytes(400));
        assert_eq!(p.layers(), 3);
    }

    #[test]
    fn layer_bytes_grouping() {
        let p = profile();
        assert_eq!(
            p.layer_bytes(),
            vec![
                ByteSize::bytes(40),
                ByteSize::bytes(200),
                ByteSize::bytes(160)
            ]
        );
    }

    #[test]
    fn backward_order_is_reverse_layers() {
        let p = profile();
        let order = p.backward_order();
        assert_eq!(order, vec![3, 1, 2, 0]);
    }

    #[test]
    fn layer_tensors_filtered() {
        let p = profile();
        let names: Vec<&str> = p.layer_tensors(1).map(|t| t.name.as_str()).collect();
        assert_eq!(names, vec!["b", "c"]);
    }

    #[test]
    #[should_panic(expected = "at least one tensor")]
    fn empty_model_rejected() {
        let _ = ModelProfile::new("empty", vec![], 1.0);
    }
}
