//! Property tests for the simulation kernel.

use proptest::prelude::*;

use coarse_simcore::prelude::*;

proptest! {
    /// Cancelling any subset of events removes exactly those events and
    /// preserves the order of the rest.
    #[test]
    fn queue_cancellation(
        times in proptest::collection::vec(0u64..100, 1..60),
        cancel_mask in proptest::collection::vec(any::<bool>(), 60),
    ) {
        let mut q = EventQueue::new();
        let handles: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| (i, q.schedule_at(SimTime::from_nanos(t), i)))
            .collect();
        let mut kept: Vec<usize> = Vec::new();
        for (i, h) in handles {
            if cancel_mask[i % cancel_mask.len()] {
                prop_assert!(q.cancel(h));
            } else {
                kept.push(i);
            }
        }
        prop_assert_eq!(q.len(), kept.len());
        let mut popped: Vec<usize> = Vec::new();
        while let Some((_, i)) = q.pop() {
            popped.push(i);
        }
        // Same multiset, ordered by (time, insertion).
        let mut expected = kept.clone();
        expected.sort_by_key(|&i| (times[i], i));
        prop_assert_eq!(popped, expected);
    }

    /// The RNG's `next_below` is always in range and `range_inclusive`
    /// honors both bounds.
    #[test]
    fn rng_bounds(seed in any::<u64>(), bound in 1u64..1_000_000, lo in 0u64..1000, span in 0u64..1000) {
        let mut rng = SimRng::seed_from_u64(seed);
        for _ in 0..50 {
            prop_assert!(rng.next_below(bound) < bound);
            let v = rng.range_inclusive(lo, lo + span);
            prop_assert!(v >= lo && v <= lo + span);
        }
    }

    /// Merging OnlineStats in any split equals the unsplit stream.
    #[test]
    fn stats_merge_associative(
        data in proptest::collection::vec(-1e6f64..1e6, 2..200),
        split in 1usize..199,
    ) {
        let split = split.min(data.len() - 1);
        let mut whole = OnlineStats::new();
        data.iter().for_each(|&x| whole.record(x));
        let mut left = OnlineStats::new();
        let mut right = OnlineStats::new();
        data[..split].iter().for_each(|&x| left.record(x));
        data[split..].iter().for_each(|&x| right.record(x));
        left.merge(&right);
        prop_assert_eq!(left.count(), whole.count());
        prop_assert!((left.mean() - whole.mean()).abs() <= 1e-6 * whole.mean().abs().max(1.0));
        prop_assert!((left.variance() - whole.variance()).abs() <= 1e-5 * whole.variance().abs().max(1.0));
    }

    /// BusyTracker utilization never exceeds 1 regardless of overlap.
    #[test]
    fn busy_utilization_bounded(
        intervals in proptest::collection::vec((0u64..1000, 0u64..100), 0..50),
    ) {
        let mut b = BusyTracker::new();
        for (start, len) in intervals {
            b.record(SimTime::from_nanos(start), SimTime::from_nanos(start + len));
        }
        let u = b.utilization(SimTime::from_nanos(1100));
        prop_assert!((0.0..=1.0).contains(&u), "utilization {u}");
    }

    /// Histogram totals equal the number of observations and every bucket
    /// boundary behaves as (lo, hi].
    #[test]
    fn histogram_conservation(samples in proptest::collection::vec(-100.0f64..100.0, 0..200)) {
        let mut h = Histogram::with_bounds(vec![-50.0, 0.0, 50.0]);
        for &x in &samples {
            h.record(x);
        }
        prop_assert_eq!(h.total(), samples.len() as u64);
        prop_assert_eq!(h.counts().len(), 4);
    }

    /// ByteSize div_ceil covers the payload with the minimal chunk count.
    #[test]
    fn div_ceil_minimal_cover(size in 0u64..1_000_000, chunk in 1u64..10_000) {
        let n = ByteSize::bytes(size).div_ceil(ByteSize::bytes(chunk));
        prop_assert!(n * chunk >= size);
        if n > 0 {
            prop_assert!((n - 1) * chunk < size);
        }
    }
}

/// A deterministic multi-event model: N timers that re-arm a fixed number
/// of times; the simulation must process exactly the expected event count.
#[test]
fn simulation_event_conservation() {
    struct Timers {
        remaining: Vec<u32>,
        fired: u64,
    }
    impl Model for Timers {
        type Event = usize;
        fn handle(&mut self, _now: SimTime, idx: usize, q: &mut EventQueue<usize>) {
            self.fired += 1;
            if self.remaining[idx] > 0 {
                self.remaining[idx] -= 1;
                q.schedule_after(SimDuration::from_nanos((idx as u64 + 1) * 7), idx);
            }
        }
    }
    let rearms = vec![3u32, 5, 0, 2];
    let expected: u64 = rearms.iter().map(|&r| r as u64 + 1).sum();
    let mut sim = Simulation::new(Timers {
        remaining: rearms,
        fired: 0,
    });
    for i in 0..4 {
        sim.queue_mut().schedule_now(i);
    }
    sim.run_to_completion();
    assert_eq!(sim.model().fired, expected);
    assert_eq!(sim.events_processed(), expected);
}
