//! Property tests for the simulation kernel, driven by the in-repo
//! deterministic harness ([`coarse_simcore::check`]).

use coarse_simcore::check::{run_cases, Gen};
use coarse_simcore::prelude::*;

/// Cancelling any subset of events removes exactly those events and
/// preserves the order of the rest.
#[test]
fn queue_cancellation() {
    run_cases("queue_cancellation", 64, |g: &mut Gen| {
        let times = g.vec_of(1..60, |g| g.u64_in(0..100));
        let cancel_mask = g.vec_of(60..61, |g| g.bool());
        let mut q = EventQueue::new();
        let handles: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| (i, q.schedule_at(SimTime::from_nanos(t), i)))
            .collect();
        let mut kept: Vec<usize> = Vec::new();
        for (i, h) in handles {
            if cancel_mask[i % cancel_mask.len()] {
                assert!(q.cancel(h));
            } else {
                kept.push(i);
            }
        }
        assert_eq!(q.len(), kept.len());
        let mut popped: Vec<usize> = Vec::new();
        while let Some((_, i)) = q.pop() {
            popped.push(i);
        }
        // Same multiset, ordered by (time, insertion).
        let mut expected = kept.clone();
        expected.sort_by_key(|&i| (times[i], i));
        assert_eq!(popped, expected);
    });
}

/// Differential test of the two [`EventSchedule`] implementations: over
/// seeded random schedules — heavy on timestamp ties, interleaved pops, and
/// cancellations (including double- and after-pop cancels) — the calendar
/// [`EventQueue`] and the reference [`HeapEventQueue`] must agree on every
/// observable: pop sequences, peeked times, lengths, clocks, and cancel
/// results.
#[test]
fn calendar_and_heap_queues_are_interchangeable() {
    run_cases("queue_differential", 256, |g: &mut Gen| {
        let mut cal: EventQueue<usize> = EventQueue::new();
        let mut heap: HeapEventQueue<usize> = HeapEventQueue::new();
        // Parallel handle books: entry i holds the two queues' handles for
        // the i-th scheduled event.
        let mut handles: Vec<(EventHandle, EventHandle)> = Vec::new();
        let mut popped = 0usize;
        let ops = g.usize_in(10..200);
        for op in 0..ops {
            match g.u64_in(0..10) {
                // Schedule (most common). Small delta range forces ties;
                // occasionally jump far ahead to cross calendar years.
                0..=5 => {
                    let delta = if g.u64_in(0..20) == 0 {
                        g.u64_in(0..5_000_000)
                    } else {
                        g.u64_in(0..8)
                    };
                    let at = cal.now() + SimDuration::from_nanos(delta);
                    let ha = cal.schedule_at(at, op);
                    let hb = heap.schedule_at(at, op);
                    handles.push((ha, hb));
                }
                // Cancel a random handle — possibly already popped or
                // already cancelled; both queues must report the same.
                6..=7 if !handles.is_empty() => {
                    let i = g.usize_in(0..handles.len());
                    let (ha, hb) = handles[i];
                    assert_eq!(cal.cancel(ha), heap.cancel(hb));
                }
                // Pop.
                _ => {
                    assert_eq!(cal.peek_time(), heap.peek_time());
                    let (a, b) = (cal.pop(), heap.pop());
                    assert_eq!(a, b, "pop #{popped} diverged");
                    popped += 1;
                }
            }
            assert_eq!(cal.len(), heap.len());
            assert_eq!(cal.now(), heap.now());
        }
        // Drain: the tails must match element-for-element.
        loop {
            assert_eq!(cal.peek_time(), heap.peek_time());
            let (a, b) = (cal.pop(), heap.pop());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    });
}

/// The RNG's `next_below` is always in range and `range_inclusive` honors
/// both bounds.
#[test]
fn rng_bounds() {
    run_cases("rng_bounds", 64, |g: &mut Gen| {
        let seed = g.any_u64();
        let bound = g.u64_in(1..1_000_000);
        let lo = g.u64_in(0..1000);
        let span = g.u64_in(0..1000);
        let mut rng = SimRng::seed_from_u64(seed);
        for _ in 0..50 {
            assert!(rng.next_below(bound) < bound);
            let v = rng.range_inclusive(lo, lo + span);
            assert!(v >= lo && v <= lo + span);
        }
    });
}

/// Merging OnlineStats in any split equals the unsplit stream.
#[test]
fn stats_merge_associative() {
    run_cases("stats_merge_associative", 64, |g: &mut Gen| {
        let data = g.vec_of(2..200, |g| g.f64_in(-1e6, 1e6));
        let split = g.usize_in(1..199).min(data.len() - 1);
        let mut whole = OnlineStats::new();
        data.iter().for_each(|&x| whole.record(x));
        let mut left = OnlineStats::new();
        let mut right = OnlineStats::new();
        data[..split].iter().for_each(|&x| left.record(x));
        data[split..].iter().for_each(|&x| right.record(x));
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() <= 1e-6 * whole.mean().abs().max(1.0));
        assert!(
            (left.variance() - whole.variance()).abs() <= 1e-5 * whole.variance().abs().max(1.0)
        );
    });
}

/// BusyTracker utilization never exceeds 1 regardless of overlap.
#[test]
fn busy_utilization_bounded() {
    run_cases("busy_utilization_bounded", 64, |g: &mut Gen| {
        let intervals = g.vec_of(0..50, |g| (g.u64_in(0..1000), g.u64_in(0..100)));
        let mut b = BusyTracker::new();
        for (start, len) in intervals {
            b.record(SimTime::from_nanos(start), SimTime::from_nanos(start + len));
        }
        let u = b.utilization(SimTime::from_nanos(1100));
        assert!((0.0..=1.0).contains(&u), "utilization {u}");
    });
}

/// Histogram totals equal the number of observations and every bucket
/// boundary behaves as (lo, hi].
#[test]
fn histogram_conservation() {
    run_cases("histogram_conservation", 64, |g: &mut Gen| {
        let samples = g.vec_of(0..200, |g| g.f64_in(-100.0, 100.0));
        let mut h = Histogram::with_bounds(vec![-50.0, 0.0, 50.0]);
        for &x in &samples {
            h.record(x);
        }
        assert_eq!(h.total(), samples.len() as u64);
        assert_eq!(h.counts().len(), 4);
    });
}

/// ByteSize div_ceil covers the payload with the minimal chunk count.
#[test]
fn div_ceil_minimal_cover() {
    run_cases("div_ceil_minimal_cover", 128, |g: &mut Gen| {
        let size = g.u64_in(0..1_000_000);
        let chunk = g.u64_in(1..10_000);
        let n = ByteSize::bytes(size).div_ceil(ByteSize::bytes(chunk));
        assert!(n * chunk >= size);
        if n > 0 {
            assert!((n - 1) * chunk < size);
        }
    });
}

/// A deterministic multi-event model: N timers that re-arm a fixed number
/// of times; the simulation must process exactly the expected event count.
#[test]
fn simulation_event_conservation() {
    struct Timers {
        remaining: Vec<u32>,
        fired: u64,
    }
    impl Model for Timers {
        type Event = usize;
        fn handle(&mut self, _now: SimTime, idx: usize, q: &mut EventQueue<usize>) {
            self.fired += 1;
            if self.remaining[idx] > 0 {
                self.remaining[idx] -= 1;
                q.schedule_after(SimDuration::from_nanos((idx as u64 + 1) * 7), idx);
            }
        }
    }
    let rearms = vec![3u32, 5, 0, 2];
    let expected: u64 = rearms.iter().map(|&r| r as u64 + 1).sum();
    let mut sim = Simulation::new(Timers {
        remaining: rearms,
        fired: 0,
    });
    for i in 0..4 {
        sim.queue_mut().schedule_now(i);
    }
    sim.run_to_completion();
    assert_eq!(sim.model().fired, expected);
    assert_eq!(sim.events_processed(), expected);
}
