//! Exact quantile estimation over recorded samples.
//!
//! Experiment reports quote tail latencies (p95/p99 synchronization waits,
//! straggler stalls). Sample counts in this simulator are modest, so an
//! exact sorted-sample estimator is both simpler and more trustworthy than
//! a streaming sketch.

/// Collects samples and answers quantile queries exactly.
///
/// ```
/// use coarse_simcore::stats::QuantileEstimator;
/// let mut q = QuantileEstimator::new();
/// for x in 1..=100 {
///     q.record(x as f64);
/// }
/// assert_eq!(q.quantile(0.5), Some(50.5));
/// assert_eq!(q.quantile(1.0), Some(100.0));
/// ```
#[derive(Debug, Clone, Default)]
pub struct QuantileEstimator {
    samples: Vec<f64>,
    sorted: bool,
}

impl QuantileEstimator {
    /// An empty estimator.
    pub fn new() -> Self {
        QuantileEstimator {
            samples: Vec::new(),
            sorted: true,
        }
    }

    /// Adds one observation.
    ///
    /// # Panics
    ///
    /// Panics if `x` is NaN (quantiles over NaN are meaningless).
    pub fn record(&mut self, x: f64) {
        assert!(!x.is_nan(), "cannot rank NaN");
        self.samples.push(x);
        self.sorted = false;
    }

    /// Number of observations.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// The `q`-quantile (linear interpolation between order statistics), or
    /// `None` if no samples were recorded.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&mut self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
        if self.samples.is_empty() {
            return None;
        }
        if !self.sorted {
            self.samples
                // simlint: allow(panic-in-library, reason = "record() rejects NaN, so all stored samples compare totally")
                .sort_by(|a, b| a.partial_cmp(b).expect("no NaN recorded"));
            self.sorted = true;
        }
        let n = self.samples.len();
        if n == 1 {
            return Some(self.samples[0]);
        }
        let pos = q * (n - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let frac = pos - lo as f64;
        Some(self.samples[lo] * (1.0 - frac) + self.samples[hi] * frac)
    }

    /// Convenience: the median.
    pub fn median(&mut self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// Arithmetic mean of all samples, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        Some(self.samples.iter().sum::<f64>() / self.samples.len() as f64)
    }

    /// Convenience: the 99th percentile.
    pub fn p99(&mut self) -> Option<f64> {
        self.quantile(0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_has_no_quantiles() {
        let mut q = QuantileEstimator::new();
        assert_eq!(q.quantile(0.5), None);
        assert_eq!(q.count(), 0);
    }

    #[test]
    fn single_sample_is_every_quantile() {
        let mut q = QuantileEstimator::new();
        q.record(7.0);
        assert_eq!(q.quantile(0.0), Some(7.0));
        assert_eq!(q.quantile(0.5), Some(7.0));
        assert_eq!(q.quantile(1.0), Some(7.0));
    }

    #[test]
    fn interpolates_between_order_statistics() {
        let mut q = QuantileEstimator::new();
        for x in [10.0, 20.0, 30.0, 40.0] {
            q.record(x);
        }
        assert_eq!(q.quantile(0.0), Some(10.0));
        assert_eq!(q.median(), Some(25.0));
        assert_eq!(q.quantile(1.0), Some(40.0));
        // pos = 1/3 · 3 = 1 → exactly the second sample.
        assert_eq!(q.quantile(1.0 / 3.0), Some(20.0));
    }

    #[test]
    fn unsorted_insertion_order_is_fine() {
        let mut q = QuantileEstimator::new();
        for x in [5.0, 1.0, 4.0, 2.0, 3.0] {
            q.record(x);
        }
        assert_eq!(q.median(), Some(3.0));
        // Recording after a query re-sorts lazily.
        q.record(0.0);
        assert_eq!(q.quantile(0.0), Some(0.0));
    }

    #[test]
    fn p99_tracks_the_tail() {
        let mut q = QuantileEstimator::new();
        for _ in 0..99 {
            q.record(1.0);
        }
        q.record(100.0);
        let p99 = q.p99().unwrap();
        assert!(p99 > 1.0 && p99 <= 100.0, "p99 {p99}");
    }

    #[test]
    #[should_panic(expected = "cannot rank NaN")]
    fn nan_rejected() {
        QuantileEstimator::new().record(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "quantile must be in [0,1]")]
    fn out_of_range_quantile_rejected() {
        let mut q = QuantileEstimator::new();
        q.record(1.0);
        let _ = q.quantile(1.5);
    }

    #[test]
    #[should_panic(expected = "quantile must be in [0,1]")]
    fn negative_quantile_rejected() {
        let mut q = QuantileEstimator::new();
        q.record(1.0);
        let _ = q.quantile(-0.1);
    }

    #[test]
    fn duplicate_heavy_samples() {
        // Queue-depth style data: long runs of identical values with a few
        // outliers. Every interior quantile must land on a real plateau.
        let mut q = QuantileEstimator::new();
        for _ in 0..50 {
            q.record(2.0);
        }
        for _ in 0..50 {
            q.record(2.0);
        }
        q.record(9.0);
        assert_eq!(q.median(), Some(2.0));
        assert_eq!(q.quantile(0.25), Some(2.0));
        assert_eq!(q.quantile(0.75), Some(2.0));
        assert_eq!(q.quantile(1.0), Some(9.0));
        assert_eq!(q.count(), 101);
    }

    #[test]
    fn all_identical_samples_collapse() {
        let mut q = QuantileEstimator::new();
        for _ in 0..10 {
            q.record(4.5);
        }
        for p in [0.0, 0.01, 0.5, 0.99, 1.0] {
            assert_eq!(q.quantile(p), Some(4.5));
        }
        assert_eq!(q.mean(), Some(4.5));
    }

    #[test]
    fn mean_tracks_samples() {
        let mut q = QuantileEstimator::new();
        assert_eq!(q.mean(), None);
        q.record(1.0);
        assert_eq!(q.mean(), Some(1.0));
        q.record(3.0);
        assert_eq!(q.mean(), Some(2.0));
        // Negative values are fine: quantiles are signed.
        q.record(-4.0);
        assert_eq!(q.mean(), Some(0.0));
        assert_eq!(q.quantile(0.0), Some(-4.0));
    }
}
