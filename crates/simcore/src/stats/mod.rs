//! Measurement collectors: online summaries, histograms, time series, and a
//! busy-interval tracker for utilization accounting.

use crate::time::{SimDuration, SimTime};

pub mod quantile;

pub use quantile::QuantileEstimator;

/// Streaming mean/variance/min/max (Welford's algorithm).
///
/// ```
/// use coarse_simcore::stats::OnlineStats;
/// let mut s = OnlineStats::new();
/// for x in [1.0, 2.0, 3.0] { s.record(x); }
/// assert_eq!(s.mean(), 2.0);
/// assert_eq!(s.count(), 3);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// An empty summary.
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean, or 0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance, or 0 if fewer than two observations.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observation, or `None` if empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Maximum observation, or `None` if empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merges another summary into this one.
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A fixed-boundary histogram over `f64` observations.
#[derive(Debug, Clone)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
}

impl Histogram {
    /// Creates a histogram whose buckets are `(-inf, b0], (b0, b1], ...,
    /// (b_last, +inf)`.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly increasing.
    pub fn with_bounds(bounds: Vec<f64>) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        let n = bounds.len() + 1;
        Histogram {
            bounds,
            counts: vec![0; n],
        }
    }

    /// Adds an observation.
    pub fn record(&mut self, x: f64) {
        let idx = self.bounds.partition_point(|&b| b < x);
        self.counts[idx] += 1;
    }

    /// Per-bucket counts (`bounds.len() + 1` entries).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }
}

/// A (time, value) series recorder for figure generation.
#[derive(Debug, Clone, Default)]
pub struct Series {
    points: Vec<(SimTime, f64)>,
}

impl Series {
    /// An empty series.
    pub fn new() -> Self {
        Series { points: Vec::new() }
    }

    /// Appends a sample.
    ///
    /// # Panics
    ///
    /// Panics if `at` precedes the previous sample (series must be
    /// time-ordered).
    pub fn record(&mut self, at: SimTime, value: f64) {
        if let Some(&(last, _)) = self.points.last() {
            assert!(at >= last, "series samples must be time-ordered");
        }
        self.points.push((at, value));
    }

    /// The recorded samples.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The final value, if any.
    pub fn last_value(&self) -> Option<f64> {
        self.points.last().map(|&(_, v)| v)
    }
}

/// Tracks busy intervals of a resource to compute utilization.
///
/// Intervals may be reported out of order and may overlap; overlapping busy
/// time is merged so utilization never exceeds 1.
#[derive(Debug, Clone, Default)]
pub struct BusyTracker {
    intervals: Vec<(SimTime, SimTime)>,
}

impl BusyTracker {
    /// An empty tracker.
    pub fn new() -> Self {
        BusyTracker {
            intervals: Vec::new(),
        }
    }

    /// Records that the resource was busy on `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if `end < start`.
    pub fn record(&mut self, start: SimTime, end: SimTime) {
        assert!(end >= start, "busy interval must not be reversed");
        if end > start {
            self.intervals.push((start, end));
        }
    }

    /// Total busy time after merging overlaps.
    pub fn busy_time(&self) -> SimDuration {
        let mut iv = self.intervals.clone();
        iv.sort_unstable();
        let mut total = SimDuration::ZERO;
        let mut cur: Option<(SimTime, SimTime)> = None;
        for (s, e) in iv {
            match cur {
                None => cur = Some((s, e)),
                Some((cs, ce)) => {
                    if s <= ce {
                        cur = Some((cs, ce.max(e)));
                    } else {
                        total += ce - cs;
                        cur = Some((s, e));
                    }
                }
            }
        }
        if let Some((cs, ce)) = cur {
            total += ce - cs;
        }
        total
    }

    /// Busy fraction over `[SimTime::ZERO, horizon)`.
    ///
    /// # Panics
    ///
    /// Panics if `horizon` is zero.
    pub fn utilization(&self, horizon: SimTime) -> f64 {
        assert!(horizon > SimTime::ZERO, "horizon must be positive");
        self.busy_time().as_secs_f64() / horizon.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_basics() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(x);
        }
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn online_stats_empty() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
    }

    #[test]
    fn merge_matches_single_stream() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = OnlineStats::new();
        data.iter().for_each(|&x| whole.record(x));
        let mut left = OnlineStats::new();
        let mut right = OnlineStats::new();
        data[..37].iter().for_each(|&x| left.record(x));
        data[37..].iter().for_each(|&x| right.record(x));
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn histogram_buckets() {
        let mut h = Histogram::with_bounds(vec![1.0, 2.0, 3.0]);
        for x in [0.5, 1.0, 1.5, 2.5, 10.0] {
            h.record(x);
        }
        // (-inf,1]: 0.5, 1.0  (1,2]: 1.5  (2,3]: 2.5  (3,inf): 10.0
        assert_eq!(h.counts(), &[2, 1, 1, 1]);
        assert_eq!(h.total(), 5);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn histogram_rejects_bad_bounds() {
        let _ = Histogram::with_bounds(vec![1.0, 1.0]);
    }

    #[test]
    fn series_ordering_enforced() {
        let mut s = Series::new();
        s.record(SimTime::from_nanos(1), 10.0);
        s.record(SimTime::from_nanos(1), 11.0);
        s.record(SimTime::from_nanos(5), 12.0);
        assert_eq!(s.len(), 3);
        assert_eq!(s.last_value(), Some(12.0));
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn series_rejects_out_of_order() {
        let mut s = Series::new();
        s.record(SimTime::from_nanos(5), 1.0);
        s.record(SimTime::from_nanos(1), 2.0);
    }

    #[test]
    fn busy_tracker_merges_overlaps() {
        let mut b = BusyTracker::new();
        b.record(SimTime::from_nanos(0), SimTime::from_nanos(10));
        b.record(SimTime::from_nanos(5), SimTime::from_nanos(15));
        b.record(SimTime::from_nanos(20), SimTime::from_nanos(30));
        assert_eq!(b.busy_time(), SimDuration::from_nanos(25));
        assert!((b.utilization(SimTime::from_nanos(50)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn busy_tracker_adjacent_intervals() {
        let mut b = BusyTracker::new();
        b.record(SimTime::from_nanos(0), SimTime::from_nanos(10));
        b.record(SimTime::from_nanos(10), SimTime::from_nanos(20));
        assert_eq!(b.busy_time(), SimDuration::from_nanos(20));
    }

    #[test]
    fn busy_tracker_ignores_empty_intervals() {
        let mut b = BusyTracker::new();
        b.record(SimTime::from_nanos(3), SimTime::from_nanos(3));
        assert_eq!(b.busy_time(), SimDuration::ZERO);
    }
}
