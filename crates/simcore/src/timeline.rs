//! Serially-reusable resource bookkeeping.
//!
//! A [`ResourceTimeline`] models a resource that serves one request at a time
//! in arrival order (a link direction, a DMA engine, a compute stream). A
//! request arriving at `t` begins service at `max(t, busy_until)` and occupies
//! the resource for its duration. This is the store-and-forward approximation
//! used throughout the fabric model; requests must be offered in nondecreasing
//! arrival order, which the event-driven kernel guarantees.

use crate::time::{SimDuration, SimTime};

/// A FIFO-served, serially-reusable resource.
///
/// ```
/// use coarse_simcore::timeline::ResourceTimeline;
/// use coarse_simcore::time::{SimDuration, SimTime};
///
/// let mut r = ResourceTimeline::new();
/// let a = r.reserve(SimTime::ZERO, SimDuration::from_nanos(10));
/// let b = r.reserve(SimTime::from_nanos(3), SimDuration::from_nanos(5));
/// assert_eq!(a.end.as_nanos(), 10);
/// assert_eq!(b.start.as_nanos(), 10); // queued behind `a`
/// assert_eq!(b.end.as_nanos(), 15);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ResourceTimeline {
    busy_until: SimTime,
    busy: SimDuration,
    served: u64,
}

/// The interval granted for one reservation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grant {
    /// When service begins.
    pub start: SimTime,
    /// When service completes.
    pub end: SimTime,
}

impl Grant {
    /// Time spent waiting before service, given the arrival instant.
    pub fn queueing_delay(&self, arrival: SimTime) -> SimDuration {
        self.start.saturating_duration_since(arrival)
    }
}

impl ResourceTimeline {
    /// An idle resource.
    pub fn new() -> Self {
        ResourceTimeline::default()
    }

    /// The instant the resource next becomes free.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// Number of reservations served.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Reserves the resource for `duration` starting no earlier than
    /// `arrival`; returns the granted interval.
    pub fn reserve(&mut self, arrival: SimTime, duration: SimDuration) -> Grant {
        let start = arrival.max(self.busy_until);
        let end = start + duration;
        self.busy_until = end;
        // Granted intervals are disjoint and in nondecreasing order, so a
        // running sum equals the merged busy time without interval storage.
        self.busy += duration;
        self.served += 1;
        Grant { start, end }
    }

    /// Checks availability without reserving: when would a request arriving
    /// at `arrival` start service?
    pub fn earliest_start(&self, arrival: SimTime) -> SimTime {
        arrival.max(self.busy_until)
    }

    /// Total busy time accumulated so far.
    pub fn busy_time(&self) -> SimDuration {
        self.busy
    }

    /// Busy fraction over `[0, horizon)`.
    ///
    /// # Panics
    ///
    /// Panics if `horizon` is zero.
    pub fn utilization(&self, horizon: SimTime) -> f64 {
        assert!(horizon > SimTime::ZERO, "horizon must be positive");
        self.busy.as_secs_f64() / horizon.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_resource_starts_immediately() {
        let mut r = ResourceTimeline::new();
        let g = r.reserve(SimTime::from_nanos(7), SimDuration::from_nanos(3));
        assert_eq!(g.start, SimTime::from_nanos(7));
        assert_eq!(g.end, SimTime::from_nanos(10));
        assert_eq!(g.queueing_delay(SimTime::from_nanos(7)), SimDuration::ZERO);
    }

    #[test]
    fn queued_request_waits() {
        let mut r = ResourceTimeline::new();
        r.reserve(SimTime::ZERO, SimDuration::from_nanos(100));
        let g = r.reserve(SimTime::from_nanos(10), SimDuration::from_nanos(5));
        assert_eq!(g.start, SimTime::from_nanos(100));
        assert_eq!(
            g.queueing_delay(SimTime::from_nanos(10)),
            SimDuration::from_nanos(90)
        );
    }

    #[test]
    fn gap_leaves_idle_time() {
        let mut r = ResourceTimeline::new();
        r.reserve(SimTime::ZERO, SimDuration::from_nanos(10));
        r.reserve(SimTime::from_nanos(50), SimDuration::from_nanos(10));
        assert_eq!(r.busy_time(), SimDuration::from_nanos(20));
        assert!((r.utilization(SimTime::from_nanos(100)) - 0.2).abs() < 1e-12);
        assert_eq!(r.served(), 2);
    }

    #[test]
    fn earliest_start_does_not_reserve() {
        let mut r = ResourceTimeline::new();
        r.reserve(SimTime::ZERO, SimDuration::from_nanos(10));
        assert_eq!(
            r.earliest_start(SimTime::from_nanos(2)),
            SimTime::from_nanos(10)
        );
        assert_eq!(r.busy_until(), SimTime::from_nanos(10));
    }
}
