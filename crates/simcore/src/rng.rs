//! Deterministic pseudo-random number generation.
//!
//! The simulator must be bit-reproducible across runs and platforms, so it
//! carries its own small PRNG ([`SimRng`], a xoshiro256\*\* generator seeded
//! through SplitMix64) instead of depending on a particular version of the
//! `rand` crate for the hot path. Workload generators that want the richer
//! `rand` distributions can still use `rand` seeded from [`SimRng::next_u64`].

/// SplitMix64 step; used to expand a single `u64` seed into a full state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic xoshiro256\*\* generator.
///
/// ```
/// use coarse_simcore::rng::SimRng;
/// let mut a = SimRng::seed_from_u64(7);
/// let mut b = SimRng::seed_from_u64(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { s }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 high bits give a uniform double in [0,1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform float in `[0, 1)` with `f32` precision.
    pub fn next_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }

    /// Uniform integer in `[0, bound)` via Lemire's method.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Debiased multiply-shift.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut low = m as u64;
        if low < bound {
            let threshold = bound.wrapping_neg() % bound;
            while low < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                low = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range [{lo}, {hi}]");
        if lo == 0 && hi == u64::MAX {
            return self.next_u64();
        }
        lo + self.next_below(hi - lo + 1)
    }

    /// Uniform float in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.next_f64() * (hi - lo)
    }

    /// A standard-normal sample (Box–Muller, one value per call).
    pub fn next_gaussian(&mut self) -> f64 {
        // Rejection-free Box–Muller; u in (0,1] to avoid ln(0).
        let u = 1.0 - self.next_f64();
        let v = self.next_f64();
        (-2.0 * u.ln()).sqrt() * (std::f64::consts::TAU * v).cos()
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// Derives an independent child generator; useful for giving each
    /// simulated component its own stream.
    pub fn fork(&mut self) -> SimRng {
        SimRng::seed_from_u64(self.next_u64())
    }
}

impl Default for SimRng {
    fn default() -> Self {
        SimRng::seed_from_u64(0x00C0_A25E)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut rng = SimRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
            let y = rng.next_f32();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn next_below_respects_bound() {
        let mut rng = SimRng::seed_from_u64(4);
        for bound in [1u64, 2, 3, 7, 100, 1 << 40] {
            for _ in 0..200 {
                assert!(rng.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn next_below_is_roughly_uniform() {
        let mut rng = SimRng::seed_from_u64(5);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[rng.next_below(8) as usize] += 1;
        }
        for &c in &counts {
            // Expected 10_000 per bucket; allow 5% slack.
            assert!((9_500..10_500).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn range_inclusive_hits_endpoints() {
        let mut rng = SimRng::seed_from_u64(6);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..1000 {
            match rng.range_inclusive(10, 12) {
                10 => seen_lo = true,
                12 => seen_hi = true,
                11 => {}
                other => panic!("out of range: {other}"),
            }
        }
        assert!(seen_lo && seen_hi);
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = SimRng::seed_from_u64(7);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.next_gaussian()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "variance {var}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SimRng::seed_from_u64(8);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..100).collect::<Vec<_>>(),
            "shuffle left input unchanged"
        );
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut parent = SimRng::seed_from_u64(9);
        let mut c1 = parent.fork();
        let mut c2 = parent.fork();
        assert_ne!(c1.next_u64(), c2.next_u64());
    }
}
