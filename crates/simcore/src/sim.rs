//! The simulation driver: couples a user-defined model (state machine) to the
//! event calendar and runs it to completion or to a time bound.

use crate::prof::{region, Profiler};
use crate::queue::EventQueue;
use crate::time::SimTime;

/// A simulated system: application state plus an event handler.
///
/// The kernel pops events in timestamp order and passes each to
/// [`Model::handle`], which may schedule further events on the queue. This is
/// the classic event-oriented world view; higher-level "process" style
/// helpers are built on top in downstream crates.
pub trait Model {
    /// The event alphabet of this model.
    type Event;

    /// Reacts to `event` occurring at `now`, scheduling follow-up events.
    fn handle(&mut self, now: SimTime, event: Self::Event, queue: &mut EventQueue<Self::Event>);

    /// A static label classifying `event` for the profiler's per-type
    /// dispatch counters. The default lumps everything under `"event"`;
    /// models override it to split their event alphabet.
    fn event_label(&self, _event: &Self::Event) -> &'static str {
        "event"
    }
}

/// Outcome of a [`Simulation::run_until`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The calendar drained: no events remain.
    Drained,
    /// The time bound was reached with events still pending.
    DeadlineReached,
    /// The event budget was exhausted with events still pending.
    BudgetExhausted,
}

/// An executable simulation: a [`Model`] plus its event calendar.
///
/// ```
/// use coarse_simcore::sim::{Model, Simulation};
/// use coarse_simcore::queue::EventQueue;
/// use coarse_simcore::time::{SimDuration, SimTime};
///
/// struct Counter { ticks: u32 }
/// impl Model for Counter {
///     type Event = ();
///     fn handle(&mut self, _t: SimTime, _e: (), q: &mut EventQueue<()>) {
///         self.ticks += 1;
///         if self.ticks < 3 {
///             q.schedule_after(SimDuration::from_nanos(10), ());
///         }
///     }
/// }
///
/// let mut sim = Simulation::new(Counter { ticks: 0 });
/// sim.queue_mut().schedule_now(());
/// sim.run_to_completion();
/// assert_eq!(sim.model().ticks, 3);
/// assert_eq!(sim.now().as_nanos(), 20);
/// ```
pub struct Simulation<M: Model> {
    model: M,
    queue: EventQueue<M::Event>,
    events_processed: u64,
    profiler: Option<Profiler>,
}

impl<M: Model> Simulation<M> {
    /// Wraps `model` with an empty calendar at time zero.
    pub fn new(model: M) -> Self {
        Simulation {
            model,
            queue: EventQueue::new(),
            events_processed: 0,
            profiler: None,
        }
    }

    /// Attaches a profiler: per-event-type dispatch counters on this
    /// driver plus calendar depth/dwell statistics on the queue.
    /// Observation-only — event order and timestamps are unaffected.
    pub fn set_profiler(&mut self, profiler: Profiler) {
        self.queue.set_profiler(profiler.clone());
        self.profiler = Some(profiler);
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Shared access to the model state.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Exclusive access to the model state.
    pub fn model_mut(&mut self) -> &mut M {
        &mut self.model
    }

    /// Exclusive access to the calendar (e.g. to seed initial events).
    pub fn queue_mut(&mut self) -> &mut EventQueue<M::Event> {
        &mut self.queue
    }

    /// Total number of events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Consumes the simulation, returning the final model state.
    pub fn into_model(self) -> M {
        self.model
    }

    /// Processes a single event. Returns `false` if the calendar was empty.
    pub fn step(&mut self) -> bool {
        match self.queue.pop() {
            Some((t, event)) => {
                if let Some(p) = &self.profiler {
                    p.dispatch(self.model.event_label(&event));
                    let _g = p.enter(region::KERNEL);
                    self.model.handle(t, event, &mut self.queue);
                } else {
                    self.model.handle(t, event, &mut self.queue);
                }
                self.events_processed += 1;
                true
            }
            None => false,
        }
    }

    /// Runs until the calendar drains.
    pub fn run_to_completion(&mut self) -> RunOutcome {
        while self.step() {}
        RunOutcome::Drained
    }

    /// Runs until the calendar drains, the next event would be after
    /// `deadline`, or `max_events` events have been processed.
    pub fn run_until(&mut self, deadline: SimTime, max_events: u64) -> RunOutcome {
        let mut processed = 0u64;
        loop {
            match self.queue.peek_time() {
                None => return RunOutcome::Drained,
                Some(t) if t > deadline => return RunOutcome::DeadlineReached,
                Some(_) => {}
            }
            if processed >= max_events {
                return RunOutcome::BudgetExhausted;
            }
            self.step();
            processed += 1;
        }
    }
}

impl<M: Model + std::fmt::Debug> std::fmt::Debug for Simulation<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("now", &self.now())
            .field("events_processed", &self.events_processed)
            .field("model", &self.model)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    /// A ping-pong model: two logical actors bouncing a token.
    #[derive(Debug)]
    struct PingPong {
        bounces: u32,
        limit: u32,
    }

    #[derive(Debug)]
    enum Ev {
        Ping,
        Pong,
    }

    impl Model for PingPong {
        type Event = Ev;
        fn handle(&mut self, _t: SimTime, ev: Ev, q: &mut EventQueue<Ev>) {
            self.bounces += 1;
            if self.bounces >= self.limit {
                return;
            }
            match ev {
                Ev::Ping => q.schedule_after(SimDuration::from_nanos(3), Ev::Pong),
                Ev::Pong => q.schedule_after(SimDuration::from_nanos(7), Ev::Ping),
            };
        }
        fn event_label(&self, ev: &Ev) -> &'static str {
            match ev {
                Ev::Ping => "ping",
                Ev::Pong => "pong",
            }
        }
    }

    #[test]
    fn ping_pong_alternates_and_terminates() {
        let mut sim = Simulation::new(PingPong {
            bounces: 0,
            limit: 5,
        });
        sim.queue_mut().schedule_now(Ev::Ping);
        assert_eq!(sim.run_to_completion(), RunOutcome::Drained);
        assert_eq!(sim.model().bounces, 5);
        // ping@0, pong@3, ping@10, pong@13, ping@20
        assert_eq!(sim.now().as_nanos(), 20);
        assert_eq!(sim.events_processed(), 5);
    }

    #[test]
    fn run_until_deadline_stops_early() {
        let mut sim = Simulation::new(PingPong {
            bounces: 0,
            limit: 100,
        });
        sim.queue_mut().schedule_now(Ev::Ping);
        let outcome = sim.run_until(SimTime::from_nanos(10), u64::MAX);
        assert_eq!(outcome, RunOutcome::DeadlineReached);
        // Events at 0, 3, 10 processed; 13 is beyond the deadline.
        assert_eq!(sim.model().bounces, 3);
    }

    #[test]
    fn run_until_event_budget() {
        let mut sim = Simulation::new(PingPong {
            bounces: 0,
            limit: 100,
        });
        sim.queue_mut().schedule_now(Ev::Ping);
        let outcome = sim.run_until(SimTime::MAX, 2);
        assert_eq!(outcome, RunOutcome::BudgetExhausted);
        assert_eq!(sim.model().bounces, 2);
    }

    #[test]
    fn profiler_observes_dispatch_without_perturbing() {
        use crate::prof::Profiler;
        let run = |prof: Option<Profiler>| {
            let mut sim = Simulation::new(PingPong {
                bounces: 0,
                limit: 5,
            });
            if let Some(p) = prof {
                sim.set_profiler(p);
            }
            sim.queue_mut().schedule_now(Ev::Ping);
            sim.run_to_completion();
            (sim.model().bounces, sim.now())
        };
        let p = Profiler::new();
        assert_eq!(
            run(Some(p.clone())),
            run(None),
            "profiling must not perturb"
        );
        let q = p.queue_stats();
        assert_eq!(q.scheduled, 5);
        assert_eq!(q.popped, 5);
        assert_eq!(p.events_dispatched(), 5);
        // ping@0, pong, ping, pong, ping — labels split per event type.
        let det = p.deterministic_json().render();
        assert!(det.contains("\"ping\":3"), "dispatch table: {det}");
        assert!(det.contains("\"pong\":2"));
    }

    #[test]
    fn step_on_empty_returns_false() {
        let mut sim = Simulation::new(PingPong {
            bounces: 0,
            limit: 1,
        });
        assert!(!sim.step());
    }
}
