//! A small deterministic property-test harness.
//!
//! The repro must build and test in sandboxed environments with no registry
//! access, so the test suites cannot depend on `proptest`. This module is
//! the in-repo replacement: a value generator ([`Gen`]) driven by the
//! kernel's own xoshiro RNG ([`SimRng`]) and a case runner
//! ([`run_cases`]) that derives every case's seed from the property name,
//! so failures reproduce exactly and independently of test ordering.
//!
//! ```
//! use coarse_simcore::check::{run_cases, Gen};
//!
//! run_cases("addition_commutes", 64, |g: &mut Gen| {
//!     let a = g.u64_in(0..1_000);
//!     let b = g.u64_in(0..1_000);
//!     assert_eq!(a + b, b + a);
//! });
//! ```

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

use crate::rng::SimRng;

/// A deterministic generator of arbitrary-ish values for one test case.
#[derive(Debug)]
pub struct Gen {
    rng: SimRng,
}

impl Gen {
    /// A generator over the given RNG stream.
    pub fn new(rng: SimRng) -> Self {
        Gen { rng }
    }

    /// Direct access to the underlying RNG.
    pub fn rng(&mut self) -> &mut SimRng {
        &mut self.rng
    }

    /// A uniformly random `u64`.
    pub fn any_u64(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// A uniform `u64` in the half-open range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn u64_in(&mut self, range: std::ops::Range<u64>) -> u64 {
        assert!(range.start < range.end, "empty range {range:?}");
        range.start + self.rng.next_below(range.end - range.start)
    }

    /// A uniform `usize` in the half-open range.
    pub fn usize_in(&mut self, range: std::ops::Range<usize>) -> usize {
        self.u64_in(range.start as u64..range.end as u64) as usize
    }

    /// A uniform `f64` in `[lo, hi)`.
    pub fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        self.rng.range_f64(lo, hi)
    }

    /// A uniform `f32` in `[lo, hi)`.
    pub fn f32_in(&mut self, lo: f32, hi: f32) -> f32 {
        lo + (hi - lo) * self.rng.next_f32()
    }

    /// A fair coin flip.
    pub fn bool(&mut self) -> bool {
        self.rng.next_u64() & 1 == 1
    }

    /// One element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.usize_in(0..items.len())]
    }

    /// A vector whose length is drawn from `len` and whose elements come
    /// from `f`.
    pub fn vec_of<T>(
        &mut self,
        len: std::ops::Range<usize>,
        mut f: impl FnMut(&mut Gen) -> T,
    ) -> Vec<T> {
        let n = self.usize_in(len);
        (0..n).map(|_| f(self)).collect()
    }
}

/// FNV-1a, used to turn a property name into a seed base.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The seed for `case` of property `name`. Public so a failing case can be
/// replayed in isolation with [`Gen::new`] + [`SimRng::seed_from_u64`].
pub fn case_seed(name: &str, case: u64) -> u64 {
    fnv1a(name) ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

/// Runs `prop` against `cases` deterministically generated inputs.
///
/// Each case gets a fresh [`Gen`] seeded from `(name, case index)`. On
/// panic, the failing case index and seed are printed before the panic is
/// propagated, so the case can be replayed directly.
pub fn run_cases(name: &str, cases: u64, mut prop: impl FnMut(&mut Gen)) {
    for case in 0..cases {
        let seed = case_seed(name, case);
        let mut g = Gen::new(SimRng::seed_from_u64(seed));
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| prop(&mut g))) {
            eprintln!("property '{name}' failed at case {case}/{cases} (seed {seed:#018x})");
            resume_unwind(payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_respect_ranges() {
        run_cases("generators_respect_ranges", 128, |g| {
            let x = g.u64_in(10..20);
            assert!((10..20).contains(&x));
            let y = g.usize_in(0..3);
            assert!(y < 3);
            let f = g.f64_in(-1.0, 1.0);
            assert!((-1.0..1.0).contains(&f));
            let h = g.f32_in(2.0, 4.0);
            assert!((2.0..4.0).contains(&h));
            let v = g.vec_of(1..5, |g| g.bool());
            assert!((1..5).contains(&v.len()));
            let pick = *g.choose(&[1, 2, 3]);
            assert!((1..=3).contains(&pick));
        });
    }

    #[test]
    fn cases_are_deterministic() {
        let mut first = Vec::new();
        run_cases("cases_are_deterministic", 16, |g| first.push(g.any_u64()));
        let mut second = Vec::new();
        run_cases("cases_are_deterministic", 16, |g| second.push(g.any_u64()));
        assert_eq!(first, second);
        // Different properties draw different streams.
        let mut other = Vec::new();
        run_cases("a_different_name", 16, |g| other.push(g.any_u64()));
        assert_ne!(first, other);
    }

    #[test]
    fn failing_case_reports_and_propagates() {
        let outcome = std::panic::catch_unwind(|| {
            run_cases("always_fails", 4, |_| panic!("boom"));
        });
        assert!(outcome.is_err());
    }
}
