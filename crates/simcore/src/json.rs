//! Minimal deterministic JSON construction.
//!
//! The reproduction keeps its tier-1 loop fully offline, so machine-readable
//! artifacts (metric snapshots, run reports, fidelity scorecards, perf
//! self-benchmarks) are serialized with this hand-rolled builder instead of
//! a third-party crate. Two properties matter more than generality:
//!
//! - **Byte determinism.** Object members keep their insertion order, `f64`
//!   values are rendered with Rust's shortest round-trip `{:?}` formatting,
//!   and no whitespace depends on ambient state — the same value tree always
//!   serializes to the same bytes, so report diffs in CI are meaningful.
//! - **No escaping surprises.** Strings escape the JSON control set
//!   (quotes, backslash, `\n`, `\r`, `\t`, other C0 controls) and nothing
//!   else, matching what the Chrome-trace exporter already emits.
//!
//! Non-finite floats have no JSON representation; [`JsonValue::num`] maps
//! them to `null` so a stray `NaN` can never corrupt an artifact.

use std::fmt::Write as _;

/// A JSON value tree. Objects preserve insertion order — producers are
/// responsible for inserting keys in a deterministic order (sorted maps or
/// fixed schemas), which every producer in this workspace does.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number, rendered with shortest round-trip formatting.
    Num(f64),
    /// A string (escaped on render).
    Str(String),
    /// An ordered array.
    Array(Vec<JsonValue>),
    /// An insertion-ordered object.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// A string value.
    pub fn str(s: impl Into<String>) -> JsonValue {
        JsonValue::Str(s.into())
    }

    /// A numeric value; non-finite input becomes `null` (JSON has no NaN).
    pub fn num(x: f64) -> JsonValue {
        if x.is_finite() {
            JsonValue::Num(x)
        } else {
            JsonValue::Null
        }
    }

    /// An integer value, exact for magnitudes below 2^53.
    pub fn int(x: u64) -> JsonValue {
        JsonValue::Num(x as f64)
    }

    /// An empty object builder.
    pub fn object() -> JsonValue {
        JsonValue::Object(Vec::new())
    }

    /// Appends a member to an object, returning `self` for chaining.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an object.
    #[must_use]
    pub fn with(mut self, key: &str, value: JsonValue) -> JsonValue {
        match &mut self {
            JsonValue::Object(members) => members.push((key.to_string(), value)),
            other => panic!("with() on non-object {other:?}"),
        }
        self
    }

    /// Renders the tree as compact JSON (no insignificant whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write_into(&mut out);
        out
    }

    /// Renders the tree with two-space indentation, one member per line —
    /// the format written to report files so diffs stay line-oriented.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_into(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Num(x) => write_num(out, *x),
            JsonValue::Str(s) => write_escaped(out, s),
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_into(out);
                }
                out.push(']');
            }
            JsonValue::Object(members) => {
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, key);
                    out.push(':');
                    value.write_into(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            JsonValue::Array(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            JsonValue::Object(members) if !members.is_empty() => {
                out.push_str("{\n");
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
            other => other.write_into(out),
        }
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

/// Writes a finite f64 using shortest round-trip formatting; integral
/// values render without a trailing `.0` so counters look like integers.
fn write_num(out: &mut String, x: f64) {
    debug_assert!(x.is_finite(), "JsonValue::Num must be finite");
    if x == x.trunc() && x.abs() < 9.007_199_254_740_992e15 {
        let _ = write!(out, "{}", x as i64);
    } else {
        let _ = write!(out, "{x:?}");
    }
}

/// Writes `s` as a quoted JSON string, escaping the control set.
fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(JsonValue::Null.render(), "null");
        assert_eq!(JsonValue::Bool(true).render(), "true");
        assert_eq!(JsonValue::int(42).render(), "42");
        assert_eq!(JsonValue::num(1.5).render(), "1.5");
        assert_eq!(JsonValue::str("hi").render(), "\"hi\"");
    }

    #[test]
    fn non_finite_becomes_null() {
        assert_eq!(JsonValue::num(f64::NAN).render(), "null");
        assert_eq!(JsonValue::num(f64::INFINITY).render(), "null");
    }

    #[test]
    fn integral_floats_have_no_fraction() {
        assert_eq!(JsonValue::num(3.0).render(), "3");
        assert_eq!(JsonValue::num(-0.25).render(), "-0.25");
    }

    #[test]
    fn escaping_covers_control_set() {
        let v = JsonValue::str("a\"b\\c\nd\te\u{1}");
        assert_eq!(v.render(), "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
    }

    #[test]
    fn objects_preserve_insertion_order() {
        let v = JsonValue::object()
            .with("zulu", JsonValue::int(1))
            .with("alpha", JsonValue::int(2));
        assert_eq!(v.render(), "{\"zulu\":1,\"alpha\":2}");
    }

    #[test]
    fn pretty_matches_compact_semantics() {
        let v = JsonValue::object()
            .with(
                "xs",
                JsonValue::Array(vec![JsonValue::int(1), JsonValue::int(2)]),
            )
            .with("empty", JsonValue::Array(vec![]))
            .with("name", JsonValue::str("run"));
        let pretty = v.render_pretty();
        assert!(pretty.ends_with('\n'));
        // Stripping structural whitespace recovers the compact form.
        let stripped: String = pretty
            .lines()
            .map(str::trim_start)
            .collect::<Vec<_>>()
            .join("")
            .replace("\": ", "\":");
        assert_eq!(stripped, v.render());
    }

    #[test]
    fn rendering_is_deterministic() {
        let build = || {
            JsonValue::object()
                .with("a", JsonValue::num(0.1 + 0.2))
                .with("b", JsonValue::Array(vec![JsonValue::str("x")]))
        };
        assert_eq!(build().render(), build().render());
        assert_eq!(build().render_pretty(), build().render_pretty());
    }
}
