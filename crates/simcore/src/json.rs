//! Minimal deterministic JSON construction and parsing.
//!
//! The reproduction keeps its tier-1 loop fully offline, so machine-readable
//! artifacts (metric snapshots, run reports, fidelity scorecards, perf
//! self-benchmarks) are serialized with this hand-rolled builder instead of
//! a third-party crate. Two properties matter more than generality:
//!
//! - **Byte determinism.** Object members keep their insertion order, `f64`
//!   values are rendered with Rust's shortest round-trip `{:?}` formatting,
//!   and no whitespace depends on ambient state — the same value tree always
//!   serializes to the same bytes, so report diffs in CI are meaningful.
//! - **No escaping surprises.** Strings escape the JSON control set
//!   (quotes, backslash, `\n`, `\r`, `\t`, other C0 controls) and nothing
//!   else, matching what the Chrome-trace exporter already emits.
//!
//! Non-finite floats have no JSON representation; [`JsonValue::num`] maps
//! them to `null` so a stray `NaN` can never corrupt an artifact.

use std::fmt::Write as _;

/// A JSON value tree. Objects preserve insertion order — producers are
/// responsible for inserting keys in a deterministic order (sorted maps or
/// fixed schemas), which every producer in this workspace does.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number, rendered with shortest round-trip formatting.
    Num(f64),
    /// A string (escaped on render).
    Str(String),
    /// An ordered array.
    Array(Vec<JsonValue>),
    /// An insertion-ordered object.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// A string value.
    pub fn str(s: impl Into<String>) -> JsonValue {
        JsonValue::Str(s.into())
    }

    /// A numeric value; non-finite input becomes `null` (JSON has no NaN).
    pub fn num(x: f64) -> JsonValue {
        if x.is_finite() {
            JsonValue::Num(x)
        } else {
            JsonValue::Null
        }
    }

    /// An integer value, exact for magnitudes below 2^53.
    pub fn int(x: u64) -> JsonValue {
        JsonValue::Num(x as f64)
    }

    /// An empty object builder.
    pub fn object() -> JsonValue {
        JsonValue::Object(Vec::new())
    }

    /// Appends a member to an object, returning `self` for chaining.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an object.
    #[must_use]
    pub fn with(mut self, key: &str, value: JsonValue) -> JsonValue {
        match &mut self {
            JsonValue::Object(members) => members.push((key.to_string(), value)),
            // simlint: allow(panic-in-library, reason = "documented API contract: with() is a builder over object() and a non-object receiver is a programming error at the call site")
            other => panic!("with() on non-object {other:?}"),
        }
        self
    }

    /// Renders the tree as compact JSON (no insignificant whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write_into(&mut out);
        out
    }

    /// Renders the tree with two-space indentation, one member per line —
    /// the format written to report files so diffs stay line-oriented.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_into(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Num(x) => write_num(out, *x),
            JsonValue::Str(s) => write_escaped(out, s),
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_into(out);
                }
                out.push(']');
            }
            JsonValue::Object(members) => {
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, key);
                    out.push(':');
                    value.write_into(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            JsonValue::Array(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            JsonValue::Object(members) if !members.is_empty() => {
                out.push_str("{\n");
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
            other => other.write_into(out),
        }
    }
}

/// A JSON parse error: what went wrong and the byte offset it happened at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonParseError {
    /// Human-readable description of the problem.
    pub message: String,
    /// Byte offset into the input where the problem was detected.
    pub offset: usize,
}

impl std::fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonParseError {}

impl JsonValue {
    /// Parses a JSON document. Accepts exactly what [`JsonValue::render`]
    /// and [`JsonValue::render_pretty`] produce (plus arbitrary
    /// inter-token whitespace); duplicate object keys are kept in order,
    /// matching the insertion-ordered writer.
    ///
    /// This exists so replay artifacts (chaos repros) round-trip through
    /// the same zero-dependency layer that wrote them.
    pub fn parse(input: &str) -> Result<JsonValue, JsonParseError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(value)
    }

    /// The value at object member `key`, if `self` is an object containing
    /// it (first occurrence wins).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if `self` is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if `self` is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The numeric payload as an exact non-negative integer, if `self` is a
    /// number that is integral, in range, and ≥ 0.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(x) if *x >= 0.0 && *x == x.trunc() && *x <= 2f64.powi(53) => {
                Some(*x as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if `self` is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The items, if `self` is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonParseError {
        JsonParseError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), JsonParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: JsonValue) -> Result<JsonValue, JsonParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected {lit:?}")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonParseError> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonParseError> {
        self.expect_byte(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonParseError> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs: the writer never emits them
                            // (it only \u-escapes C0 controls), but accept
                            // them for robustness.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if !self.bytes[self.pos..].starts_with(b"\\u") {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 2;
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let combined = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(cp)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid \\u escape")),
                            }
                            continue; // hex4 already advanced past the digits
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Consume one UTF-8 character. The input arrived as a
                    // &str so this cannot fail, but a typed error keeps the
                    // parser total instead of trusting the caller.
                    let rest = &self.bytes[self.pos..];
                    let Some(c) = std::str::from_utf8(rest)
                        .ok()
                        .and_then(|s| s.chars().next())
                    else {
                        return Err(self.err("invalid UTF-8 in string"));
                    };
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonParseError> {
        let mut cp = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(b @ b'0'..=b'9') => (b - b'0') as u32,
                Some(b @ b'a'..=b'f') => (b - b'a' + 10) as u32,
                Some(b @ b'A'..=b'F') => (b - b'A' + 10) as u32,
                _ => return Err(self.err("expected 4 hex digits")),
            };
            cp = cp * 16 + d;
            self.pos += 1;
        }
        Ok(cp)
    }

    fn number(&mut self) -> Result<JsonValue, JsonParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        // The scanned range is ASCII by construction; the fallback error
        // keeps the parser panic-free either way.
        let Ok(text) = std::str::from_utf8(&self.bytes[start..self.pos]) else {
            return Err(self.err("invalid number"));
        };
        match text.parse::<f64>() {
            Ok(x) if x.is_finite() => Ok(JsonValue::Num(x)),
            _ => Err(self.err("invalid number")),
        }
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

/// Writes a finite f64 using shortest round-trip formatting; integral
/// values render without a trailing `.0` so counters look like integers.
fn write_num(out: &mut String, x: f64) {
    debug_assert!(x.is_finite(), "JsonValue::Num must be finite");
    if x == x.trunc() && x.abs() < 9.007_199_254_740_992e15 {
        let _ = write!(out, "{}", x as i64);
    } else {
        let _ = write!(out, "{x:?}");
    }
}

/// Writes `s` as a quoted JSON string, escaping the control set.
fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(JsonValue::Null.render(), "null");
        assert_eq!(JsonValue::Bool(true).render(), "true");
        assert_eq!(JsonValue::int(42).render(), "42");
        assert_eq!(JsonValue::num(1.5).render(), "1.5");
        assert_eq!(JsonValue::str("hi").render(), "\"hi\"");
    }

    #[test]
    fn non_finite_becomes_null() {
        assert_eq!(JsonValue::num(f64::NAN).render(), "null");
        assert_eq!(JsonValue::num(f64::INFINITY).render(), "null");
    }

    #[test]
    fn integral_floats_have_no_fraction() {
        assert_eq!(JsonValue::num(3.0).render(), "3");
        assert_eq!(JsonValue::num(-0.25).render(), "-0.25");
    }

    #[test]
    fn escaping_covers_control_set() {
        let v = JsonValue::str("a\"b\\c\nd\te\u{1}");
        assert_eq!(v.render(), "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
    }

    #[test]
    fn objects_preserve_insertion_order() {
        let v = JsonValue::object()
            .with("zulu", JsonValue::int(1))
            .with("alpha", JsonValue::int(2));
        assert_eq!(v.render(), "{\"zulu\":1,\"alpha\":2}");
    }

    #[test]
    fn pretty_matches_compact_semantics() {
        let v = JsonValue::object()
            .with(
                "xs",
                JsonValue::Array(vec![JsonValue::int(1), JsonValue::int(2)]),
            )
            .with("empty", JsonValue::Array(vec![]))
            .with("name", JsonValue::str("run"));
        let pretty = v.render_pretty();
        assert!(pretty.ends_with('\n'));
        // Stripping structural whitespace recovers the compact form.
        let stripped: String = pretty
            .lines()
            .map(str::trim_start)
            .collect::<Vec<_>>()
            .join("")
            .replace("\": ", "\":");
        assert_eq!(stripped, v.render());
    }

    #[test]
    fn parse_round_trips_render() {
        let v = JsonValue::object()
            .with("name", JsonValue::str("fig16a"))
            .with("n", JsonValue::int(500))
            .with("x", JsonValue::num(-0.25))
            .with("flag", JsonValue::Bool(true))
            .with("none", JsonValue::Null)
            .with(
                "xs",
                JsonValue::Array(vec![JsonValue::int(1), JsonValue::str("a\"b\nc")]),
            )
            .with("empty_obj", JsonValue::object())
            .with("empty_arr", JsonValue::Array(vec![]));
        let compact = JsonValue::parse(&v.render()).expect("compact parses");
        assert_eq!(compact, v);
        let pretty = JsonValue::parse(&v.render_pretty()).expect("pretty parses");
        assert_eq!(pretty, v);
        // Render → parse → render is byte-identical.
        assert_eq!(compact.render(), v.render());
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "tru",
            "\"unterminated",
            "1 2",
            "{\"a\":1,}x",
            "\"bad \\q escape\"",
            "nullx",
            "--3",
        ] {
            assert!(JsonValue::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn parse_handles_escapes_and_unicode() {
        let v = JsonValue::parse("\"a\\u0041\\n\\\\ \\u00e9 \\ud83d\\ude00\"").unwrap();
        assert_eq!(v.as_str(), Some("aA\n\\ é 😀"));
        // Raw (unescaped) multibyte UTF-8 also passes through.
        let v = JsonValue::parse("\"héllo\"").unwrap();
        assert_eq!(v.as_str(), Some("héllo"));
    }

    #[test]
    fn accessors_select_expected_variants() {
        let v = JsonValue::parse("{\"a\": 3, \"b\": [true], \"c\": \"x\", \"d\": 2.5}").unwrap();
        assert_eq!(v.get("a").and_then(JsonValue::as_u64), Some(3));
        assert_eq!(v.get("d").and_then(JsonValue::as_f64), Some(2.5));
        assert_eq!(v.get("d").and_then(JsonValue::as_u64), None);
        assert_eq!(v.get("c").and_then(JsonValue::as_str), Some("x"));
        let arr = v.get("b").and_then(JsonValue::as_array).unwrap();
        assert_eq!(arr[0].as_bool(), Some(true));
        assert!(v.get("missing").is_none());
        assert!(JsonValue::Null.get("a").is_none());
    }

    #[test]
    fn parse_number_forms() {
        assert_eq!(JsonValue::parse("-0.5e2").unwrap().as_f64(), Some(-50.0));
        assert_eq!(JsonValue::parse("12").unwrap().as_u64(), Some(12));
        assert_eq!(JsonValue::parse("1e3").unwrap().as_u64(), Some(1000));
    }

    #[test]
    fn rendering_is_deterministic() {
        let build = || {
            JsonValue::object()
                .with("a", JsonValue::num(0.1 + 0.2))
                .with("b", JsonValue::Array(vec![JsonValue::str("x")]))
        };
        assert_eq!(build().render(), build().render());
        assert_eq!(build().render_pretty(), build().render_pretty());
    }
}
