//! Self-profiling of the simulator itself: where does *simulation* time go?
//!
//! The tracing layer ([`crate::trace`]) records what the simulated system
//! did; the metric registry ([`crate::metrics`]) counts what it cost in
//! simulated resources. Neither answers the question that gates every
//! kernel optimization: which subsystem burns the *host's* cycles. This
//! module is that instrument — a zero-dependency profiler for the
//! simulator's own hot loops, attached the same way tracers and metric
//! registries are (an `Option<Profiler>` that defaults to `None` and is
//! pure observation when absent).
//!
//! The profile splits into two strictly separated sections:
//!
//! - **Deterministic**: per-event-type dispatch counters, event-queue
//!   depth/dwell histograms, per-region enter and event counts, and (with
//!   the `prof-alloc` feature) allocation counts attributed to regions.
//!   These depend only on the simulated program, never on the host, so two
//!   runs of the same scenario render byte-identical JSON — CI diffs them
//!   exactly.
//! - **Wall-clock** (feature `prof-wallclock`, on by default): elapsed
//!   nanoseconds, events per second, and per-region self/total time from
//!   scoped [`Profiler::enter`] regions. Machine-dependent by nature;
//!   consumers treat drift here as advisory.
//!
//! Reports render as the versioned [`PROFILE_SCHEMA`] JSON document plus a
//! collapsed-stack file ([`Profiler::folded`]) consumable by standard
//! flamegraph tooling (`flamegraph.pl`, `inferno-flamegraph`, speedscope).
//!
//! ```
//! use coarse_simcore::prof::{region, Profiler};
//!
//! let prof = Profiler::new();
//! {
//!     let _g = prof.enter(region::FABRIC_LINK);
//!     prof.count(region::FABRIC_LINK, 3); // three link legs scheduled
//! }
//! let det = prof.deterministic_json().render();
//! assert!(det.contains("\"fabric.link\""));
//! ```

// simlint: allow(parallel-ready, reason = "RefCell backs the Rc-shared profiler handle below; Rc is !Send, so the type system pins it to one thread")
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use crate::json::JsonValue;
use crate::time::SimDuration;

/// Schema identifier of the profile-report JSON document.
pub const PROFILE_SCHEMA: &str = "coarse.profile-report/v1";

/// Profiling regions: the fixed subsystem taxonomy time and allocations are
/// attributed to. The set is a closed table ([`region::ALL`]) so the
/// `prof-alloc` counting allocator can index regions with a plain atomic
/// slot number and reports always cover every region (zeros included),
/// keeping the deterministic section's shape run-independent.
pub mod region {
    /// Kernel event dispatch ([`crate::sim::Simulation::step`]).
    pub const KERNEL: &str = "kernel.dispatch";
    /// Fabric link scheduling (`TransferEngine` leg computation).
    pub const FABRIC_LINK: &str = "fabric.link";
    /// CCI coherence-directory message processing.
    pub const CCI_COHERENCE: &str = "cci.coherence";
    /// Sync-core ring collective steps (timed collectives and sync groups).
    pub const CCI_SYNC_RING: &str = "cci.sync_ring";
    /// Proxy-core service scheduling (queues, launches, sync cores).
    pub const CORE_PROXY: &str = "core.proxy";
    /// Training forward/backward compute bookkeeping.
    pub const TRAIN_COMPUTE: &str = "train.compute";
    /// Input-pipeline prefetch transfers.
    pub const TRAIN_PREFETCH: &str = "train.prefetch";
    /// Gradient push (worker → proxy shard streams).
    pub const TRAIN_PUSH: &str = "train.push";
    /// Proxy-tier collective of one gradient bucket.
    pub const TRAIN_COLLECTIVE: &str = "train.collective";
    /// Parameter pull (proxy → worker shard streams).
    pub const TRAIN_PULL: &str = "train.pull";
    /// GPU dual-sync ring of the shallow layers.
    pub const TRAIN_GPU_SYNC: &str = "train.gpu_sync";
    /// Anything not inside a scoped region.
    pub const OTHER: &str = "other";

    /// Every region, in report order. Slot indices into this table are the
    /// allocator's attribution key.
    pub const ALL: [&str; 12] = [
        KERNEL,
        FABRIC_LINK,
        CCI_COHERENCE,
        CCI_SYNC_RING,
        CORE_PROXY,
        TRAIN_COMPUTE,
        TRAIN_PREFETCH,
        TRAIN_PUSH,
        TRAIN_COLLECTIVE,
        TRAIN_PULL,
        TRAIN_GPU_SYNC,
        OTHER,
    ];

    /// Number of regions in [`ALL`].
    pub const COUNT: usize = ALL.len();

    /// The slot index of `name` in [`ALL`]; unknown names map to
    /// [`OTHER`]'s slot.
    pub fn slot(name: &str) -> usize {
        ALL.iter().position(|&r| r == name).unwrap_or(COUNT - 1)
    }
}

/// The closed alphabet of per-event-type dispatch labels: every string any
/// [`crate::sim::Model::event_label`] impl can return. [`Profiler::dispatch`]
/// itself accepts any label (its map is a `BTreeMap`), but keeping the
/// alphabet closed here means profile reports can be diffed across runs and
/// models without label drift; `simlint`'s `label-registered` rule enforces
/// the table in both directions.
pub const DISPATCH_LABELS: &[&str] = &[
    "core.service.done",
    "core.service.kick",
    "event",
    "straggler.compute_done",
];

/// A power-of-two bucketed histogram of `u64` observations.
///
/// Bucket 0 holds the value 0; bucket `k ≥ 1` holds values `v` with
/// `2^(k-1) ≤ v < 2^k`. Exact bucket membership depends only on the
/// observed values, so the rendered histogram is deterministic whenever the
/// observations are.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pow2Histogram {
    buckets: [u64; 65],
    count: u64,
    max: u64,
}

impl Default for Pow2Histogram {
    fn default() -> Self {
        Pow2Histogram {
            buckets: [0; 65],
            count: 0,
            max: 0,
        }
    }
}

impl Pow2Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation.
    pub fn record(&mut self, v: u64) {
        let k = (64 - v.leading_zeros()) as usize;
        self.buckets[k] += 1;
        self.count += 1;
        self.max = self.max.max(v);
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Largest observation recorded (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// An upper bound on the `q`-quantile (`0.0 ≤ q ≤ 1.0`) of the recorded
    /// observations, or `None` when the histogram is empty.
    ///
    /// The walk finds the first bucket at which the cumulative count reaches
    /// `ceil(q * count)` (at least one observation, so `q = 0.0` lands on
    /// the smallest non-empty bucket) and returns that bucket's inclusive
    /// upper edge: 0 for bucket 0, `2^k − 1` for bucket `k ≥ 1`, clamped to
    /// the recorded maximum so the returned bound is always attainable.
    pub fn approx_quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (k, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let edge = if k == 0 {
                    0
                } else if k == 64 {
                    u64::MAX
                } else {
                    (1u64 << k) - 1
                };
                return Some(edge.min(self.max));
            }
        }
        Some(self.max)
    }

    /// Renders the non-empty buckets as a deterministic JSON array of
    /// `{"pow2": k, "count": n}` rows plus the observation count and max.
    pub fn to_json(&self) -> JsonValue {
        let rows: Vec<JsonValue> = self
            .buckets
            .iter()
            .enumerate()
            .filter(|&(_, &n)| n > 0)
            .map(|(k, &n)| {
                JsonValue::object()
                    .with("pow2", JsonValue::int(k as u64))
                    .with("count", JsonValue::int(n))
            })
            .collect();
        JsonValue::object()
            .with("count", JsonValue::int(self.count))
            .with("max", JsonValue::int(self.max))
            .with("buckets", JsonValue::Array(rows))
    }
}

/// One open region on the profiling stack.
struct Frame {
    slot: usize,
    #[cfg(feature = "prof-wallclock")]
    started: std::time::Instant,
    /// Wall time attributed to child regions, subtracted for self-time.
    #[cfg(feature = "prof-wallclock")]
    child_ns: u64,
}

/// Queue bookkeeping of one profiled run: schedule/pop/cancel counts plus
/// queue-depth and event-dwell (simulated ns between scheduling and
/// dispatch) histograms. All fields are deterministic.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Events scheduled.
    pub scheduled: u64,
    /// Events popped (dispatched).
    pub popped: u64,
    /// Events cancelled before dispatch.
    pub cancelled: u64,
    /// Queue depth observed after every schedule and pop.
    pub depth: Pow2Histogram,
    /// Simulated nanoseconds each popped event spent in the calendar.
    pub dwell_sim_ns: Pow2Histogram,
}

struct ProfState {
    dispatch: BTreeMap<&'static str, u64>,
    enters: [u64; region::COUNT],
    events: [u64; region::COUNT],
    depths: BTreeMap<&'static str, Pow2Histogram>,
    queue: QueueStats,
    stack: Vec<Frame>,
    /// Folded stack paths (`sim;a;b`) → (deterministic enter count, wall
    /// self-nanoseconds; the latter stays 0 without `prof-wallclock`).
    folded: BTreeMap<String, (u64, u64)>,
    #[cfg(feature = "prof-wallclock")]
    self_ns: [u64; region::COUNT],
    #[cfg(feature = "prof-wallclock")]
    total_ns: [u64; region::COUNT],
    #[cfg(feature = "prof-wallclock")]
    born: std::time::Instant,
    /// Elapsed nanoseconds frozen by [`Profiler::seal`].
    #[cfg(feature = "prof-wallclock")]
    sealed_elapsed_ns: Option<u64>,
    #[cfg(feature = "prof-alloc")]
    alloc_base: alloc_counter::Snapshot,
    /// Allocation counters frozen by [`Profiler::seal`].
    #[cfg(feature = "prof-alloc")]
    alloc_end: Option<alloc_counter::Snapshot>,
}

impl ProfState {
    fn new() -> Self {
        ProfState {
            dispatch: BTreeMap::new(),
            enters: [0; region::COUNT],
            events: [0; region::COUNT],
            depths: BTreeMap::new(),
            queue: QueueStats::default(),
            stack: Vec::new(),
            folded: BTreeMap::new(),
            #[cfg(feature = "prof-wallclock")]
            self_ns: [0; region::COUNT],
            #[cfg(feature = "prof-wallclock")]
            total_ns: [0; region::COUNT],
            #[cfg(feature = "prof-wallclock")]
            born: std::time::Instant::now(),
            #[cfg(feature = "prof-wallclock")]
            sealed_elapsed_ns: None,
            #[cfg(feature = "prof-alloc")]
            alloc_base: alloc_counter::snapshot(),
            #[cfg(feature = "prof-alloc")]
            alloc_end: None,
        }
    }

    fn stack_path(&self) -> String {
        let mut path = String::from("sim");
        for f in &self.stack {
            path.push(';');
            path.push_str(region::ALL[f.slot]);
        }
        path
    }

    fn exit_top(&mut self) {
        // simlint: allow(panic-in-library, reason = "RegionGuard::drop is the only caller and every guard pushed a frame")
        let frame = self.stack.pop().expect("region stack underflow");
        let path = {
            let mut p = self.stack_path();
            p.push(';');
            p.push_str(region::ALL[frame.slot]);
            p
        };
        let entry = self.folded.entry(path).or_insert((0, 0));
        entry.0 += 1;
        #[cfg(feature = "prof-wallclock")]
        {
            let elapsed = frame.started.elapsed().as_nanos() as u64;
            let self_ns = elapsed.saturating_sub(frame.child_ns);
            self.self_ns[frame.slot] += self_ns;
            self.total_ns[frame.slot] += elapsed;
            entry.1 += self_ns;
            if let Some(parent) = self.stack.last_mut() {
                parent.child_ns += elapsed;
            }
        }
    }
}

/// A cheap-clone handle to one profiling session, mirroring
/// [`crate::metrics::MetricRegistry`]'s shape: every clone shares the same
/// state, and subsystems hold an `Option<Profiler>` that defaults to `None`.
///
/// Profiling is observation-only by contract: attaching a profiler never
/// changes simulated timings, schedules, or results — the zero-perturbation
/// tests in `coarse-trainsim` enforce this the same way the PR 1 trace
/// tests do.
#[derive(Clone)]
pub struct Profiler {
    // simlint: allow(parallel-ready, reason = "cheap-clone profiler handle; self-profiling stays per-thread under a parallel kernel")
    state: Rc<RefCell<ProfState>>,
}

impl Default for Profiler {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Profiler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.state.borrow();
        f.debug_struct("Profiler")
            .field("dispatched", &s.queue.popped)
            .field("open_regions", &s.stack.len())
            .finish()
    }
}

impl Profiler {
    /// A fresh profiling session. With `prof-alloc` enabled this snapshots
    /// the allocator counters so the report carries only this session's
    /// allocations.
    pub fn new() -> Self {
        Profiler {
            // simlint: allow(parallel-ready, reason = "constructor of the waived profiler handle; same single-thread discipline")
            state: Rc::new(RefCell::new(ProfState::new())),
        }
    }

    /// Opens a scoped region; time (and, under `prof-alloc`, allocations)
    /// until the returned guard drops is attributed to `name`. Regions
    /// nest: a child's elapsed time is subtracted from the parent's
    /// self-time, and the full stack path feeds the folded flamegraph
    /// output.
    pub fn enter(&self, name: &'static str) -> RegionGuard {
        let slot = region::slot(name);
        {
            let mut s = self.state.borrow_mut();
            s.enters[slot] += 1;
            s.stack.push(Frame {
                slot,
                #[cfg(feature = "prof-wallclock")]
                started: std::time::Instant::now(),
                #[cfg(feature = "prof-wallclock")]
                child_ns: 0,
            });
        }
        #[cfg(feature = "prof-alloc")]
        let prev_slot = alloc_counter::set_current(slot);
        RegionGuard {
            state: Rc::clone(&self.state),
            #[cfg(feature = "prof-alloc")]
            prev_slot,
        }
    }

    /// Adds `n` deterministic work events to `name`'s region counter
    /// (shards pushed, ring steps run, coherence messages processed, ...).
    pub fn count(&self, name: &'static str, n: u64) {
        self.state.borrow_mut().events[region::slot(name)] += n;
    }

    /// Records one per-event-type dispatch (called by the kernel with
    /// [`crate::sim::Model::event_label`]).
    pub fn dispatch(&self, label: &'static str) {
        *self.state.borrow_mut().dispatch.entry(label).or_insert(0) += 1;
    }

    /// Observes a named queue depth (proxy parked shards, service queues);
    /// kernel calendar depth has its own hook.
    pub fn observe_depth(&self, name: &'static str, depth: u64) {
        self.state
            .borrow_mut()
            .depths
            .entry(name)
            .or_default()
            .record(depth);
    }

    /// Kernel hook: an event was scheduled; `depth` is the calendar depth
    /// after insertion.
    pub fn queue_scheduled(&self, depth: u64) {
        let mut s = self.state.borrow_mut();
        s.queue.scheduled += 1;
        s.queue.depth.record(depth);
    }

    /// Kernel hook: an event was popped after `dwell` simulated time;
    /// `depth` is the calendar depth after removal.
    pub fn queue_popped(&self, dwell: SimDuration, depth: u64) {
        let mut s = self.state.borrow_mut();
        s.queue.popped += 1;
        s.queue.depth.record(depth);
        s.queue.dwell_sim_ns.record(dwell.as_nanos());
    }

    /// Kernel hook: a pending event was cancelled.
    pub fn queue_cancelled(&self) {
        self.state.borrow_mut().queue.cancelled += 1;
    }

    /// Seals the session: elapsed wall time and (under `prof-alloc`) the
    /// global allocation counters are frozen at this instant, so later
    /// activity in the same process — another profiled run, report
    /// rendering — cannot leak into this session's report. Region and
    /// event counters keep recording; sealing only pins the *ambient*
    /// measurements that read process-wide state. Idempotent: the first
    /// seal wins.
    pub fn seal(&self) {
        #[cfg(any(feature = "prof-wallclock", feature = "prof-alloc"))]
        {
            let mut s = self.state.borrow_mut();
            #[cfg(feature = "prof-wallclock")]
            if s.sealed_elapsed_ns.is_none() {
                s.sealed_elapsed_ns = Some(s.born.elapsed().as_nanos() as u64);
            }
            #[cfg(feature = "prof-alloc")]
            if s.alloc_end.is_none() {
                s.alloc_end = Some(alloc_counter::snapshot());
            }
        }
    }

    /// The queue statistics accumulated so far.
    pub fn queue_stats(&self) -> QueueStats {
        self.state.borrow().queue.clone()
    }

    /// Total kernel events dispatched so far.
    pub fn events_dispatched(&self) -> u64 {
        self.state.borrow().dispatch.values().sum()
    }

    /// The deterministic work-event count of one region.
    pub fn region_events(&self, name: &str) -> u64 {
        self.state.borrow().events[region::slot(name)]
    }

    /// The deterministic section: dispatch counters, per-region enter and
    /// event counts, named depth histograms, queue statistics, and (under
    /// `prof-alloc`) allocation counts. Byte-identical across runs of the
    /// same simulated program.
    pub fn deterministic_json(&self) -> JsonValue {
        let s = self.state.borrow();
        let mut dispatch = JsonValue::object();
        for (&label, &n) in &s.dispatch {
            dispatch = dispatch.with(label, JsonValue::int(n));
        }
        let mut regions = JsonValue::object();
        for (i, &name) in region::ALL.iter().enumerate() {
            regions = regions.with(
                name,
                JsonValue::object()
                    .with("enters", JsonValue::int(s.enters[i]))
                    .with("events", JsonValue::int(s.events[i])),
            );
        }
        let mut depths = JsonValue::object();
        for (&name, hist) in &s.depths {
            depths = depths.with(name, hist.to_json());
        }
        let queue = JsonValue::object()
            .with("scheduled", JsonValue::int(s.queue.scheduled))
            .with("popped", JsonValue::int(s.queue.popped))
            .with("cancelled", JsonValue::int(s.queue.cancelled))
            .with("depth_pow2", s.queue.depth.to_json())
            .with("dwell_sim_ns_pow2", s.queue.dwell_sim_ns.to_json());
        JsonValue::object()
            .with("dispatch", dispatch)
            .with("regions", regions)
            .with("queue", queue)
            .with("depths", depths)
            .with("alloc", Self::alloc_json(&s))
    }

    #[cfg(feature = "prof-alloc")]
    fn alloc_json(s: &ProfState) -> JsonValue {
        let now = s.alloc_end.unwrap_or_else(alloc_counter::snapshot);
        let mut regions = JsonValue::object();
        for (i, &name) in region::ALL.iter().enumerate() {
            regions = regions.with(
                name,
                JsonValue::object()
                    .with(
                        "allocs",
                        JsonValue::int(now.counts[i].saturating_sub(s.alloc_base.counts[i])),
                    )
                    .with(
                        "bytes",
                        JsonValue::int(now.bytes[i].saturating_sub(s.alloc_base.bytes[i])),
                    ),
            );
        }
        JsonValue::object()
            .with("enabled", JsonValue::Bool(true))
            .with("regions", regions)
    }

    #[cfg(not(feature = "prof-alloc"))]
    fn alloc_json(_s: &ProfState) -> JsonValue {
        JsonValue::object().with("enabled", JsonValue::Bool(false))
    }

    /// The wall-clock section: elapsed time, events/sec, ns/event, and
    /// per-region self/total host time. Machine-dependent; `{"enabled":
    /// false}` when simcore is built without `prof-wallclock`.
    pub fn wallclock_json(&self) -> JsonValue {
        let s = self.state.borrow();
        #[cfg(feature = "prof-wallclock")]
        {
            let elapsed_ns = s
                .sealed_elapsed_ns
                .unwrap_or_else(|| s.born.elapsed().as_nanos() as u64);
            let popped = s.queue.popped;
            let (events_per_sec, ns_per_event) = if popped > 0 && elapsed_ns > 0 {
                (
                    JsonValue::num(popped as f64 / (elapsed_ns as f64 / 1e9)),
                    JsonValue::num(elapsed_ns as f64 / popped as f64),
                )
            } else {
                (JsonValue::Null, JsonValue::Null)
            };
            let mut regions = JsonValue::object();
            for (i, &name) in region::ALL.iter().enumerate() {
                regions = regions.with(
                    name,
                    JsonValue::object()
                        .with("self_ns", JsonValue::int(s.self_ns[i]))
                        .with("total_ns", JsonValue::int(s.total_ns[i])),
                );
            }
            JsonValue::object()
                .with("enabled", JsonValue::Bool(true))
                .with("elapsed_ns", JsonValue::int(elapsed_ns))
                .with("events_per_sec", events_per_sec)
                .with("ns_per_event", ns_per_event)
                .with("regions", regions)
        }
        #[cfg(not(feature = "prof-wallclock"))]
        {
            let _ = &s;
            JsonValue::object().with("enabled", JsonValue::Bool(false))
        }
    }

    /// The full [`PROFILE_SCHEMA`] document for `scenario`.
    pub fn report_json(&self, scenario: &str) -> JsonValue {
        JsonValue::object()
            .with("schema", JsonValue::str(PROFILE_SCHEMA))
            .with("scenario", JsonValue::str(scenario))
            .with("deterministic", self.deterministic_json())
            .with("wallclock", self.wallclock_json())
    }

    /// Collapsed-stack ("folded") output for flamegraph tooling: one
    /// `path;to;region weight` line per observed stack. With
    /// `prof-wallclock` the weight is wall self-nanoseconds; without it,
    /// the deterministic region enter count.
    pub fn folded(&self) -> String {
        let s = self.state.borrow();
        let mut out = String::new();
        for (path, &(enters, self_ns)) in &s.folded {
            let weight = if cfg!(feature = "prof-wallclock") {
                self_ns
            } else {
                enters
            };
            out.push_str(path);
            out.push(' ');
            out.push_str(&weight.to_string());
            out.push('\n');
        }
        out
    }
}

/// Guard of one open [`Profiler::enter`] region; closes it on drop.
pub struct RegionGuard {
    // simlint: allow(parallel-ready, reason = "guard shares the waived profiler handle; closes its region on the same thread that opened it")
    state: Rc<RefCell<ProfState>>,
    #[cfg(feature = "prof-alloc")]
    prev_slot: usize,
}

impl Drop for RegionGuard {
    fn drop(&mut self) {
        self.state.borrow_mut().exit_top();
        #[cfg(feature = "prof-alloc")]
        alloc_counter::set_current(self.prev_slot);
    }
}

/// True if a profiler is attached — the guard callers use to skip
/// profiling-only bookkeeping entirely when unprofiled, mirroring
/// [`crate::trace::active`] and [`crate::metrics::metered`].
pub fn profiled(p: &Option<Profiler>) -> bool {
    p.is_some()
}

/// The counting global allocator (feature `prof-alloc`): wraps the system
/// allocator and attributes every allocation to the profiling region open
/// at the time. Binaries opt in by declaring it:
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: coarse_simcore::prof::alloc_counter::CountingAlloc =
///     coarse_simcore::prof::alloc_counter::CountingAlloc;
/// ```
///
/// Attribution uses plain atomics indexed by the closed [`region::ALL`]
/// slot table (no thread-locals: a lazily initialized TLS key could itself
/// allocate and recurse into the allocator). Allocations outside any
/// region land on the [`region::OTHER`] slot.
#[cfg(feature = "prof-alloc")]
pub mod alloc_counter {
    use std::alloc::{GlobalAlloc, Layout, System};
    // simlint: allow(parallel-ready, reason = "allocator counters must be atomics; a mutex inside the global allocator would deadlock")
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

    use super::region;

    #[allow(clippy::declare_interior_mutable_const)]
    // simlint: allow(parallel-ready, reason = "array-initializer constant for the counter tables below")
    const ZERO: AtomicU64 = AtomicU64::new(0);
    // simlint: allow(parallel-ready, reason = "monotonic per-slot tally; reordered increments sum to the same total")
    static COUNTS: [AtomicU64; region::COUNT] = [ZERO; region::COUNT];
    // simlint: allow(parallel-ready, reason = "monotonic per-slot tally; reordered increments sum to the same total")
    static BYTES: [AtomicU64; region::COUNT] = [ZERO; region::COUNT];
    // simlint: allow(parallel-ready, reason = "attribution slot is advisory; a stale read misattributes a sample, never corrupts state")
    static CURRENT: AtomicUsize = AtomicUsize::new(region::COUNT - 1);

    /// A point-in-time copy of the per-region allocation counters.
    #[derive(Debug, Clone, Copy)]
    pub struct Snapshot {
        /// Allocation counts per region slot.
        pub counts: [u64; region::COUNT],
        /// Allocated bytes per region slot.
        pub bytes: [u64; region::COUNT],
    }

    /// Reads the current counter values.
    pub fn snapshot() -> Snapshot {
        let mut counts = [0; region::COUNT];
        let mut bytes = [0; region::COUNT];
        for i in 0..region::COUNT {
            // simlint: allow(parallel-ready, reason = "counters are independent monotonic cells; no cross-counter ordering to preserve")
            counts[i] = COUNTS[i].load(Ordering::Relaxed);
            // simlint: allow(parallel-ready, reason = "counters are independent monotonic cells; no cross-counter ordering to preserve")
            bytes[i] = BYTES[i].load(Ordering::Relaxed);
        }
        Snapshot { counts, bytes }
    }

    /// Sets the attribution slot, returning the previous one (used by
    /// region guards to restore their parent's slot).
    pub fn set_current(slot: usize) -> usize {
        // simlint: allow(parallel-ready, reason = "slot swap orders nothing else; misattribution under races is tolerated by design")
        CURRENT.swap(slot.min(region::COUNT - 1), Ordering::Relaxed)
    }

    /// The counting allocator; see the module docs for how to install it.
    pub struct CountingAlloc;

    // SAFETY: delegates entirely to `System`; the counter updates are
    // lock-free atomics that themselves never allocate.
    // simlint: allow(parallel-ready, reason = "GlobalAlloc is an unsafe trait; the impl only forwards to System plus lock-free tallies")
    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            let p = System.alloc(layout);
            if !p.is_null() {
                let slot = CURRENT.load(Ordering::Relaxed).min(region::COUNT - 1);
                COUNTS[slot].fetch_add(1, Ordering::Relaxed);
                BYTES[slot].fetch_add(layout.size() as u64, Ordering::Relaxed);
            }
            p
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout);
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            let p = System.realloc(ptr, layout, new_size);
            if !p.is_null() {
                let slot = CURRENT.load(Ordering::Relaxed).min(region::COUNT - 1);
                COUNTS[slot].fetch_add(1, Ordering::Relaxed);
                BYTES[slot].fetch_add(new_size as u64, Ordering::Relaxed);
            }
            p
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pow2_buckets_partition_the_range() {
        let mut h = Pow2Histogram::new();
        h.record(0); // bucket 0
        h.record(1); // bucket 1
        h.record(2); // bucket 2
        h.record(3); // bucket 2
        h.record(4); // bucket 3
        h.record(u64::MAX); // bucket 64
        assert_eq!(h.count(), 6);
        assert_eq!(h.max(), u64::MAX);
        let doc = h.to_json().render();
        assert!(doc.contains("\"pow2\":0,\"count\":1"));
        assert!(doc.contains("\"pow2\":2,\"count\":2"));
        assert!(doc.contains("\"pow2\":64,\"count\":1"));
    }

    #[test]
    fn pow2_boundary_values_land_in_their_documented_buckets() {
        // Bucket 0 holds only 0; bucket k >= 1 holds [2^(k-1), 2^k); the
        // all-ones value saturates the last bucket.
        for (v, bucket) in [
            (0u64, 0usize),
            (1, 1),
            (2, 2),
            (3, 2),
            (4, 3),
            (1 << 32, 33),
            (u64::MAX, 64),
        ] {
            let mut h = Pow2Histogram::new();
            h.record(v);
            let doc = h.to_json().render();
            assert!(
                doc.contains(&format!("\"pow2\":{bucket},\"count\":1")),
                "value {v} should land in bucket {bucket}: {doc}"
            );
            assert_eq!(h.max(), v);
        }
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = Pow2Histogram::new();
        for q in [0.0, 0.5, 1.0] {
            assert_eq!(h.approx_quantile(q), None);
        }
        assert_eq!(h.count(), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn quantiles_bound_the_recorded_values() {
        let mut h = Pow2Histogram::new();
        for v in [0u64, 1, 2, 3, 4, 100, 1000] {
            h.record(v);
        }
        // q=0 lands on the smallest non-empty bucket (the recorded zero).
        assert_eq!(h.approx_quantile(0.0), Some(0));
        // Median of 7 values is the 4th (value 3, bucket 2, edge 3).
        assert_eq!(h.approx_quantile(0.5), Some(3));
        // The top quantile is clamped to the recorded max, not the bucket
        // edge 1023.
        assert_eq!(h.approx_quantile(1.0), Some(1000));
        // Out-of-range q clamps rather than panicking.
        assert_eq!(h.approx_quantile(2.0), Some(1000));
        assert_eq!(h.approx_quantile(-1.0), Some(0));
    }

    #[test]
    fn quantile_of_the_max_bucket_is_attainable() {
        let mut h = Pow2Histogram::new();
        h.record(u64::MAX);
        assert_eq!(h.approx_quantile(0.5), Some(u64::MAX));
        let mut single = Pow2Histogram::new();
        single.record(1);
        assert_eq!(single.approx_quantile(1.0), Some(1));
        let mut zero = Pow2Histogram::new();
        zero.record(0);
        assert_eq!(zero.approx_quantile(1.0), Some(0));
    }

    #[test]
    fn regions_nest_and_fold() {
        let p = Profiler::new();
        {
            let _a = p.enter(region::TRAIN_PUSH);
            {
                let _b = p.enter(region::FABRIC_LINK);
                p.count(region::FABRIC_LINK, 2);
            }
            {
                let _b = p.enter(region::FABRIC_LINK);
            }
        }
        assert_eq!(p.region_events(region::FABRIC_LINK), 2);
        let folded = p.folded();
        assert!(folded.contains("sim;train.push;fabric.link "));
        assert!(folded.contains("sim;train.push "));
        let det = p.deterministic_json().render();
        assert!(det.contains("\"fabric.link\":{\"enters\":2,\"events\":2}"));
        assert!(det.contains("\"train.push\":{\"enters\":1,\"events\":0}"));
    }

    #[test]
    fn deterministic_section_is_byte_stable() {
        let run = || {
            let p = Profiler::new();
            let _g = p.enter(region::KERNEL);
            p.dispatch("tick");
            p.dispatch("tick");
            p.dispatch("tock");
            p.queue_scheduled(1);
            p.queue_popped(SimDuration::from_nanos(42), 0);
            p.observe_depth("test.queue", 3);
            drop(_g);
            p.deterministic_json().render()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn dispatch_and_queue_counters_accumulate() {
        let p = Profiler::new();
        p.queue_scheduled(1);
        p.queue_scheduled(2);
        p.queue_popped(SimDuration::from_nanos(10), 1);
        p.queue_cancelled();
        p.dispatch("ev");
        let q = p.queue_stats();
        assert_eq!((q.scheduled, q.popped, q.cancelled), (2, 1, 1));
        assert_eq!(q.depth.count(), 3);
        assert_eq!(q.dwell_sim_ns.count(), 1);
        assert_eq!(p.events_dispatched(), 1);
    }

    #[test]
    fn report_carries_schema_and_sections() {
        let p = Profiler::new();
        let doc = p.report_json("unit").render();
        assert!(doc.contains("\"schema\":\"coarse.profile-report/v1\""));
        assert!(doc.contains("\"scenario\":\"unit\""));
        assert!(doc.contains("\"deterministic\":{"));
        assert!(doc.contains("\"wallclock\":{"));
    }

    #[test]
    fn unknown_region_lands_on_other() {
        assert_eq!(region::slot("no.such.region"), region::COUNT - 1);
        assert_eq!(region::slot(region::OTHER), region::COUNT - 1);
        assert_eq!(region::slot(region::KERNEL), 0);
    }

    #[cfg(feature = "prof-wallclock")]
    #[test]
    fn sealed_wallclock_is_stable() {
        let p = Profiler::new();
        {
            let _g = p.enter(region::KERNEL);
        }
        p.seal();
        let a = p.wallclock_json().render();
        std::hint::black_box((0..100_000u64).sum::<u64>());
        let b = p.wallclock_json().render();
        assert_eq!(a, b, "sealed elapsed time must not keep advancing");
    }

    #[cfg(feature = "prof-wallclock")]
    #[test]
    fn wallclock_section_reports_elapsed() {
        let p = Profiler::new();
        {
            let _g = p.enter(region::KERNEL);
            std::hint::black_box((0..1000u64).sum::<u64>());
        }
        let doc = p.wallclock_json().render();
        assert!(doc.contains("\"enabled\":true"));
        assert!(doc.contains("\"elapsed_ns\":"));
    }
}
