//! # coarse-simcore
//!
//! The deterministic discrete-event simulation kernel underpinning the COARSE
//! reproduction. It provides:
//!
//! - exact integer-nanosecond [`time`] (instants and durations),
//! - a tie-stable calendar-queue [`queue::EventQueue`] (with a reference
//!   heap implementation behind the same [`queue::EventSchedule`] trait) and
//!   the [`sim::Simulation`] driver,
//! - reproducible randomness ([`rng::SimRng`]),
//! - data-size and bandwidth [`units`] whose division yields exact durations,
//! - measurement collectors in [`stats`],
//! - FIFO resource bookkeeping in [`timeline`],
//! - structured tracing (spans/instants/counters) in [`trace`],
//! - a typed metric registry (counters/gauges/histograms) in [`metrics`],
//! - self-profiling of the simulator's own hot loops in [`prof`],
//! - critical-path recording and simulated-time attribution in [`critpath`],
//! - deterministic zero-dep JSON construction and parsing in [`json`],
//! - seeded, schedule-driven fault injection in [`faults`],
//! - runtime invariant oracles for chaos search in [`oracle`], and
//! - an offline deterministic property-test harness in [`check`].
//!
//! Everything is deterministic: the same program and seed produce the same
//! event trace on every run and platform.
//!
//! ```
//! use coarse_simcore::prelude::*;
//!
//! // A one-shot timer model.
//! struct Timer { fired_at: Option<SimTime> }
//! impl Model for Timer {
//!     type Event = ();
//!     fn handle(&mut self, now: SimTime, _e: (), _q: &mut EventQueue<()>) {
//!         self.fired_at = Some(now);
//!     }
//! }
//!
//! let mut sim = Simulation::new(Timer { fired_at: None });
//! sim.queue_mut().schedule_after(SimDuration::from_micros(5), ());
//! sim.run_to_completion();
//! assert_eq!(sim.model().fired_at, Some(SimTime::from_nanos(5_000)));
//! ```

#![warn(missing_docs)]

pub mod check;
pub mod critpath;
pub mod faults;
pub mod json;
pub mod metrics;
pub mod oracle;
pub mod prof;
pub mod queue;
pub mod rng;
pub mod sim;
pub mod stats;
pub mod time;
pub mod timeline;
pub mod trace;
pub mod units;

/// Convenient glob-import of the kernel's common types.
pub mod prelude {
    pub use crate::critpath::{CritPath, Explanation, NodeId};
    pub use crate::faults::{
        shrink_plan, FaultPlan, FaultPlanGen, FaultSpec, FaultUniverse, ShrinkOutcome,
    };
    pub use crate::json::{JsonParseError, JsonValue};
    pub use crate::metrics::{HistogramSummary, MetricRegistry, MetricsSnapshot};
    pub use crate::oracle::{Oracle, OracleEvent, OracleHub, Violation};
    pub use crate::prof::{Pow2Histogram, Profiler, RegionGuard};
    pub use crate::queue::{EventHandle, EventQueue, EventSchedule, HeapEventQueue};
    pub use crate::rng::SimRng;
    pub use crate::sim::{Model, RunOutcome, Simulation};
    pub use crate::stats::{BusyTracker, Histogram, OnlineStats, QuantileEstimator, Series};
    pub use crate::time::{SimDuration, SimTime};
    pub use crate::timeline::{Grant, ResourceTimeline};
    pub use crate::trace::{
        null_tracer, NullTracer, RecordingTracer, SharedTracer, Trace, TraceEvent, TraceEventKind,
        Tracer, TrackId,
    };
    pub use crate::units::{Bandwidth, ByteSize};
}
