//! Deterministic, schedule-driven fault injection.
//!
//! A [`FaultPlan`] is a declarative schedule of fabric and device faults —
//! link bandwidth degradation, link flaps, memory-device dropout, proxy
//! stalls, and transient (CRC-detectable) transfer corruption — that the
//! fabric engine and the COARSE runtime consult at simulated time. The plan
//! is pure data: *injecting* a fault is just answering a query about the
//! schedule, so runs are byte-deterministic under a fixed seed, and an empty
//! plan is guaranteed to perturb nothing (every consumer fast-paths on
//! [`FaultPlan::is_empty`]).
//!
//! Fault schedules address fabric nodes by their opaque [`NodeIndex`] (the
//! device's creation index) rather than by `fabric`'s typed ids, because
//! `simcore` sits below `fabric` in the crate DAG.
//!
//! Transient corruption is decided by a keyed hash of
//! `(seed, device, time, sequence)` — no RNG state is consumed at query
//! time, so interleaving fault queries with other seeded draws cannot shift
//! downstream randomness.

use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};

/// Opaque fabric node index used by fault schedules. Equals the fabric
/// device's creation index (`DeviceId::index()` narrowed to `u32`).
pub type NodeIndex = u32;

/// A scheduled bandwidth degradation on the undirected link `a`–`b`:
/// serialization time is multiplied by `factor` while active.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkDegrade {
    /// One endpoint of the degraded link.
    pub a: NodeIndex,
    /// The other endpoint.
    pub b: NodeIndex,
    /// Start of the degradation window (inclusive).
    pub from: SimTime,
    /// End of the degradation window (exclusive).
    pub until: SimTime,
    /// Serialization-time multiplier (`>= 1.0` slows the link down).
    pub factor: f64,
}

/// A scheduled flap: the undirected link `a`–`b` is down for the window, and
/// the engine routes around it (or fails with `NoRoute` if it cannot).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkFlap {
    /// One endpoint of the flapping link.
    pub a: NodeIndex,
    /// The other endpoint.
    pub b: NodeIndex,
    /// Start of the outage (inclusive).
    pub from: SimTime,
    /// End of the outage (exclusive).
    pub until: SimTime,
}

/// A permanent memory-device dropout: from `at` onward the device accepts no
/// transfers and its proxy is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceDropout {
    /// The dropped device.
    pub device: NodeIndex,
    /// Instant of the dropout (inclusive; permanent).
    pub at: SimTime,
}

/// A scheduled proxy slowdown: while active, every service at `device`
/// incurs `extra` additional latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProxyStall {
    /// The stalled device.
    pub device: NodeIndex,
    /// Start of the stall window (inclusive).
    pub from: SimTime,
    /// End of the stall window (exclusive).
    pub until: SimTime,
    /// Extra latency added per service while stalled.
    pub extra: SimDuration,
}

/// A window of transient transfer corruption at `device`: each transfer is
/// independently corrupted with probability `rate_ppm` parts-per-million,
/// decided by a deterministic keyed hash (see [`FaultPlan::corrupts`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransientFaults {
    /// The faulty device.
    pub device: NodeIndex,
    /// Start of the faulty window (inclusive).
    pub from: SimTime,
    /// End of the faulty window (exclusive).
    pub until: SimTime,
    /// Corruption probability in parts-per-million (1_000_000 = always).
    pub rate_ppm: u32,
}

/// One scheduled fault occurrence, for trace/report rendering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultEvent {
    /// When the fault begins.
    pub at: SimTime,
    /// Human-readable description (stable across runs).
    pub label: String,
}

/// A seeded, schedule-driven fault plan.
///
/// Build one with the consuming setters, or with the `seeded_*`
/// constructors that derive a concrete schedule from a seed:
///
/// ```
/// use coarse_simcore::faults::FaultPlan;
/// use coarse_simcore::time::{SimDuration, SimTime};
///
/// let t = |ms| SimTime::ZERO + SimDuration::from_millis(ms);
/// let plan = FaultPlan::new(42)
///     .degrade_link(3, 4, t(1), t(5), 4.0)
///     .drop_device(7, t(2));
/// assert!(!plan.is_empty());
/// assert_eq!(plan.degradation(4, 3, t(2)), 4.0); // undirected
/// assert!(plan.device_down(7, t(3)));
/// assert!(!plan.device_down(7, t(1)));
/// assert!(FaultPlan::empty().is_empty());
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    seed: u64,
    degrades: Vec<LinkDegrade>,
    flaps: Vec<LinkFlap>,
    dropouts: Vec<DeviceDropout>,
    stalls: Vec<ProxyStall>,
    transients: Vec<TransientFaults>,
}

impl FaultPlan {
    /// A plan with no faults and the given seed (the seed keys transient
    /// corruption decisions and any `seeded_*` derivation).
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// The canonical zero-fault plan. Consumers must treat it exactly like
    /// "no plan attached": it perturbs nothing, byte-for-byte.
    pub fn empty() -> FaultPlan {
        FaultPlan::default()
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// True if the plan schedules no faults at all.
    pub fn is_empty(&self) -> bool {
        self.degrades.is_empty()
            && self.flaps.is_empty()
            && self.dropouts.is_empty()
            && self.stalls.is_empty()
            && self.transients.is_empty()
    }

    /// Total number of scheduled fault entries.
    pub fn len(&self) -> usize {
        self.degrades.len()
            + self.flaps.len()
            + self.dropouts.len()
            + self.stalls.len()
            + self.transients.len()
    }

    /// Schedules a bandwidth degradation on the undirected link `a`–`b`.
    ///
    /// # Panics
    ///
    /// Panics if `factor < 1.0` (a degradation cannot speed a link up) or
    /// the window is empty.
    pub fn degrade_link(
        mut self,
        a: NodeIndex,
        b: NodeIndex,
        from: SimTime,
        until: SimTime,
        factor: f64,
    ) -> FaultPlan {
        assert!(factor >= 1.0, "degradation factor must be >= 1.0");
        assert!(from < until, "degradation window must be non-empty");
        self.degrades.push(LinkDegrade {
            a,
            b,
            from,
            until,
            factor,
        });
        self
    }

    /// Schedules an outage of the undirected link `a`–`b`.
    ///
    /// # Panics
    ///
    /// Panics if the window is empty.
    pub fn flap_link(mut self, a: NodeIndex, b: NodeIndex, from: SimTime, until: SimTime) -> Self {
        assert!(from < until, "flap window must be non-empty");
        self.flaps.push(LinkFlap { a, b, from, until });
        self
    }

    /// Schedules a permanent dropout of `device` at `at`.
    pub fn drop_device(mut self, device: NodeIndex, at: SimTime) -> FaultPlan {
        self.dropouts.push(DeviceDropout { device, at });
        self
    }

    /// Schedules a proxy stall: `extra` latency per service at `device`
    /// during the window.
    ///
    /// # Panics
    ///
    /// Panics if the window is empty.
    pub fn stall_device(
        mut self,
        device: NodeIndex,
        from: SimTime,
        until: SimTime,
        extra: SimDuration,
    ) -> FaultPlan {
        assert!(from < until, "stall window must be non-empty");
        self.stalls.push(ProxyStall {
            device,
            from,
            until,
            extra,
        });
        self
    }

    /// Schedules a window of transient transfer corruption at `device` with
    /// probability `rate_ppm` parts-per-million per transfer.
    ///
    /// # Panics
    ///
    /// Panics if the window is empty or `rate_ppm > 1_000_000`.
    pub fn corrupt_transfers(
        mut self,
        device: NodeIndex,
        from: SimTime,
        until: SimTime,
        rate_ppm: u32,
    ) -> FaultPlan {
        assert!(from < until, "corruption window must be non-empty");
        assert!(rate_ppm <= 1_000_000, "rate is parts-per-million");
        self.transients.push(TransientFaults {
            device,
            from,
            until,
            rate_ppm,
        });
        self
    }

    /// Derives a single-device dropout plan from `seed`: one of `candidates`
    /// drops out at a seeded instant in `[earliest, latest)`.
    ///
    /// # Panics
    ///
    /// Panics if `candidates` is empty or the window is empty.
    pub fn seeded_dropout(
        seed: u64,
        candidates: &[NodeIndex],
        earliest: SimTime,
        latest: SimTime,
    ) -> FaultPlan {
        assert!(!candidates.is_empty(), "need at least one candidate device");
        assert!(earliest < latest, "dropout window must be non-empty");
        let mut rng = SimRng::seed_from_u64(seed ^ 0x0064_726f_706f_7574); // "dropout"
        let victim = candidates[rng.next_below(candidates.len() as u64) as usize];
        let at = SimTime::from_nanos(
            rng.range_inclusive(earliest.as_nanos(), latest.as_nanos().saturating_sub(1)),
        );
        FaultPlan::new(seed).drop_device(victim, at)
    }

    /// Derives a degradation plan from `seed`: every pair in `pairs` is
    /// degraded over a seeded sub-window of `[earliest, latest)` by a seeded
    /// factor in `[min_factor, max_factor]`.
    ///
    /// # Panics
    ///
    /// Panics if `pairs` is empty, the window is empty, or
    /// `min_factor < 1.0` / `min_factor > max_factor`.
    pub fn seeded_degradation(
        seed: u64,
        pairs: &[(NodeIndex, NodeIndex)],
        earliest: SimTime,
        latest: SimTime,
        min_factor: f64,
        max_factor: f64,
    ) -> FaultPlan {
        assert!(!pairs.is_empty(), "need at least one link to degrade");
        assert!(earliest < latest, "degradation window must be non-empty");
        assert!(
            (1.0..=max_factor).contains(&min_factor),
            "need 1.0 <= min_factor <= max_factor"
        );
        let mut rng = SimRng::seed_from_u64(seed ^ 0x0064_6567_7261_6465); // "degrade"
        let mut plan = FaultPlan::new(seed);
        for &(a, b) in pairs {
            let lo = earliest.as_nanos();
            let hi = latest.as_nanos();
            let from = rng.range_inclusive(lo, hi - 1);
            let until = rng.range_inclusive(from + 1, hi);
            let factor = rng.range_f64(min_factor, max_factor);
            plan = plan.degrade_link(
                a,
                b,
                SimTime::from_nanos(from),
                SimTime::from_nanos(until),
                factor,
            );
        }
        plan
    }

    /// Combined serialization-time multiplier for the undirected link
    /// `a`–`b` at `at` (product of all active degradations; `1.0` if none).
    pub fn degradation(&self, a: NodeIndex, b: NodeIndex, at: SimTime) -> f64 {
        let mut factor = 1.0;
        for d in &self.degrades {
            if same_link(d.a, d.b, a, b) && d.from <= at && at < d.until {
                factor *= d.factor;
            }
        }
        factor
    }

    /// True if the undirected link `a`–`b` is flapped down at `at`.
    pub fn link_down(&self, a: NodeIndex, b: NodeIndex, at: SimTime) -> bool {
        self.flaps
            .iter()
            .any(|f| same_link(f.a, f.b, a, b) && f.from <= at && at < f.until)
    }

    /// True if *any* scheduled flap is active at `at`, regardless of link.
    /// Used by observation hooks as a conservative "a flap may have altered
    /// routing" signal: it may over-report (the flapped link might not be on
    /// any used route) but never under-reports.
    pub fn any_flap_active(&self, at: SimTime) -> bool {
        self.flaps.iter().any(|f| f.from <= at && at < f.until)
    }

    /// True if `device` has dropped out at or before `at`.
    pub fn device_down(&self, device: NodeIndex, at: SimTime) -> bool {
        self.dropouts
            .iter()
            .any(|d| d.device == device && d.at <= at)
    }

    /// The dropout instant of `device`, if one is scheduled (earliest wins).
    pub fn dropout_at(&self, device: NodeIndex) -> Option<SimTime> {
        self.dropouts
            .iter()
            .filter(|d| d.device == device)
            .map(|d| d.at)
            .min()
    }

    /// Extra per-service latency at `device` at `at` (sum of active stalls;
    /// zero if none).
    pub fn stall(&self, device: NodeIndex, at: SimTime) -> SimDuration {
        let mut extra = SimDuration::ZERO;
        for s in &self.stalls {
            if s.device == device && s.from <= at && at < s.until {
                extra += s.extra;
            }
        }
        extra
    }

    /// Decides whether the transfer identified by `(device, at, sequence)`
    /// is corrupted. `sequence` must be a deterministic per-transfer counter
    /// maintained by the caller so repeated attempts of the same logical
    /// transfer draw fresh, reproducible outcomes.
    ///
    /// The decision is a keyed hash — no RNG state is consumed, so fault
    /// queries cannot shift unrelated seeded draws.
    pub fn corrupts(&self, device: NodeIndex, at: SimTime, sequence: u64) -> bool {
        let mut rate: u64 = 0;
        for t in &self.transients {
            if t.device == device && t.from <= at && at < t.until {
                rate = rate.max(t.rate_ppm as u64);
            }
        }
        if rate == 0 {
            return false;
        }
        let key = self
            .seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add((device as u64) << 32)
            .wrapping_add(at.as_nanos())
            .wrapping_add(sequence.wrapping_mul(0xbf58_476d_1ce4_e5b9));
        mix64(key) % 1_000_000 < rate
    }

    /// Every scheduled fault as a `(start instant, label)` pair, sorted by
    /// start time then label — suitable for trace instants and reports.
    pub fn events(&self) -> Vec<FaultEvent> {
        let mut out: Vec<FaultEvent> = Vec::with_capacity(self.len());
        for d in &self.degrades {
            out.push(FaultEvent {
                at: d.from,
                label: format!(
                    "degrade link {}-{} x{:.2} until {}ns",
                    d.a,
                    d.b,
                    d.factor,
                    d.until.as_nanos()
                ),
            });
        }
        for f in &self.flaps {
            out.push(FaultEvent {
                at: f.from,
                label: format!("flap link {}-{} until {}ns", f.a, f.b, f.until.as_nanos()),
            });
        }
        for d in &self.dropouts {
            out.push(FaultEvent {
                at: d.at,
                label: format!("device {} dropout", d.device),
            });
        }
        for s in &self.stalls {
            out.push(FaultEvent {
                at: s.from,
                label: format!(
                    "proxy {} stall +{}ns until {}ns",
                    s.device,
                    s.extra.as_nanos(),
                    s.until.as_nanos()
                ),
            });
        }
        for t in &self.transients {
            out.push(FaultEvent {
                at: t.from,
                label: format!(
                    "transient faults at device {} ({} ppm) until {}ns",
                    t.device,
                    t.rate_ppm,
                    t.until.as_nanos()
                ),
            });
        }
        out.sort_by(|x, y| x.at.cmp(&y.at).then_with(|| x.label.cmp(&y.label)));
        out
    }

    /// Decomposes the plan into individually addressable fault specs, in a
    /// stable order (degrades, flaps, dropouts, stalls, transients — each in
    /// insertion order). The inverse of [`FaultPlan::from_specs`].
    pub fn specs(&self) -> Vec<FaultSpec> {
        let mut out = Vec::with_capacity(self.len());
        out.extend(self.degrades.iter().copied().map(FaultSpec::Degrade));
        out.extend(self.flaps.iter().copied().map(FaultSpec::Flap));
        out.extend(self.dropouts.iter().copied().map(FaultSpec::Dropout));
        out.extend(self.stalls.iter().copied().map(FaultSpec::Stall));
        out.extend(self.transients.iter().copied().map(FaultSpec::Transient));
        out
    }

    /// Rebuilds a plan from `seed` and a spec list (e.g. one pruned by the
    /// shrinker). Goes through the validating setters, so malformed specs
    /// panic exactly like hand-built ones.
    pub fn from_specs(seed: u64, specs: &[FaultSpec]) -> FaultPlan {
        let mut plan = FaultPlan::new(seed);
        for s in specs {
            plan = match *s {
                FaultSpec::Degrade(d) => plan.degrade_link(d.a, d.b, d.from, d.until, d.factor),
                FaultSpec::Flap(f) => plan.flap_link(f.a, f.b, f.from, f.until),
                FaultSpec::Dropout(d) => plan.drop_device(d.device, d.at),
                FaultSpec::Stall(s) => plan.stall_device(s.device, s.from, s.until, s.extra),
                FaultSpec::Transient(t) => {
                    plan.corrupt_transfers(t.device, t.from, t.until, t.rate_ppm)
                }
            };
        }
        plan
    }
}

/// One individually addressable scheduled fault — the unit the generator
/// samples and the shrinker drops or narrows.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultSpec {
    /// A link bandwidth degradation.
    Degrade(LinkDegrade),
    /// A link outage window.
    Flap(LinkFlap),
    /// A permanent device dropout.
    Dropout(DeviceDropout),
    /// A proxy service stall window.
    Stall(ProxyStall),
    /// A transient transfer-corruption window.
    Transient(TransientFaults),
}

/// The addressable fault surface of one deployment: which devices can drop
/// out / stall / corrupt, which links can degrade / flap, and the time
/// horizon fault windows are sampled within.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultUniverse {
    /// Devices (creation indices) that can fail — the memory-device tier.
    pub devices: Vec<NodeIndex>,
    /// Undirected links that can degrade or flap.
    pub links: Vec<(NodeIndex, NodeIndex)>,
    /// Fault windows are sampled within `[0, horizon)`.
    pub horizon: SimDuration,
}

/// A seeded random fault-plan generator: samples arbitrary compositions of
/// the five fault kinds over a [`FaultUniverse`]. The same `(generator,
/// seed)` pair always yields the same plan.
#[derive(Debug, Clone)]
pub struct FaultPlanGen {
    universe: FaultUniverse,
    max_events: usize,
    max_dropouts: usize,
}

impl FaultPlanGen {
    /// A generator over `universe` sampling 1–4 events per plan, with at
    /// most `devices − 1` dropouts (so the proxy tier usually survives; the
    /// cap is at least 1 so total-loss schedules stay reachable).
    ///
    /// # Panics
    ///
    /// Panics if the universe has no devices, no links, or a zero horizon.
    pub fn new(universe: FaultUniverse) -> FaultPlanGen {
        assert!(!universe.devices.is_empty(), "universe needs devices");
        assert!(!universe.links.is_empty(), "universe needs links");
        assert!(
            universe.horizon > SimDuration::ZERO,
            "universe needs a positive horizon"
        );
        let max_dropouts = universe.devices.len().saturating_sub(1).max(1);
        FaultPlanGen {
            universe,
            max_events: 4,
            max_dropouts,
        }
    }

    /// Caps the number of events per sampled plan (≥ 1).
    pub fn max_events(mut self, n: usize) -> FaultPlanGen {
        self.max_events = n.max(1);
        self
    }

    /// Caps the number of device dropouts per sampled plan.
    pub fn max_dropouts(mut self, n: usize) -> FaultPlanGen {
        self.max_dropouts = n;
        self
    }

    /// The universe this generator samples over.
    pub fn universe(&self) -> &FaultUniverse {
        &self.universe
    }

    /// Samples one plan from `seed`. Deterministic: the same seed yields
    /// the same plan, byte for byte.
    pub fn sample(&self, seed: u64) -> FaultPlan {
        let mut rng = SimRng::seed_from_u64(seed ^ 0x0063_6861_6f73_6765); // "chaosge"
        let horizon = self.universe.horizon.as_nanos().max(2);
        let n = 1 + rng.next_below(self.max_events as u64) as usize;
        let mut plan = FaultPlan::new(seed);
        let mut dropouts = 0usize;
        for _ in 0..n {
            // A window within [0, horizon) at least 1ns long.
            let from = rng.next_below(horizon - 1);
            let until = rng.range_inclusive(from + 1, horizon);
            let from = SimTime::from_nanos(from);
            let until = SimTime::from_nanos(until);
            let device =
                self.universe.devices[rng.next_below(self.universe.devices.len() as u64) as usize];
            let (a, b) =
                self.universe.links[rng.next_below(self.universe.links.len() as u64) as usize];
            match rng.next_below(5) {
                0 => {
                    // Degradations between 1.5x and 8x.
                    let factor = rng.range_f64(1.5, 8.0);
                    plan = plan.degrade_link(a, b, from, until, factor);
                }
                1 => plan = plan.flap_link(a, b, from, until),
                2 => {
                    if dropouts < self.max_dropouts {
                        dropouts += 1;
                        plan = plan.drop_device(device, from);
                    } else {
                        // Dropout budget spent: degrade instead, keeping the
                        // draw count (and hence the rest of the plan) fixed.
                        plan = plan.degrade_link(a, b, from, until, 2.0);
                    }
                }
                3 => {
                    let extra = SimDuration::from_nanos(rng.range_inclusive(10_000, 2_000_000));
                    plan = plan.stall_device(device, from, until, extra);
                }
                _ => {
                    let rate = rng.range_inclusive(50_000, 600_000) as u32;
                    plan = plan.corrupt_transfers(device, from, until, rate);
                }
            }
        }
        plan
    }
}

/// Outcome of shrinking a failing plan.
#[derive(Debug, Clone)]
pub struct ShrinkOutcome {
    /// The minimized plan (still failing, per the caller's predicate).
    pub plan: FaultPlan,
    /// Fault events in the original plan.
    pub original_events: usize,
    /// Fault events after shrinking.
    pub shrunk_events: usize,
    /// Candidate plans the predicate was evaluated on.
    pub tested: u32,
}

/// Deterministic delta-debugging shrinker: minimizes `plan` while
/// `still_fails` keeps returning `true`, first by **dropping** fault events
/// (ddmin-style: halves, then quarters, then singles), then by **narrowing**
/// the survivors (halving windows, pulling factors and rates toward benign).
/// The predicate is never called on an empty plan.
///
/// The shrinker is pure: no randomness, so the same (plan, predicate) pair
/// always minimizes to the same result.
pub fn shrink_plan(
    plan: &FaultPlan,
    mut still_fails: impl FnMut(&FaultPlan) -> bool,
) -> ShrinkOutcome {
    let seed = plan.seed();
    let mut specs = plan.specs();
    let original_events = specs.len();
    let mut tested = 0u32;

    // Phase 1: drop events, coarse to fine (ddmin-style: halves, then
    // quarters, ... then singles; singles repeat until a pass removes
    // nothing).
    let mut chunk = specs.len().div_ceil(2).max(1);
    loop {
        let mut removed_any = false;
        let mut start = 0;
        while start < specs.len() && specs.len() > 1 {
            let end = (start + chunk).min(specs.len());
            let mut candidate = specs.clone();
            candidate.drain(start..end);
            if candidate.is_empty() {
                start = end;
                continue;
            }
            let cand_plan = FaultPlan::from_specs(seed, &candidate);
            tested += 1;
            if still_fails(&cand_plan) {
                specs = candidate;
                removed_any = true;
                // Same start index now points at fresh events.
            } else {
                start = end;
            }
        }
        if chunk > 1 {
            chunk /= 2;
        } else if !removed_any {
            break;
        }
    }

    // Phase 2: narrow surviving events toward benign, to fixpoint (bounded).
    for _pass in 0..8 {
        let mut narrowed_any = false;
        for i in 0..specs.len() {
            for candidate_spec in narrow_candidates(&specs[i]) {
                let mut candidate = specs.clone();
                candidate[i] = candidate_spec;
                let cand_plan = FaultPlan::from_specs(seed, &candidate);
                tested += 1;
                if still_fails(&cand_plan) {
                    specs = candidate;
                    narrowed_any = true;
                    break;
                }
            }
        }
        if !narrowed_any {
            break;
        }
    }

    ShrinkOutcome {
        shrunk_events: specs.len(),
        plan: FaultPlan::from_specs(seed, &specs),
        original_events,
        tested,
    }
}

/// Strictly-smaller variants of one fault spec, most aggressive first.
/// Every candidate is valid by construction (non-empty windows, factors
/// ≥ 1.0, rates ≤ 1e6).
fn narrow_candidates(spec: &FaultSpec) -> Vec<FaultSpec> {
    let mut out = Vec::new();
    let halve = |from: SimTime, until: SimTime| -> Option<SimTime> {
        let len = until.as_nanos() - from.as_nanos();
        (len >= 2).then(|| SimTime::from_nanos(from.as_nanos() + len / 2))
    };
    match *spec {
        FaultSpec::Degrade(d) => {
            if let Some(mid) = halve(d.from, d.until) {
                out.push(FaultSpec::Degrade(LinkDegrade { until: mid, ..d }));
            }
            // Pull the factor halfway toward 1.0 (keep meaningfully > 1).
            let softer = 1.0 + (d.factor - 1.0) / 2.0;
            if d.factor - softer > 1e-6 && softer > 1.0 + 1e-6 {
                out.push(FaultSpec::Degrade(LinkDegrade {
                    factor: softer,
                    ..d
                }));
            }
        }
        FaultSpec::Flap(f) => {
            if let Some(mid) = halve(f.from, f.until) {
                out.push(FaultSpec::Flap(LinkFlap { until: mid, ..f }));
            }
        }
        FaultSpec::Dropout(_) => {
            // A dropout is a point event; nothing to narrow.
        }
        FaultSpec::Stall(s) => {
            if let Some(mid) = halve(s.from, s.until) {
                out.push(FaultSpec::Stall(ProxyStall { until: mid, ..s }));
            }
            let softer = SimDuration::from_nanos(s.extra.as_nanos() / 2);
            if softer > SimDuration::ZERO && softer < s.extra {
                out.push(FaultSpec::Stall(ProxyStall { extra: softer, ..s }));
            }
        }
        FaultSpec::Transient(t) => {
            if let Some(mid) = halve(t.from, t.until) {
                out.push(FaultSpec::Transient(TransientFaults { until: mid, ..t }));
            }
            let softer = t.rate_ppm / 2;
            if softer > 0 {
                out.push(FaultSpec::Transient(TransientFaults {
                    rate_ppm: softer,
                    ..t
                }));
            }
        }
    }
    out
}

/// True if the undirected pairs `{a1,b1}` and `{a2,b2}` name the same link.
fn same_link(a1: NodeIndex, b1: NodeIndex, a2: NodeIndex, b2: NodeIndex) -> bool {
    (a1 == a2 && b1 == b2) || (a1 == b2 && b1 == a2)
}

/// SplitMix64 finalizer: a high-quality 64-bit mixing function.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn empty_plan_answers_no_faults() {
        let p = FaultPlan::empty();
        assert!(p.is_empty());
        assert_eq!(p.len(), 0);
        assert_eq!(p.degradation(0, 1, t(5)), 1.0);
        assert!(!p.link_down(0, 1, t(5)));
        assert!(!p.device_down(3, t(5)));
        assert_eq!(p.stall(3, t(5)), SimDuration::ZERO);
        assert!(!p.corrupts(3, t(5), 0));
        assert!(p.events().is_empty());
    }

    #[test]
    fn windows_are_half_open_and_links_undirected() {
        let p = FaultPlan::new(1)
            .degrade_link(2, 5, t(10), t(20), 3.0)
            .flap_link(1, 6, t(10), t(20));
        assert_eq!(p.degradation(2, 5, t(9)), 1.0);
        assert_eq!(p.degradation(5, 2, t(10)), 3.0);
        assert_eq!(p.degradation(2, 5, t(19)), 3.0);
        assert_eq!(p.degradation(2, 5, t(20)), 1.0);
        assert!(!p.link_down(6, 1, t(9)));
        assert!(p.link_down(6, 1, t(15)));
        assert!(!p.link_down(1, 6, t(20)));
    }

    #[test]
    fn dropout_is_permanent() {
        let p = FaultPlan::new(1).drop_device(4, t(7));
        assert!(!p.device_down(4, t(6)));
        assert!(p.device_down(4, t(7)));
        assert!(p.device_down(4, t(1_000_000)));
        assert_eq!(p.dropout_at(4), Some(t(7)));
        assert_eq!(p.dropout_at(5), None);
    }

    #[test]
    fn overlapping_degradations_compose_and_stalls_sum() {
        let p = FaultPlan::new(1)
            .degrade_link(0, 1, t(0), t(10), 2.0)
            .degrade_link(0, 1, t(5), t(15), 3.0)
            .stall_device(2, t(0), t(10), SimDuration::from_micros(4))
            .stall_device(2, t(5), t(15), SimDuration::from_micros(6));
        assert_eq!(p.degradation(0, 1, t(2)), 2.0);
        assert_eq!(p.degradation(0, 1, t(7)), 6.0);
        assert_eq!(p.degradation(0, 1, t(12)), 3.0);
        assert_eq!(p.stall(2, t(7)), SimDuration::from_micros(10));
    }

    #[test]
    fn corruption_is_deterministic_and_rate_bounded() {
        let p = FaultPlan::new(99).corrupt_transfers(3, t(0), t(100), 250_000);
        let hits: Vec<bool> = (0..10_000).map(|s| p.corrupts(3, t(50), s)).collect();
        let again: Vec<bool> = (0..10_000).map(|s| p.corrupts(3, t(50), s)).collect();
        assert_eq!(hits, again, "keyed hash must be reproducible");
        let rate = hits.iter().filter(|&&h| h).count() as f64 / hits.len() as f64;
        assert!((0.2..0.3).contains(&rate), "observed rate {rate}");
        // Outside the window and at other devices: never.
        assert!(!p.corrupts(3, t(100), 0));
        assert!(!p.corrupts(4, t(50), 0));
        // A different seed flips some decisions.
        let q = FaultPlan::new(100).corrupt_transfers(3, t(0), t(100), 250_000);
        assert!((0..10_000).any(|s| p.corrupts(3, t(50), s) != q.corrupts(3, t(50), s)));
    }

    #[test]
    fn seeded_constructors_are_reproducible() {
        let a = FaultPlan::seeded_dropout(7, &[2, 4, 6], t(1), t(100));
        let b = FaultPlan::seeded_dropout(7, &[2, 4, 6], t(1), t(100));
        assert_eq!(a, b);
        assert_eq!(a.dropouts.len(), 1);
        assert!([2, 4, 6].contains(&a.dropouts[0].device));
        assert!(t(1) <= a.dropouts[0].at && a.dropouts[0].at < t(100));
        let c = FaultPlan::seeded_degradation(7, &[(0, 1), (2, 3)], t(1), t(100), 2.0, 8.0);
        let d = FaultPlan::seeded_degradation(7, &[(0, 1), (2, 3)], t(1), t(100), 2.0, 8.0);
        assert_eq!(c, d);
        assert_eq!(c.degrades.len(), 2);
        for g in &c.degrades {
            assert!((2.0..=8.0).contains(&g.factor));
            assert!(g.from < g.until);
        }
    }

    #[test]
    fn events_sorted_by_time() {
        let p = FaultPlan::new(1)
            .drop_device(4, t(7))
            .degrade_link(0, 1, t(2), t(9), 2.0)
            .flap_link(2, 3, t(5), t(6));
        let ev = p.events();
        assert_eq!(ev.len(), 3);
        assert!(ev.windows(2).all(|w| w[0].at <= w[1].at));
        assert!(ev[0].label.contains("degrade link 0-1"));
        assert!(ev[2].label.contains("device 4 dropout"));
    }

    #[test]
    fn specs_round_trip() {
        let p = FaultPlan::new(9)
            .degrade_link(0, 1, t(2), t(9), 2.5)
            .flap_link(2, 3, t(5), t(6))
            .drop_device(4, t(7))
            .stall_device(5, t(1), t(3), SimDuration::from_micros(10))
            .corrupt_transfers(6, t(0), t(8), 100_000);
        let specs = p.specs();
        assert_eq!(specs.len(), p.len());
        let q = FaultPlan::from_specs(p.seed(), &specs);
        assert_eq!(p, q);
    }

    fn test_universe() -> FaultUniverse {
        FaultUniverse {
            devices: vec![4, 5, 6, 7],
            links: vec![(0, 4), (1, 5), (2, 6), (3, 7), (4, 5)],
            horizon: SimDuration::from_millis(50),
        }
    }

    #[test]
    fn generator_is_deterministic_and_valid() {
        let g = FaultPlanGen::new(test_universe());
        for seed in 0..64 {
            let a = g.sample(seed);
            let b = g.sample(seed);
            assert_eq!(a, b, "seed {seed} not deterministic");
            assert!(!a.is_empty());
            assert!(a.len() <= 4, "seed {seed}: {} events", a.len());
            let horizon = SimTime::ZERO + test_universe().horizon;
            for ev in a.events() {
                assert!(ev.at < horizon, "seed {seed}: event past horizon");
            }
        }
        // Different seeds produce different plans somewhere in the batch.
        assert!((1..64).any(|s| g.sample(s) != g.sample(0)));
    }

    #[test]
    fn generator_respects_dropout_cap() {
        let g = FaultPlanGen::new(test_universe())
            .max_events(12)
            .max_dropouts(1);
        for seed in 0..64 {
            assert!(g.sample(seed).dropouts.len() <= 1, "seed {seed}");
        }
    }

    #[test]
    fn shrinker_isolates_the_failing_event() {
        // Predicate: fails iff the plan drops device 6.
        let plan = FaultPlan::new(3)
            .degrade_link(0, 4, t(1), t(20), 3.0)
            .flap_link(1, 5, t(2), t(10))
            .drop_device(6, t(5))
            .stall_device(7, t(3), t(9), SimDuration::from_micros(50))
            .corrupt_transfers(5, t(0), t(30), 200_000);
        let out = shrink_plan(&plan, |p| p.dropouts.iter().any(|d| d.device == 6));
        assert_eq!(out.original_events, 5);
        assert_eq!(out.shrunk_events, 1);
        assert_eq!(out.plan.dropouts.len(), 1);
        assert_eq!(out.plan.dropouts[0].device, 6);
        assert!(out.tested > 0);
        // Deterministic: same inputs, same minimization.
        let again = shrink_plan(&plan, |p| p.dropouts.iter().any(|d| d.device == 6));
        assert_eq!(out.plan, again.plan);
        assert_eq!(out.tested, again.tested);
    }

    #[test]
    fn shrinker_narrows_windows_and_factors() {
        // Predicate: fails while a degradation overlapping t=2 with factor
        // >= 1.5 exists — so the window can shrink toward [t2, ...) and the
        // factor can soften toward 1.5 but not below.
        let plan = FaultPlan::new(4).degrade_link(0, 4, t(1), t(40), 8.0);
        let fails = |p: &FaultPlan| p.degradation(0, 4, t(2)) >= 1.5;
        let out = shrink_plan(&plan, fails);
        assert_eq!(out.shrunk_events, 1);
        assert_eq!(out.plan.degrades.len(), 1);
        let d = out.plan.degrades[0];
        assert!(fails(&out.plan));
        assert!(d.until < t(40), "window was not narrowed: {:?}", d.until);
        assert!(d.factor < 8.0, "factor was not softened: {}", d.factor);
        assert!(d.factor >= 1.5);
    }

    #[test]
    fn shrinker_never_tests_empty_plans() {
        let plan = FaultPlan::new(5).drop_device(4, t(1)).drop_device(5, t(2));
        let out = shrink_plan(&plan, |p| {
            assert!(!p.is_empty(), "predicate saw an empty plan");
            true
        });
        // Everything fails, so the minimum is a single event.
        assert_eq!(out.shrunk_events, 1);
    }

    #[test]
    fn any_flap_active_covers_all_links() {
        let p = FaultPlan::new(6).flap_link(0, 4, t(5), t(9));
        assert!(!p.any_flap_active(t(4)));
        assert!(p.any_flap_active(t(5)));
        assert!(p.any_flap_active(t(8)));
        assert!(!p.any_flap_active(t(9)));
    }
}
