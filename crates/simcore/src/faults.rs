//! Deterministic, schedule-driven fault injection.
//!
//! A [`FaultPlan`] is a declarative schedule of fabric and device faults —
//! link bandwidth degradation, link flaps, memory-device dropout, proxy
//! stalls, and transient (CRC-detectable) transfer corruption — that the
//! fabric engine and the COARSE runtime consult at simulated time. The plan
//! is pure data: *injecting* a fault is just answering a query about the
//! schedule, so runs are byte-deterministic under a fixed seed, and an empty
//! plan is guaranteed to perturb nothing (every consumer fast-paths on
//! [`FaultPlan::is_empty`]).
//!
//! Fault schedules address fabric nodes by their opaque [`NodeIndex`] (the
//! device's creation index) rather than by `fabric`'s typed ids, because
//! `simcore` sits below `fabric` in the crate DAG.
//!
//! Transient corruption is decided by a keyed hash of
//! `(seed, device, time, sequence)` — no RNG state is consumed at query
//! time, so interleaving fault queries with other seeded draws cannot shift
//! downstream randomness.

use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};

/// Opaque fabric node index used by fault schedules. Equals the fabric
/// device's creation index (`DeviceId::index()` narrowed to `u32`).
pub type NodeIndex = u32;

/// A scheduled bandwidth degradation on the undirected link `a`–`b`:
/// serialization time is multiplied by `factor` while active.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkDegrade {
    /// One endpoint of the degraded link.
    pub a: NodeIndex,
    /// The other endpoint.
    pub b: NodeIndex,
    /// Start of the degradation window (inclusive).
    pub from: SimTime,
    /// End of the degradation window (exclusive).
    pub until: SimTime,
    /// Serialization-time multiplier (`>= 1.0` slows the link down).
    pub factor: f64,
}

/// A scheduled flap: the undirected link `a`–`b` is down for the window, and
/// the engine routes around it (or fails with `NoRoute` if it cannot).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkFlap {
    /// One endpoint of the flapping link.
    pub a: NodeIndex,
    /// The other endpoint.
    pub b: NodeIndex,
    /// Start of the outage (inclusive).
    pub from: SimTime,
    /// End of the outage (exclusive).
    pub until: SimTime,
}

/// A permanent memory-device dropout: from `at` onward the device accepts no
/// transfers and its proxy is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceDropout {
    /// The dropped device.
    pub device: NodeIndex,
    /// Instant of the dropout (inclusive; permanent).
    pub at: SimTime,
}

/// A scheduled proxy slowdown: while active, every service at `device`
/// incurs `extra` additional latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProxyStall {
    /// The stalled device.
    pub device: NodeIndex,
    /// Start of the stall window (inclusive).
    pub from: SimTime,
    /// End of the stall window (exclusive).
    pub until: SimTime,
    /// Extra latency added per service while stalled.
    pub extra: SimDuration,
}

/// A window of transient transfer corruption at `device`: each transfer is
/// independently corrupted with probability `rate_ppm` parts-per-million,
/// decided by a deterministic keyed hash (see [`FaultPlan::corrupts`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransientFaults {
    /// The faulty device.
    pub device: NodeIndex,
    /// Start of the faulty window (inclusive).
    pub from: SimTime,
    /// End of the faulty window (exclusive).
    pub until: SimTime,
    /// Corruption probability in parts-per-million (1_000_000 = always).
    pub rate_ppm: u32,
}

/// One scheduled fault occurrence, for trace/report rendering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultEvent {
    /// When the fault begins.
    pub at: SimTime,
    /// Human-readable description (stable across runs).
    pub label: String,
}

/// A seeded, schedule-driven fault plan.
///
/// Build one with the consuming setters, or with the `seeded_*`
/// constructors that derive a concrete schedule from a seed:
///
/// ```
/// use coarse_simcore::faults::FaultPlan;
/// use coarse_simcore::time::{SimDuration, SimTime};
///
/// let t = |ms| SimTime::ZERO + SimDuration::from_millis(ms);
/// let plan = FaultPlan::new(42)
///     .degrade_link(3, 4, t(1), t(5), 4.0)
///     .drop_device(7, t(2));
/// assert!(!plan.is_empty());
/// assert_eq!(plan.degradation(4, 3, t(2)), 4.0); // undirected
/// assert!(plan.device_down(7, t(3)));
/// assert!(!plan.device_down(7, t(1)));
/// assert!(FaultPlan::empty().is_empty());
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    seed: u64,
    degrades: Vec<LinkDegrade>,
    flaps: Vec<LinkFlap>,
    dropouts: Vec<DeviceDropout>,
    stalls: Vec<ProxyStall>,
    transients: Vec<TransientFaults>,
}

impl FaultPlan {
    /// A plan with no faults and the given seed (the seed keys transient
    /// corruption decisions and any `seeded_*` derivation).
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// The canonical zero-fault plan. Consumers must treat it exactly like
    /// "no plan attached": it perturbs nothing, byte-for-byte.
    pub fn empty() -> FaultPlan {
        FaultPlan::default()
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// True if the plan schedules no faults at all.
    pub fn is_empty(&self) -> bool {
        self.degrades.is_empty()
            && self.flaps.is_empty()
            && self.dropouts.is_empty()
            && self.stalls.is_empty()
            && self.transients.is_empty()
    }

    /// Total number of scheduled fault entries.
    pub fn len(&self) -> usize {
        self.degrades.len()
            + self.flaps.len()
            + self.dropouts.len()
            + self.stalls.len()
            + self.transients.len()
    }

    /// Schedules a bandwidth degradation on the undirected link `a`–`b`.
    ///
    /// # Panics
    ///
    /// Panics if `factor < 1.0` (a degradation cannot speed a link up) or
    /// the window is empty.
    pub fn degrade_link(
        mut self,
        a: NodeIndex,
        b: NodeIndex,
        from: SimTime,
        until: SimTime,
        factor: f64,
    ) -> FaultPlan {
        assert!(factor >= 1.0, "degradation factor must be >= 1.0");
        assert!(from < until, "degradation window must be non-empty");
        self.degrades.push(LinkDegrade {
            a,
            b,
            from,
            until,
            factor,
        });
        self
    }

    /// Schedules an outage of the undirected link `a`–`b`.
    ///
    /// # Panics
    ///
    /// Panics if the window is empty.
    pub fn flap_link(mut self, a: NodeIndex, b: NodeIndex, from: SimTime, until: SimTime) -> Self {
        assert!(from < until, "flap window must be non-empty");
        self.flaps.push(LinkFlap { a, b, from, until });
        self
    }

    /// Schedules a permanent dropout of `device` at `at`.
    pub fn drop_device(mut self, device: NodeIndex, at: SimTime) -> FaultPlan {
        self.dropouts.push(DeviceDropout { device, at });
        self
    }

    /// Schedules a proxy stall: `extra` latency per service at `device`
    /// during the window.
    ///
    /// # Panics
    ///
    /// Panics if the window is empty.
    pub fn stall_device(
        mut self,
        device: NodeIndex,
        from: SimTime,
        until: SimTime,
        extra: SimDuration,
    ) -> FaultPlan {
        assert!(from < until, "stall window must be non-empty");
        self.stalls.push(ProxyStall {
            device,
            from,
            until,
            extra,
        });
        self
    }

    /// Schedules a window of transient transfer corruption at `device` with
    /// probability `rate_ppm` parts-per-million per transfer.
    ///
    /// # Panics
    ///
    /// Panics if the window is empty or `rate_ppm > 1_000_000`.
    pub fn corrupt_transfers(
        mut self,
        device: NodeIndex,
        from: SimTime,
        until: SimTime,
        rate_ppm: u32,
    ) -> FaultPlan {
        assert!(from < until, "corruption window must be non-empty");
        assert!(rate_ppm <= 1_000_000, "rate is parts-per-million");
        self.transients.push(TransientFaults {
            device,
            from,
            until,
            rate_ppm,
        });
        self
    }

    /// Derives a single-device dropout plan from `seed`: one of `candidates`
    /// drops out at a seeded instant in `[earliest, latest)`.
    ///
    /// # Panics
    ///
    /// Panics if `candidates` is empty or the window is empty.
    pub fn seeded_dropout(
        seed: u64,
        candidates: &[NodeIndex],
        earliest: SimTime,
        latest: SimTime,
    ) -> FaultPlan {
        assert!(!candidates.is_empty(), "need at least one candidate device");
        assert!(earliest < latest, "dropout window must be non-empty");
        let mut rng = SimRng::seed_from_u64(seed ^ 0x0064_726f_706f_7574); // "dropout"
        let victim = candidates[rng.next_below(candidates.len() as u64) as usize];
        let at = SimTime::from_nanos(
            rng.range_inclusive(earliest.as_nanos(), latest.as_nanos().saturating_sub(1)),
        );
        FaultPlan::new(seed).drop_device(victim, at)
    }

    /// Derives a degradation plan from `seed`: every pair in `pairs` is
    /// degraded over a seeded sub-window of `[earliest, latest)` by a seeded
    /// factor in `[min_factor, max_factor]`.
    ///
    /// # Panics
    ///
    /// Panics if `pairs` is empty, the window is empty, or
    /// `min_factor < 1.0` / `min_factor > max_factor`.
    pub fn seeded_degradation(
        seed: u64,
        pairs: &[(NodeIndex, NodeIndex)],
        earliest: SimTime,
        latest: SimTime,
        min_factor: f64,
        max_factor: f64,
    ) -> FaultPlan {
        assert!(!pairs.is_empty(), "need at least one link to degrade");
        assert!(earliest < latest, "degradation window must be non-empty");
        assert!(
            (1.0..=max_factor).contains(&min_factor),
            "need 1.0 <= min_factor <= max_factor"
        );
        let mut rng = SimRng::seed_from_u64(seed ^ 0x0064_6567_7261_6465); // "degrade"
        let mut plan = FaultPlan::new(seed);
        for &(a, b) in pairs {
            let lo = earliest.as_nanos();
            let hi = latest.as_nanos();
            let from = rng.range_inclusive(lo, hi - 1);
            let until = rng.range_inclusive(from + 1, hi);
            let factor = rng.range_f64(min_factor, max_factor);
            plan = plan.degrade_link(
                a,
                b,
                SimTime::from_nanos(from),
                SimTime::from_nanos(until),
                factor,
            );
        }
        plan
    }

    /// Combined serialization-time multiplier for the undirected link
    /// `a`–`b` at `at` (product of all active degradations; `1.0` if none).
    pub fn degradation(&self, a: NodeIndex, b: NodeIndex, at: SimTime) -> f64 {
        let mut factor = 1.0;
        for d in &self.degrades {
            if same_link(d.a, d.b, a, b) && d.from <= at && at < d.until {
                factor *= d.factor;
            }
        }
        factor
    }

    /// True if the undirected link `a`–`b` is flapped down at `at`.
    pub fn link_down(&self, a: NodeIndex, b: NodeIndex, at: SimTime) -> bool {
        self.flaps
            .iter()
            .any(|f| same_link(f.a, f.b, a, b) && f.from <= at && at < f.until)
    }

    /// True if `device` has dropped out at or before `at`.
    pub fn device_down(&self, device: NodeIndex, at: SimTime) -> bool {
        self.dropouts
            .iter()
            .any(|d| d.device == device && d.at <= at)
    }

    /// The dropout instant of `device`, if one is scheduled (earliest wins).
    pub fn dropout_at(&self, device: NodeIndex) -> Option<SimTime> {
        self.dropouts
            .iter()
            .filter(|d| d.device == device)
            .map(|d| d.at)
            .min()
    }

    /// Extra per-service latency at `device` at `at` (sum of active stalls;
    /// zero if none).
    pub fn stall(&self, device: NodeIndex, at: SimTime) -> SimDuration {
        let mut extra = SimDuration::ZERO;
        for s in &self.stalls {
            if s.device == device && s.from <= at && at < s.until {
                extra += s.extra;
            }
        }
        extra
    }

    /// Decides whether the transfer identified by `(device, at, sequence)`
    /// is corrupted. `sequence` must be a deterministic per-transfer counter
    /// maintained by the caller so repeated attempts of the same logical
    /// transfer draw fresh, reproducible outcomes.
    ///
    /// The decision is a keyed hash — no RNG state is consumed, so fault
    /// queries cannot shift unrelated seeded draws.
    pub fn corrupts(&self, device: NodeIndex, at: SimTime, sequence: u64) -> bool {
        let mut rate: u64 = 0;
        for t in &self.transients {
            if t.device == device && t.from <= at && at < t.until {
                rate = rate.max(t.rate_ppm as u64);
            }
        }
        if rate == 0 {
            return false;
        }
        let key = self
            .seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add((device as u64) << 32)
            .wrapping_add(at.as_nanos())
            .wrapping_add(sequence.wrapping_mul(0xbf58_476d_1ce4_e5b9));
        mix64(key) % 1_000_000 < rate
    }

    /// Every scheduled fault as a `(start instant, label)` pair, sorted by
    /// start time then label — suitable for trace instants and reports.
    pub fn events(&self) -> Vec<FaultEvent> {
        let mut out: Vec<FaultEvent> = Vec::with_capacity(self.len());
        for d in &self.degrades {
            out.push(FaultEvent {
                at: d.from,
                label: format!(
                    "degrade link {}-{} x{:.2} until {}ns",
                    d.a,
                    d.b,
                    d.factor,
                    d.until.as_nanos()
                ),
            });
        }
        for f in &self.flaps {
            out.push(FaultEvent {
                at: f.from,
                label: format!("flap link {}-{} until {}ns", f.a, f.b, f.until.as_nanos()),
            });
        }
        for d in &self.dropouts {
            out.push(FaultEvent {
                at: d.at,
                label: format!("device {} dropout", d.device),
            });
        }
        for s in &self.stalls {
            out.push(FaultEvent {
                at: s.from,
                label: format!(
                    "proxy {} stall +{}ns until {}ns",
                    s.device,
                    s.extra.as_nanos(),
                    s.until.as_nanos()
                ),
            });
        }
        for t in &self.transients {
            out.push(FaultEvent {
                at: t.from,
                label: format!(
                    "transient faults at device {} ({} ppm) until {}ns",
                    t.device,
                    t.rate_ppm,
                    t.until.as_nanos()
                ),
            });
        }
        out.sort_by(|x, y| x.at.cmp(&y.at).then_with(|| x.label.cmp(&y.label)));
        out
    }
}

/// True if the undirected pairs `{a1,b1}` and `{a2,b2}` name the same link.
fn same_link(a1: NodeIndex, b1: NodeIndex, a2: NodeIndex, b2: NodeIndex) -> bool {
    (a1 == a2 && b1 == b2) || (a1 == b2 && b1 == a2)
}

/// SplitMix64 finalizer: a high-quality 64-bit mixing function.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn empty_plan_answers_no_faults() {
        let p = FaultPlan::empty();
        assert!(p.is_empty());
        assert_eq!(p.len(), 0);
        assert_eq!(p.degradation(0, 1, t(5)), 1.0);
        assert!(!p.link_down(0, 1, t(5)));
        assert!(!p.device_down(3, t(5)));
        assert_eq!(p.stall(3, t(5)), SimDuration::ZERO);
        assert!(!p.corrupts(3, t(5), 0));
        assert!(p.events().is_empty());
    }

    #[test]
    fn windows_are_half_open_and_links_undirected() {
        let p = FaultPlan::new(1)
            .degrade_link(2, 5, t(10), t(20), 3.0)
            .flap_link(1, 6, t(10), t(20));
        assert_eq!(p.degradation(2, 5, t(9)), 1.0);
        assert_eq!(p.degradation(5, 2, t(10)), 3.0);
        assert_eq!(p.degradation(2, 5, t(19)), 3.0);
        assert_eq!(p.degradation(2, 5, t(20)), 1.0);
        assert!(!p.link_down(6, 1, t(9)));
        assert!(p.link_down(6, 1, t(15)));
        assert!(!p.link_down(1, 6, t(20)));
    }

    #[test]
    fn dropout_is_permanent() {
        let p = FaultPlan::new(1).drop_device(4, t(7));
        assert!(!p.device_down(4, t(6)));
        assert!(p.device_down(4, t(7)));
        assert!(p.device_down(4, t(1_000_000)));
        assert_eq!(p.dropout_at(4), Some(t(7)));
        assert_eq!(p.dropout_at(5), None);
    }

    #[test]
    fn overlapping_degradations_compose_and_stalls_sum() {
        let p = FaultPlan::new(1)
            .degrade_link(0, 1, t(0), t(10), 2.0)
            .degrade_link(0, 1, t(5), t(15), 3.0)
            .stall_device(2, t(0), t(10), SimDuration::from_micros(4))
            .stall_device(2, t(5), t(15), SimDuration::from_micros(6));
        assert_eq!(p.degradation(0, 1, t(2)), 2.0);
        assert_eq!(p.degradation(0, 1, t(7)), 6.0);
        assert_eq!(p.degradation(0, 1, t(12)), 3.0);
        assert_eq!(p.stall(2, t(7)), SimDuration::from_micros(10));
    }

    #[test]
    fn corruption_is_deterministic_and_rate_bounded() {
        let p = FaultPlan::new(99).corrupt_transfers(3, t(0), t(100), 250_000);
        let hits: Vec<bool> = (0..10_000).map(|s| p.corrupts(3, t(50), s)).collect();
        let again: Vec<bool> = (0..10_000).map(|s| p.corrupts(3, t(50), s)).collect();
        assert_eq!(hits, again, "keyed hash must be reproducible");
        let rate = hits.iter().filter(|&&h| h).count() as f64 / hits.len() as f64;
        assert!((0.2..0.3).contains(&rate), "observed rate {rate}");
        // Outside the window and at other devices: never.
        assert!(!p.corrupts(3, t(100), 0));
        assert!(!p.corrupts(4, t(50), 0));
        // A different seed flips some decisions.
        let q = FaultPlan::new(100).corrupt_transfers(3, t(0), t(100), 250_000);
        assert!((0..10_000).any(|s| p.corrupts(3, t(50), s) != q.corrupts(3, t(50), s)));
    }

    #[test]
    fn seeded_constructors_are_reproducible() {
        let a = FaultPlan::seeded_dropout(7, &[2, 4, 6], t(1), t(100));
        let b = FaultPlan::seeded_dropout(7, &[2, 4, 6], t(1), t(100));
        assert_eq!(a, b);
        assert_eq!(a.dropouts.len(), 1);
        assert!([2, 4, 6].contains(&a.dropouts[0].device));
        assert!(t(1) <= a.dropouts[0].at && a.dropouts[0].at < t(100));
        let c = FaultPlan::seeded_degradation(7, &[(0, 1), (2, 3)], t(1), t(100), 2.0, 8.0);
        let d = FaultPlan::seeded_degradation(7, &[(0, 1), (2, 3)], t(1), t(100), 2.0, 8.0);
        assert_eq!(c, d);
        assert_eq!(c.degrades.len(), 2);
        for g in &c.degrades {
            assert!((2.0..=8.0).contains(&g.factor));
            assert!(g.from < g.until);
        }
    }

    #[test]
    fn events_sorted_by_time() {
        let p = FaultPlan::new(1)
            .drop_device(4, t(7))
            .degrade_link(0, 1, t(2), t(9), 2.0)
            .flap_link(2, 3, t(5), t(6));
        let ev = p.events();
        assert_eq!(ev.len(), 3);
        assert!(ev.windows(2).all(|w| w[0].at <= w[1].at));
        assert!(ev[0].label.contains("degrade link 0-1"));
        assert!(ev[2].label.contains("device 4 dropout"));
    }
}
