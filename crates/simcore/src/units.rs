//! Data-size and bandwidth units.
//!
//! Transfers are described by a [`ByteSize`] and links by a [`Bandwidth`];
//! dividing one by the other yields a [`SimDuration`]
//! exactly (integer nanoseconds), keeping the simulation deterministic.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

use crate::time::SimDuration;

/// A size in bytes.
///
/// ```
/// use coarse_simcore::units::ByteSize;
/// assert_eq!(ByteSize::mib(2).as_u64(), 2 * 1024 * 1024);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ByteSize(u64);

impl ByteSize {
    /// Zero bytes.
    pub const ZERO: ByteSize = ByteSize(0);

    /// `n` bytes.
    pub const fn bytes(n: u64) -> Self {
        ByteSize(n)
    }

    /// `n` kibibytes.
    pub const fn kib(n: u64) -> Self {
        ByteSize(n * 1024)
    }

    /// `n` mebibytes.
    pub const fn mib(n: u64) -> Self {
        ByteSize(n * 1024 * 1024)
    }

    /// `n` gibibytes.
    pub const fn gib(n: u64) -> Self {
        ByteSize(n * 1024 * 1024 * 1024)
    }

    /// The raw byte count.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// The byte count as a float (for bandwidth math).
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }

    /// Size in mebibytes as a float.
    pub fn as_mib_f64(self) -> f64 {
        self.0 as f64 / (1024.0 * 1024.0)
    }

    /// True if zero bytes.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The larger of two sizes.
    pub fn max(self, other: ByteSize) -> ByteSize {
        ByteSize(self.0.max(other.0))
    }

    /// The smaller of two sizes.
    pub fn min(self, other: ByteSize) -> ByteSize {
        ByteSize(self.0.min(other.0))
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: ByteSize) -> ByteSize {
        ByteSize(self.0.saturating_sub(other.0))
    }

    /// Ceiling division: how many `chunk`-sized pieces cover this size.
    ///
    /// # Panics
    ///
    /// Panics if `chunk` is zero.
    pub fn div_ceil(self, chunk: ByteSize) -> u64 {
        assert!(!chunk.is_zero(), "chunk size must be positive");
        self.0.div_ceil(chunk.0)
    }
}

impl Add for ByteSize {
    type Output = ByteSize;
    fn add(self, rhs: ByteSize) -> ByteSize {
        // simlint: allow(panic-in-library, reason = "byte-size overflow is a model bug; mirrors std::time panic semantics")
        ByteSize(self.0.checked_add(rhs.0).expect("byte size overflow"))
    }
}

impl AddAssign for ByteSize {
    fn add_assign(&mut self, rhs: ByteSize) {
        *self = *self + rhs;
    }
}

impl Sub for ByteSize {
    type Output = ByteSize;
    fn sub(self, rhs: ByteSize) -> ByteSize {
        // simlint: allow(panic-in-library, reason = "byte-size overflow is a model bug; mirrors std::time panic semantics")
        ByteSize(self.0.checked_sub(rhs.0).expect("byte size underflow"))
    }
}

impl Mul<u64> for ByteSize {
    type Output = ByteSize;
    fn mul(self, rhs: u64) -> ByteSize {
        // simlint: allow(panic-in-library, reason = "byte-size overflow is a model bug; mirrors std::time panic semantics")
        ByteSize(self.0.checked_mul(rhs).expect("byte size overflow"))
    }
}

impl Div<u64> for ByteSize {
    type Output = ByteSize;
    fn div(self, rhs: u64) -> ByteSize {
        ByteSize(self.0 / rhs)
    }
}

impl Sum for ByteSize {
    fn sum<I: Iterator<Item = ByteSize>>(iter: I) -> ByteSize {
        iter.fold(ByteSize::ZERO, Add::add)
    }
}

impl fmt::Display for ByteSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0;
        if b >= 1 << 30 {
            write!(f, "{:.2}GiB", b as f64 / (1u64 << 30) as f64)
        } else if b >= 1 << 20 {
            write!(f, "{:.2}MiB", b as f64 / (1u64 << 20) as f64)
        } else if b >= 1 << 10 {
            write!(f, "{:.2}KiB", b as f64 / (1u64 << 10) as f64)
        } else {
            write!(f, "{b}B")
        }
    }
}

/// A transfer rate in bytes per second.
///
/// ```
/// use coarse_simcore::units::{Bandwidth, ByteSize};
/// let bw = Bandwidth::gib_per_sec(1.0);
/// let t = bw.transfer_time(ByteSize::gib(1));
/// assert_eq!(t.as_secs_f64(), 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Bandwidth(f64);

impl Bandwidth {
    /// Creates a bandwidth of `bytes_per_sec` bytes per second.
    ///
    /// # Panics
    ///
    /// Panics if the rate is not finite and positive.
    pub fn bytes_per_sec(bytes_per_sec: f64) -> Self {
        assert!(
            bytes_per_sec.is_finite() && bytes_per_sec > 0.0,
            "bandwidth must be finite and positive, got {bytes_per_sec}"
        );
        Bandwidth(bytes_per_sec)
    }

    /// `n` GiB/s.
    pub fn gib_per_sec(n: f64) -> Self {
        Bandwidth::bytes_per_sec(n * (1u64 << 30) as f64)
    }

    /// `n` MiB/s.
    pub fn mib_per_sec(n: f64) -> Self {
        Bandwidth::bytes_per_sec(n * (1u64 << 20) as f64)
    }

    /// `n` Gbit/s (network convention, 1 Gbit = 1e9 bits).
    pub fn gbit_per_sec(n: f64) -> Self {
        Bandwidth::bytes_per_sec(n * 1e9 / 8.0)
    }

    /// The rate in bytes per second.
    pub fn as_bytes_per_sec(self) -> f64 {
        self.0
    }

    /// The rate in GiB/s.
    pub fn as_gib_per_sec(self) -> f64 {
        self.0 / (1u64 << 30) as f64
    }

    /// Time to move `size` at this rate, rounded up to whole nanoseconds so a
    /// non-empty transfer never takes zero time.
    pub fn transfer_time(self, size: ByteSize) -> SimDuration {
        if size.is_zero() {
            return SimDuration::ZERO;
        }
        let ns = (size.as_f64() / self.0 * 1e9).ceil().max(1.0);
        SimDuration::from_nanos(ns as u64)
    }

    /// Scales the rate by `factor`.
    ///
    /// # Panics
    ///
    /// Panics if the result would not be positive and finite.
    pub fn scale(self, factor: f64) -> Bandwidth {
        Bandwidth::bytes_per_sec(self.0 * factor)
    }

    /// The smaller of two rates.
    pub fn min(self, other: Bandwidth) -> Bandwidth {
        Bandwidth(self.0.min(other.0))
    }

    /// The larger of two rates.
    pub fn max(self, other: Bandwidth) -> Bandwidth {
        Bandwidth(self.0.max(other.0))
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2}GiB/s", self.as_gib_per_sec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_constructors() {
        assert_eq!(ByteSize::kib(1).as_u64(), 1024);
        assert_eq!(ByteSize::mib(1), ByteSize::kib(1024));
        assert_eq!(ByteSize::gib(1), ByteSize::mib(1024));
    }

    #[test]
    fn size_arithmetic() {
        let a = ByteSize::bytes(100);
        let b = ByteSize::bytes(40);
        assert_eq!(a + b, ByteSize::bytes(140));
        assert_eq!(a - b, ByteSize::bytes(60));
        assert_eq!(a * 3, ByteSize::bytes(300));
        assert_eq!(a / 3, ByteSize::bytes(33));
        assert_eq!(a.saturating_sub(ByteSize::bytes(200)), ByteSize::ZERO);
    }

    #[test]
    fn div_ceil_counts_chunks() {
        assert_eq!(ByteSize::bytes(10).div_ceil(ByteSize::bytes(4)), 3);
        assert_eq!(ByteSize::bytes(8).div_ceil(ByteSize::bytes(4)), 2);
        assert_eq!(ByteSize::ZERO.div_ceil(ByteSize::bytes(4)), 0);
    }

    #[test]
    fn transfer_time_exact() {
        let bw = Bandwidth::bytes_per_sec(1e9); // 1 byte per ns
        assert_eq!(
            bw.transfer_time(ByteSize::bytes(1234)),
            SimDuration::from_nanos(1234)
        );
        assert_eq!(bw.transfer_time(ByteSize::ZERO), SimDuration::ZERO);
    }

    #[test]
    fn transfer_time_never_zero_for_nonempty() {
        let bw = Bandwidth::gib_per_sec(1000.0);
        assert!(bw.transfer_time(ByteSize::bytes(1)).as_nanos() >= 1);
    }

    #[test]
    fn gbit_convention() {
        // 100 Gbit/s = 12.5 GB/s = 12.5e9 bytes/s
        let bw = Bandwidth::gbit_per_sec(100.0);
        assert!((bw.as_bytes_per_sec() - 12.5e9).abs() < 1.0);
    }

    #[test]
    fn display_units() {
        assert_eq!(ByteSize::bytes(12).to_string(), "12B");
        assert_eq!(ByteSize::kib(2).to_string(), "2.00KiB");
        assert_eq!(ByteSize::mib(3).to_string(), "3.00MiB");
        assert_eq!(ByteSize::gib(4).to_string(), "4.00GiB");
    }

    #[test]
    #[should_panic(expected = "bandwidth must be finite and positive")]
    fn zero_bandwidth_rejected() {
        let _ = Bandwidth::bytes_per_sec(0.0);
    }

    #[test]
    fn sum_of_sizes() {
        let total: ByteSize = [1u64, 2, 3].into_iter().map(ByteSize::bytes).sum();
        assert_eq!(total, ByteSize::bytes(6));
    }
}
