//! Critical-path recording and simulated-time attribution.
//!
//! A [`CritPath`] is an observation-only dependency-graph recorder, attached
//! to models exactly like the tracer, metric registry, and self-profiler
//! (`Option<CritPath>` on the component, `set_critpath` to attach). As a run
//! executes, instrumented layers register *nodes* — timed facts such as
//! "transfer T occupied link L from t0 to t1" or "ring step S completed at
//! t" — and *edges* — "node A enabled node B". Nothing about the simulated
//! timings changes; the recorder only writes the graph down.
//!
//! After the run, [`CritPath::analyze`] extracts the **critical path** of
//! each marked iteration: walking backward from the iteration's sink, it
//! repeatedly follows the latest-finishing dependency and blames the time
//! slice between that dependency's completion and the current node's
//! completion on the current node's *resource class*. The slices tile the
//! iteration span exactly, so per-class blame fractions sum to 1.0 — the
//! resulting [`Explanation`] answers "where did the simulated time go?" and
//! bounds the best possible speedup from making any one class free
//! (Amdahl-style: eliminating a class saves at most its blame fraction).
//!
//! Blame classes form a closed taxonomy in [`class`]: compute, fabric busy,
//! fabric queueing, coherence, sync, proxy stall, and retry backoff.
//! Everything rendered from the graph — the `coarse.explain-report/v1`
//! fragments and the Chrome-trace overlay — is byte-deterministic whenever
//! the recorded run is.

// simlint: allow(parallel-ready, reason = "RefCell backs the Rc-shared graph handle below; Rc is !Send, so the type system pins it to one thread")
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use crate::json::JsonValue;
use crate::time::{SimDuration, SimTime};

/// Schema identifier stamped into explain reports built from this module.
pub const EXPLAIN_SCHEMA: &str = "coarse.explain-report/v1";

/// The closed taxonomy of resource classes blame is attributed to.
pub mod class {
    /// GPU forward/backward computation.
    pub const COMPUTE: &str = "compute";
    /// A fabric link actively serializing bytes.
    pub const FABRIC_BUSY: &str = "fabric_busy";
    /// Waiting for a busy fabric link to free up (FIFO queueing).
    pub const FABRIC_QUEUE: &str = "fabric_queue";
    /// Coherence-directory activity (invalidations, sharer upgrades).
    pub const COHERENCE: &str = "coherence";
    /// Waiting on peers: collective barriers, ring steps, parameter-device
    /// serialization in the DENSE baseline.
    pub const SYNC: &str = "sync";
    /// Time parked in a proxy queue or stalled by an injected proxy fault.
    pub const PROXY_STALL: &str = "proxy_stall";
    /// Resilience-policy waits: retry backoff and failure-detection timeouts.
    pub const RETRY_BACKOFF: &str = "retry_backoff";
    /// Every class, in report order.
    pub const ALL: [&str; 7] = [
        COMPUTE,
        FABRIC_BUSY,
        FABRIC_QUEUE,
        COHERENCE,
        SYNC,
        PROXY_STALL,
        RETRY_BACKOFF,
    ];
}

/// Handle to one recorded node; indexes are assigned in recording order, so
/// a dependency is always strictly smaller than the node depending on it.
pub type NodeId = usize;

#[derive(Debug, Clone)]
struct Node {
    class: &'static str,
    label: String,
    resource: Option<String>,
    start: SimTime,
    end: SimTime,
    deps: Vec<NodeId>,
}

#[derive(Debug, Default)]
struct CritState {
    nodes: Vec<Node>,
    /// Iteration index → sink node; the walk for iteration `i` starts here.
    sinks: BTreeMap<u64, NodeId>,
    /// Most recent node recorded on each named resource, for implicit
    /// FIFO-ordering edges (a link's next occupancy depends on its last).
    last_on_resource: BTreeMap<String, NodeId>,
}

/// A cloneable, shared critical-path recorder.
///
/// Clones share state, so one recorder can be attached to every layer of a
/// run (fabric engine, collectives, coherence, training phases) and the
/// edges all land in a single graph.
#[derive(Debug, Clone, Default)]
pub struct CritPath {
    // simlint: allow(parallel-ready, reason = "cheap-clone recorder handle; a parallel kernel will shard recording and merge, not share this cell")
    inner: Rc<RefCell<CritState>>,
}

impl CritPath {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a timed node of `class` spanning `[start, end]`, enabled by
    /// `deps`. Returns the node's id for use as a later dependency.
    ///
    /// # Panics
    ///
    /// Panics if a dependency id has not been recorded yet (edges must point
    /// backward in recording order; forward edges would make the walk cyclic).
    pub fn span(
        &self,
        class: &'static str,
        label: impl Into<String>,
        start: SimTime,
        end: SimTime,
        deps: &[NodeId],
    ) -> NodeId {
        self.push(class, label.into(), None, start, end, deps.to_vec())
    }

    /// Like [`span`](Self::span), but the node occupies the named resource:
    /// an implicit dependency on the previous node recorded on the same
    /// resource is added (FIFO ordering), and the node's span feeds that
    /// resource's busy-idle timeline in [`Explanation::resource_loads`].
    pub fn span_on(
        &self,
        class: &'static str,
        label: impl Into<String>,
        resource: &str,
        start: SimTime,
        end: SimTime,
        deps: &[NodeId],
    ) -> NodeId {
        let mut deps = deps.to_vec();
        if let Some(&prev) = self.inner.borrow().last_on_resource.get(resource) {
            if !deps.contains(&prev) {
                deps.push(prev);
            }
        }
        let id = self.push(
            class,
            label.into(),
            Some(resource.to_string()),
            start,
            end,
            deps,
        );
        self.inner
            .borrow_mut()
            .last_on_resource
            .insert(resource.to_string(), id);
        id
    }

    /// Records a zero-duration node at `at` — a structural fact (coherence
    /// message, functional ring step) that carries edges but no time.
    pub fn instant(
        &self,
        class: &'static str,
        label: impl Into<String>,
        at: SimTime,
        deps: &[NodeId],
    ) -> NodeId {
        self.span(class, label, at, at, deps)
    }

    /// Adds an edge `dep → node` after the fact (e.g. staging legs that are
    /// recorded before their program-order predecessor is known).
    ///
    /// # Panics
    ///
    /// Panics unless `dep < node` (edges must point backward).
    pub fn add_dep(&self, node: NodeId, dep: NodeId) {
        assert!(dep < node, "dependency {dep} must precede node {node}");
        let mut st = self.inner.borrow_mut();
        if !st.nodes[node].deps.contains(&dep) {
            st.nodes[node].deps.push(dep);
        }
    }

    /// The most recent node recorded on `resource`, if any.
    pub fn last_on(&self, resource: &str) -> Option<NodeId> {
        self.inner.borrow().last_on_resource.get(resource).copied()
    }

    /// Declares `sink` as the node at which iteration `iter` completes; the
    /// critical-path walk for that iteration starts here.
    pub fn mark_iteration(&self, iter: u64, sink: NodeId) {
        let mut st = self.inner.borrow_mut();
        assert!(sink < st.nodes.len(), "sink {sink} was never recorded");
        st.sinks.insert(iter, sink);
    }

    /// The completion time of a recorded node.
    pub fn node_end(&self, node: NodeId) -> SimTime {
        self.inner.borrow().nodes[node].end
    }

    /// Nodes recorded so far.
    pub fn node_count(&self) -> usize {
        self.inner.borrow().nodes.len()
    }

    /// Iterations marked so far.
    pub fn iteration_count(&self) -> usize {
        self.inner.borrow().sinks.len()
    }

    /// Renders the backward walk for iteration `iter` with full node
    /// identity (id, class, resource, label, span, dependency ids) — a
    /// debugging aid for chasing missing edges; not part of any report.
    #[doc(hidden)]
    pub fn debug_path(&self, iter: u64) -> Vec<String> {
        let st = self.inner.borrow();
        let mut lines = Vec::new();
        let Some(&sink) = st.sinks.get(&iter) else {
            return lines;
        };
        let iter_start = st
            .sinks
            .range(..iter)
            .next_back()
            .map(|(_, &s)| st.nodes[s].end)
            .unwrap_or(SimTime::ZERO);
        let mut cur = sink;
        loop {
            let node = &st.nodes[cur];
            let pred = node
                .deps
                .iter()
                .copied()
                .max_by_key(|&d| (st.nodes[d].end, d));
            lines.push(format!(
                "#{cur} {} [{} .. {}] {} on {} deps={:?} pred={:?}",
                node.class,
                node.start.as_nanos(),
                node.end.as_nanos(),
                node.label,
                node.resource.as_deref().unwrap_or("-"),
                node.deps,
                pred,
            ));
            match pred {
                Some(p) if st.nodes[p].end > iter_start => cur = p,
                _ => break,
            }
        }
        lines
    }

    fn push(
        &self,
        class: &'static str,
        label: String,
        resource: Option<String>,
        start: SimTime,
        end: SimTime,
        deps: Vec<NodeId>,
    ) -> NodeId {
        let mut st = self.inner.borrow_mut();
        let id = st.nodes.len();
        for &d in &deps {
            assert!(d < id, "dependency {d} of node {id} was never recorded");
        }
        st.nodes.push(Node {
            class,
            label,
            resource,
            start,
            end: end.max(start),
            deps,
        });
        id
    }

    /// Extracts per-iteration critical paths and aggregates blame.
    ///
    /// For each marked iteration the walk starts at the sink and repeatedly
    /// follows the latest-finishing dependency (ties broken by the larger
    /// node id — the later-recorded fact). The slice between that
    /// dependency's completion and the current node's completion is blamed
    /// on the current node's class; a node with no dependencies absorbs the
    /// remainder down to the iteration's start. The slices therefore tile
    /// `[iteration start, sink end]` exactly and per-class blame sums to the
    /// iteration span.
    pub fn analyze(&self) -> Explanation {
        let st = self.inner.borrow();
        let mut iterations = Vec::new();
        let mut blame: BTreeMap<&'static str, SimDuration> = BTreeMap::new();
        let mut prev_sink_end = SimTime::ZERO;
        for (&iter, &sink) in &st.sinks {
            let iter_start = prev_sink_end;
            let sink_end = st.nodes[sink].end.max(iter_start);
            prev_sink_end = sink_end;
            let mut segments = Vec::new();
            let mut cur = sink;
            let mut upper = sink_end;
            loop {
                let node = &st.nodes[cur];
                let pred = node
                    .deps
                    .iter()
                    .copied()
                    .max_by_key(|&d| (st.nodes[d].end, d));
                let lower = match pred {
                    Some(p) => st.nodes[p].end,
                    // A root node absorbs everything back to iteration start:
                    // nothing recorded explains the wait before it.
                    None => iter_start,
                };
                let lo = lower.max(iter_start).min(upper);
                if upper > lo {
                    segments.push(Segment {
                        class: node.class,
                        label: node.label.clone(),
                        start: lo,
                        end: upper,
                    });
                }
                upper = upper.min(lower);
                if lower <= iter_start {
                    break;
                }
                match pred {
                    Some(p) => cur = p,
                    None => break,
                }
            }
            segments.reverse();
            let mut iter_blame: BTreeMap<&'static str, SimDuration> = BTreeMap::new();
            for seg in &segments {
                let d = seg.end - seg.start;
                *iter_blame.entry(seg.class).or_default() += d;
                *blame.entry(seg.class).or_default() += d;
            }
            iterations.push(IterationBlame {
                iter,
                start: iter_start,
                end: sink_end,
                segments,
                blame: iter_blame,
            });
        }
        let total = iterations
            .iter()
            .map(|i| i.end - i.start)
            .fold(SimDuration::ZERO, |a, b| a + b);
        let mut class_events: BTreeMap<&'static str, u64> = BTreeMap::new();
        for n in &st.nodes {
            *class_events.entry(n.class).or_default() += 1;
        }
        Explanation {
            iterations,
            blame,
            total,
            node_count: st.nodes.len(),
            class_events,
        }
    }

    /// Per-resource busy-idle load over `[0, horizon)`, from every node
    /// recorded with a resource name: total busy time, span count, and a
    /// `bins`-bucket busy-nanoseconds timeline.
    ///
    /// # Panics
    ///
    /// Panics if `bins` is zero or `horizon` is zero.
    pub fn resource_loads(&self, bins: usize, horizon: SimTime) -> BTreeMap<String, ResourceLoad> {
        assert!(bins > 0, "need at least one bin");
        let span = horizon - SimTime::ZERO;
        assert!(span > SimDuration::ZERO, "horizon must be positive");
        let h = span.as_nanos();
        let st = self.inner.borrow();
        let mut out: BTreeMap<String, ResourceLoad> = BTreeMap::new();
        for n in &st.nodes {
            let Some(res) = &n.resource else { continue };
            let s = (n.start - SimTime::ZERO).as_nanos().min(h);
            let e = (n.end - SimTime::ZERO).as_nanos().min(h);
            let load = out.entry(res.clone()).or_insert_with(|| ResourceLoad {
                busy: SimDuration::ZERO,
                spans: 0,
                bins: vec![0; bins],
            });
            load.busy += SimDuration::from_nanos(e - s);
            load.spans += 1;
            // Spread [s, e) across fixed-width bins.
            let width = h.div_ceil(bins as u64).max(1);
            let mut t = s;
            while t < e {
                let b = (t / width) as usize;
                let bin_end = ((b as u64 + 1) * width).min(e);
                load.bins[b.min(bins - 1)] += bin_end - t;
                t = bin_end;
            }
        }
        out
    }
}

/// One slice of an iteration's critical path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Segment {
    /// Resource class blamed for this slice.
    pub class: &'static str,
    /// Label of the node the slice belongs to.
    pub label: String,
    /// Slice start.
    pub start: SimTime,
    /// Slice end.
    pub end: SimTime,
}

/// The critical path of one iteration, with per-class blame.
#[derive(Debug, Clone)]
pub struct IterationBlame {
    /// Iteration index as marked.
    pub iter: u64,
    /// Iteration span start (previous sink's end, or time zero).
    pub start: SimTime,
    /// The sink's completion time.
    pub end: SimTime,
    /// Critical-path slices in time order; they tile `[start, end]`.
    pub segments: Vec<Segment>,
    /// Per-class blame; values sum to `end - start`.
    pub blame: BTreeMap<&'static str, SimDuration>,
}

/// Busy-idle load of one named resource.
#[derive(Debug, Clone)]
pub struct ResourceLoad {
    /// Total busy time within the horizon.
    pub busy: SimDuration,
    /// Number of recorded busy spans.
    pub spans: u64,
    /// Busy nanoseconds per fixed-width bin across `[0, horizon)`.
    pub bins: Vec<u64>,
}

/// The result of critical-path extraction: per-iteration paths plus
/// aggregated blame.
#[derive(Debug, Clone)]
pub struct Explanation {
    /// Per-iteration critical paths, in iteration order.
    pub iterations: Vec<IterationBlame>,
    /// Blame aggregated over all iterations.
    pub blame: BTreeMap<&'static str, SimDuration>,
    /// Total critical-path time (sum of iteration spans); blame sums to it.
    pub total: SimDuration,
    /// Nodes recorded in the graph.
    pub node_count: usize,
    /// Recorded node count per class (structural coverage, not blame).
    pub class_events: BTreeMap<&'static str, u64>,
}

impl Explanation {
    /// Fraction of critical-path time blamed on `class` (0.0 when no time
    /// was recorded at all).
    pub fn fraction(&self, class: &str) -> f64 {
        let total = self.total.as_nanos();
        if total == 0 {
            return 0.0;
        }
        let ns = self
            .blame
            .get(class)
            .copied()
            .unwrap_or(SimDuration::ZERO)
            .as_nanos();
        ns as f64 / total as f64
    }

    /// The class with the largest blame (ties broken by [`class::ALL`]
    /// order); `None` when nothing was recorded.
    pub fn dominant(&self) -> Option<&'static str> {
        class::ALL
            .iter()
            .copied()
            .max_by_key(|c| self.blame.get(c).copied().unwrap_or(SimDuration::ZERO))
    }

    /// Upper bound on the fraction of total time saved by making `class`
    /// free — its blame fraction. ("Making all NVLink transfers free saves
    /// at most X%.")
    pub fn speedup_bound(&self, class: &str) -> f64 {
        self.fraction(class)
    }

    /// The per-class blame table as `{class: {ns, fraction}}`, every class
    /// present, in [`class::ALL`] order.
    pub fn blame_json(&self) -> JsonValue {
        let mut obj = JsonValue::object();
        for c in class::ALL {
            let ns = self.blame.get(c).copied().unwrap_or(SimDuration::ZERO);
            obj = obj.with(
                c,
                JsonValue::object()
                    .with("ns", JsonValue::int(ns.as_nanos()))
                    .with("fraction", JsonValue::num(self.fraction(c))),
            );
        }
        obj
    }

    /// Per-iteration JSON rows: span, per-class blame, and the first
    /// `max_segments` critical-path slices (with a `segments_omitted` count
    /// when truncated).
    pub fn iterations_json(&self, max_segments: usize) -> JsonValue {
        let rows: Vec<JsonValue> = self
            .iterations
            .iter()
            .map(|it| {
                let segs: Vec<JsonValue> = it
                    .segments
                    .iter()
                    .take(max_segments)
                    .map(|s| {
                        JsonValue::object()
                            .with("class", JsonValue::Str(s.class.to_string()))
                            .with("label", JsonValue::Str(s.label.clone()))
                            .with(
                                "start_ns",
                                JsonValue::int((s.start - SimTime::ZERO).as_nanos()),
                            )
                            .with("end_ns", JsonValue::int((s.end - SimTime::ZERO).as_nanos()))
                    })
                    .collect();
                let omitted = it.segments.len().saturating_sub(max_segments);
                let mut blame = JsonValue::object();
                for c in class::ALL {
                    let ns = it.blame.get(c).copied().unwrap_or(SimDuration::ZERO);
                    if ns > SimDuration::ZERO {
                        blame = blame.with(c, JsonValue::int(ns.as_nanos()));
                    }
                }
                JsonValue::object()
                    .with("iter", JsonValue::int(it.iter))
                    .with(
                        "start_ns",
                        JsonValue::int((it.start - SimTime::ZERO).as_nanos()),
                    )
                    .with(
                        "end_ns",
                        JsonValue::int((it.end - SimTime::ZERO).as_nanos()),
                    )
                    .with("blame_ns", blame)
                    .with("segments", JsonValue::Array(segs))
                    .with("segments_omitted", JsonValue::int(omitted as u64))
            })
            .collect();
        JsonValue::Array(rows)
    }

    /// A standalone Chrome-trace document marking the critical-path slices:
    /// one named thread per blame class, one complete (`ph: "X"`) event per
    /// slice. Load it in a trace viewer alongside the full run trace to see
    /// which occupancy actually gated each iteration.
    pub fn overlay_trace_json(&self) -> JsonValue {
        let mut events = Vec::new();
        for (tid, c) in class::ALL.iter().enumerate() {
            events.push(
                JsonValue::object()
                    .with("ph", JsonValue::Str("M".into()))
                    .with("pid", JsonValue::int(1))
                    .with("tid", JsonValue::int(tid as u64))
                    .with("name", JsonValue::Str("thread_name".into()))
                    .with(
                        "args",
                        JsonValue::object()
                            .with("name", JsonValue::Str(format!("critical path: {c}"))),
                    ),
            );
        }
        for it in &self.iterations {
            for s in &it.segments {
                let tid = class::ALL
                    .iter()
                    .position(|&c| c == s.class)
                    .unwrap_or(class::ALL.len());
                let ts = (s.start - SimTime::ZERO).as_nanos();
                let dur = (s.end - s.start).as_nanos();
                events.push(
                    JsonValue::object()
                        .with("ph", JsonValue::Str("X".into()))
                        .with("pid", JsonValue::int(1))
                        .with("tid", JsonValue::int(tid as u64))
                        .with("ts", JsonValue::num(ts as f64 / 1000.0))
                        .with("dur", JsonValue::num(dur as f64 / 1000.0))
                        .with("name", JsonValue::Str(s.label.clone()))
                        .with(
                            "args",
                            JsonValue::object()
                                .with("class", JsonValue::Str(s.class.to_string()))
                                .with("iter", JsonValue::int(it.iter)),
                        ),
                );
            }
        }
        JsonValue::object().with("traceEvents", JsonValue::Array(events))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn single_chain_blames_each_node_for_its_wait() {
        let cp = CritPath::new();
        let a = cp.span(class::COMPUTE, "fwd+bwd", t(0), t(100), &[]);
        let b = cp.span_on(class::FABRIC_BUSY, "xfer", "link x", t(100), t(160), &[a]);
        let c = cp.span(class::SYNC, "ring step", t(160), t(200), &[b]);
        cp.mark_iteration(0, c);
        let ex = cp.analyze();
        assert_eq!(ex.total, SimDuration::from_nanos(200));
        assert_eq!(ex.blame[class::COMPUTE], SimDuration::from_nanos(100));
        assert_eq!(ex.blame[class::FABRIC_BUSY], SimDuration::from_nanos(60));
        assert_eq!(ex.blame[class::SYNC], SimDuration::from_nanos(40));
        assert_eq!(ex.dominant(), Some(class::COMPUTE));
        // Segments tile the iteration span in time order.
        let segs = &ex.iterations[0].segments;
        assert_eq!(segs[0].start, t(0));
        assert_eq!(segs.last().unwrap().end, t(200));
        for w in segs.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
    }

    #[test]
    fn walk_follows_the_latest_finishing_dependency() {
        let cp = CritPath::new();
        let fast = cp.span(class::FABRIC_BUSY, "fast", t(0), t(10), &[]);
        let slow = cp.span(class::SYNC, "slow", t(0), t(90), &[]);
        let join = cp.span(class::COMPUTE, "join", t(90), t(100), &[fast, slow]);
        cp.mark_iteration(0, join);
        let ex = cp.analyze();
        // The slow dependency owns [0, 90]; the join owns [90, 100]; the
        // fast one never appears on the path.
        assert_eq!(ex.blame[class::SYNC], SimDuration::from_nanos(90));
        assert_eq!(ex.blame[class::COMPUTE], SimDuration::from_nanos(10));
        assert!(!ex.blame.contains_key(class::FABRIC_BUSY));
    }

    #[test]
    fn fractions_sum_to_one() {
        let cp = CritPath::new();
        let a = cp.span(class::COMPUTE, "a", t(0), t(7), &[]);
        let b = cp.span(class::FABRIC_QUEUE, "b", t(7), t(20), &[a]);
        let c = cp.span(class::RETRY_BACKOFF, "c", t(25), t(33), &[b]);
        cp.mark_iteration(0, c);
        let ex = cp.analyze();
        let sum: f64 = class::ALL.iter().map(|c| ex.fraction(c)).sum();
        assert!((sum - 1.0).abs() < 1e-12, "fractions sum to {sum}");
        // The gap [20, 25] before the backoff is charged to the backoff
        // node — its dependency only explains the path up to t=20.
        assert_eq!(ex.blame[class::RETRY_BACKOFF], SimDuration::from_nanos(13));
    }

    #[test]
    fn resource_ordering_edges_are_implicit() {
        let cp = CritPath::new();
        let first = cp.span_on(class::FABRIC_BUSY, "x1", "link a", t(0), t(50), &[]);
        let second = cp.span_on(class::FABRIC_BUSY, "x2", "link a", t(50), t(80), &[]);
        cp.mark_iteration(0, second);
        let ex = cp.analyze();
        // Without the implicit FIFO edge the second span would absorb
        // [0, 80] itself; with it, the first span owns [0, 50].
        assert_eq!(ex.blame[class::FABRIC_BUSY], SimDuration::from_nanos(80));
        assert_eq!(ex.iterations[0].segments.len(), 2);
        assert_eq!(cp.last_on("link a"), Some(second));
        assert!(first < second);
    }

    #[test]
    fn iterations_partition_time_at_sink_boundaries() {
        let cp = CritPath::new();
        let a = cp.span(class::COMPUTE, "iter0", t(0), t(100), &[]);
        cp.mark_iteration(0, a);
        let b = cp.span(class::SYNC, "iter1", t(100), t(250), &[a]);
        cp.mark_iteration(1, b);
        let ex = cp.analyze();
        assert_eq!(ex.iterations.len(), 2);
        assert_eq!(ex.iterations[1].start, t(100));
        assert_eq!(ex.total, SimDuration::from_nanos(250));
        assert_eq!(ex.blame[class::COMPUTE], SimDuration::from_nanos(100));
        assert_eq!(ex.blame[class::SYNC], SimDuration::from_nanos(150));
    }

    #[test]
    fn resource_loads_bin_busy_time() {
        let cp = CritPath::new();
        cp.span_on(class::FABRIC_BUSY, "x", "link a", t(0), t(40), &[]);
        cp.span_on(class::FABRIC_BUSY, "y", "link a", t(60), t(100), &[]);
        let loads = cp.resource_loads(4, t(100));
        let load = &loads["link a"];
        assert_eq!(load.busy, SimDuration::from_nanos(80));
        assert_eq!(load.spans, 2);
        assert_eq!(load.bins, vec![25, 15, 15, 25]);
    }

    #[test]
    fn empty_graph_analyzes_to_nothing() {
        let ex = CritPath::new().analyze();
        assert!(ex.iterations.is_empty());
        assert_eq!(ex.total, SimDuration::ZERO);
        assert_eq!(ex.fraction(class::COMPUTE), 0.0);
    }

    #[test]
    fn overlay_and_blame_json_are_deterministic() {
        let build = || {
            let cp = CritPath::new();
            let a = cp.span(class::COMPUTE, "fwd", t(0), t(80), &[]);
            let b = cp.span(class::SYNC, "sync", t(80), t(100), &[a]);
            cp.mark_iteration(0, b);
            cp.analyze()
        };
        let (x, y) = (build(), build());
        assert_eq!(x.blame_json().render(), y.blame_json().render());
        assert_eq!(
            x.overlay_trace_json().render(),
            y.overlay_trace_json().render()
        );
        assert_eq!(
            x.iterations_json(16).render(),
            y.iterations_json(16).render()
        );
        let doc = x.overlay_trace_json().render();
        assert!(doc.contains("traceEvents"));
        assert!(doc.contains("critical path: compute"));
    }
}
