//! Structured tracing for simulation runs.
//!
//! Every load-bearing layer of the reproduction (fabric transfers, sync-core
//! ring steps, proxy queues, dual-sync decisions, training phases) can emit
//! **spans**, **instants**, and **counters** through the [`Tracer`] trait.
//! Events are stamped with the simulated clock ([`SimTime`]), a static
//! category string, and a *track* — one row per device, link, or logical
//! lane in the rendered timeline, mirroring the per-stage attribution that
//! drives communication-layer tuning in the paper's figures.
//!
//! Tracing is observation-only and zero-overhead when disabled:
//!
//! - instrumented structs hold an `Option<SharedTracer>` that defaults to
//!   `None`, so the hot path pays one branch;
//! - call sites must check [`Tracer::is_enabled`] before formatting names,
//!   so no allocation happens on untraced runs;
//! - the recording implementation appends to a plain `Vec` behind an
//!   `Rc<RefCell<..>>`, preserving exact emission order so exported traces
//!   are byte-identical across runs with the same seed.
//!
//! [`NullTracer`] is the explicit no-op implementation; [`RecordingTracer`]
//! captures everything into a [`Trace`] that exporters (Chrome trace-event
//! JSON, text summaries) consume.

// simlint: allow(parallel-ready, reason = "RefCell backs the Rc-shared tracer handle below; Rc is !Send, so the type system pins it to one thread")
use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt::Debug;
use std::rc::Rc;

use crate::time::{SimDuration, SimTime};

/// Well-known event categories used by the instrumented layers.
///
/// Keeping them in one place gives exporters and tests a stable vocabulary;
/// new layers should add a constant here rather than inventing ad-hoc
/// strings.
pub mod category {
    /// Link occupancy and flow delivery in `coarse-fabric`.
    pub const FABRIC: &str = "fabric";
    /// Sync-core ring steps (functional and timed collectives).
    pub const SYNC: &str = "cci.sync";
    /// Coherence-directory protocol traffic.
    pub const COHERENCE: &str = "cci.coherence";
    /// Parameter-client push/pull/partition activity.
    pub const CLIENT: &str = "core.client";
    /// Parameter-proxy queueing and service.
    pub const PROXY: &str = "core.proxy";
    /// Dual-sync split decisions (candidate `m`, pilots, chosen `m*`).
    pub const DUALSYNC: &str = "core.dualsync";
    /// Per-iteration training phases (FP/BP/push/collective/pull/blocked).
    pub const TRAIN: &str = "train";
    /// Injected faults (from a `faults::FaultPlan`) and resilience actions.
    pub const FAULT: &str = "fault";
}

/// Identifies one track (timeline row) in a trace. Interned by name via
/// [`Tracer::track`]; `TrackId(0)` is returned by the no-op tracer and is
/// never dereferenced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TrackId(pub u32);

/// What kind of event was recorded.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEventKind {
    /// A closed interval starting at the event's `time`.
    Span {
        /// How long the span lasted.
        duration: SimDuration,
    },
    /// A zero-duration point event.
    Instant,
    /// A sampled gauge/counter value at the event's `time`.
    Counter {
        /// The sampled value.
        value: f64,
    },
}

/// One recorded trace event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Simulated time of the event (span start for spans).
    pub time: SimTime,
    /// Category from [`category`].
    pub category: &'static str,
    /// Track (timeline row) the event belongs to.
    pub track: TrackId,
    /// Human-readable event name.
    pub name: String,
    /// Span / instant / counter payload.
    pub kind: TraceEventKind,
}

/// The sink instrumented code emits events into.
///
/// All methods take `&self`: implementations use interior mutability so a
/// single tracer handle can be shared (`Rc`) across the many structs that
/// make up one simulation. `Debug` is a supertrait so instrumented structs
/// can keep deriving `Debug`.
pub trait Tracer: Debug {
    /// Whether events are being recorded. Call sites must check this before
    /// doing any formatting work, so disabled tracing costs nothing.
    fn is_enabled(&self) -> bool;

    /// Interns a track by name, returning its id. Repeated calls with the
    /// same name return the same id.
    fn track(&self, name: &str) -> TrackId;

    /// Opens a span on `track` at `time`. Spans on one track nest as a
    /// stack: the matching [`Tracer::end_span`] closes the innermost one.
    fn begin_span(&self, time: SimTime, category: &'static str, track: TrackId, name: &str);

    /// Closes the innermost open span on `track` at `time`.
    fn end_span(&self, time: SimTime, track: TrackId);

    /// Records a complete span in one call.
    fn span(
        &self,
        start: SimTime,
        end: SimTime,
        category: &'static str,
        track: TrackId,
        name: &str,
    );

    /// Records a point event.
    fn instant(&self, time: SimTime, category: &'static str, track: TrackId, name: &str);

    /// Samples a gauge/counter value.
    fn counter(
        &self,
        time: SimTime,
        category: &'static str,
        track: TrackId,
        name: &str,
        value: f64,
    );
}

/// A shareable tracer handle. `Rc` (not `Arc`): the simulation kernel is
/// single-threaded by design, and `Rc` keeps instrumented structs `Clone`.
pub type SharedTracer = Rc<dyn Tracer>;

/// The explicit no-op tracer: every method is empty and
/// [`Tracer::is_enabled`] is `false`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullTracer;

impl Tracer for NullTracer {
    fn is_enabled(&self) -> bool {
        false
    }

    fn track(&self, _name: &str) -> TrackId {
        TrackId(0)
    }

    fn begin_span(&self, _time: SimTime, _category: &'static str, _track: TrackId, _name: &str) {}

    fn end_span(&self, _time: SimTime, _track: TrackId) {}

    fn span(
        &self,
        _start: SimTime,
        _end: SimTime,
        _category: &'static str,
        _track: TrackId,
        _name: &str,
    ) {
    }

    fn instant(&self, _time: SimTime, _category: &'static str, _track: TrackId, _name: &str) {}

    fn counter(
        &self,
        _time: SimTime,
        _category: &'static str,
        _track: TrackId,
        _name: &str,
        _value: f64,
    ) {
    }
}

/// A no-op [`SharedTracer`].
pub fn null_tracer() -> SharedTracer {
    Rc::new(NullTracer)
}

#[derive(Debug, Default)]
struct TraceState {
    tracks: Vec<String>,
    by_name: HashMap<String, TrackId>,
    /// Innermost-last stack of open spans per track: (start, category, name).
    open: HashMap<TrackId, Vec<(SimTime, &'static str, String)>>,
    events: Vec<TraceEvent>,
}

impl TraceState {
    fn intern(&mut self, name: &str) -> TrackId {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        // simlint: allow(panic-in-library, reason = "more than u32::MAX distinct trace tracks is out of scope by design")
        let id = TrackId(u32::try_from(self.tracks.len()).expect("too many trace tracks"));
        self.tracks.push(name.to_string());
        self.by_name.insert(name.to_string(), id);
        id
    }
}

/// A tracer that records every event in emission order.
///
/// Cloning is cheap and shares the underlying buffer, so one recording can
/// be fed by the fabric engine, the collectives layer, and the training
/// loop simultaneously.
#[derive(Debug, Clone, Default)]
pub struct RecordingTracer {
    // simlint: allow(parallel-ready, reason = "cheap-clone tracer handle; per-worker traces stitched by timestamp replace this under parallel dispatch")
    state: Rc<RefCell<TraceState>>,
}

impl RecordingTracer {
    /// An empty recording tracer.
    pub fn new() -> Self {
        RecordingTracer::default()
    }

    /// This tracer as a [`SharedTracer`] handle feeding the same buffer.
    pub fn handle(&self) -> SharedTracer {
        Rc::new(self.clone())
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.state.borrow().events.len()
    }

    /// Whether no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Takes the finished trace, leaving this tracer empty.
    ///
    /// # Panics
    ///
    /// Panics if any span is still open — an unbalanced
    /// [`Tracer::begin_span`] is an instrumentation bug.
    pub fn take(&self) -> Trace {
        let mut state = self.state.borrow_mut();
        for (track, stack) in &state.open {
            assert!(
                stack.is_empty(),
                "trace track {track:?} still has {} open span(s): {:?}",
                stack.len(),
                stack.last().map(|(_, _, name)| name.as_str())
            );
        }
        Trace {
            tracks: std::mem::take(&mut state.tracks),
            events: std::mem::take(&mut state.events),
        }
    }
}

impl Tracer for RecordingTracer {
    fn is_enabled(&self) -> bool {
        true
    }

    fn track(&self, name: &str) -> TrackId {
        self.state.borrow_mut().intern(name)
    }

    fn begin_span(&self, time: SimTime, category: &'static str, track: TrackId, name: &str) {
        self.state
            .borrow_mut()
            .open
            .entry(track)
            .or_default()
            .push((time, category, name.to_string()));
    }

    fn end_span(&self, time: SimTime, track: TrackId) {
        let mut state = self.state.borrow_mut();
        let (start, category, name) = state
            .open
            .get_mut(&track)
            .and_then(Vec::pop)
            // simlint: allow(panic-in-library, reason = "documented # Panics contract: end_span pairs with begin_span on the same track")
            .unwrap_or_else(|| panic!("end_span on track {track:?} with no open span"));
        state.events.push(TraceEvent {
            time: start,
            category,
            track,
            name,
            kind: TraceEventKind::Span {
                duration: time.duration_since(start),
            },
        });
    }

    fn span(
        &self,
        start: SimTime,
        end: SimTime,
        category: &'static str,
        track: TrackId,
        name: &str,
    ) {
        self.state.borrow_mut().events.push(TraceEvent {
            time: start,
            category,
            track,
            name: name.to_string(),
            kind: TraceEventKind::Span {
                duration: end.duration_since(start),
            },
        });
    }

    fn instant(&self, time: SimTime, category: &'static str, track: TrackId, name: &str) {
        self.state.borrow_mut().events.push(TraceEvent {
            time,
            category,
            track,
            name: name.to_string(),
            kind: TraceEventKind::Instant,
        });
    }

    fn counter(
        &self,
        time: SimTime,
        category: &'static str,
        track: TrackId,
        name: &str,
        value: f64,
    ) {
        self.state.borrow_mut().events.push(TraceEvent {
            time,
            category,
            track,
            name: name.to_string(),
            kind: TraceEventKind::Counter { value },
        });
    }
}

/// A finished recording: interned track names plus events in emission order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    /// Track names, indexed by [`TrackId`].
    pub tracks: Vec<String>,
    /// All recorded events in emission order.
    pub events: Vec<TraceEvent>,
}

impl Trace {
    /// The name of `track`.
    pub fn track_name(&self, track: TrackId) -> &str {
        &self.tracks[track.0 as usize]
    }

    /// The id of the track named `name`, if any event was recorded on it.
    pub fn find_track(&self, name: &str) -> Option<TrackId> {
        self.tracks
            .iter()
            .position(|t| t == name)
            .map(|i| TrackId(i as u32))
    }

    /// Events with the given category.
    pub fn events_in<'a>(&'a self, category: &'static str) -> impl Iterator<Item = &'a TraceEvent> {
        self.events.iter().filter(move |e| e.category == category)
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The latest instant covered by any event (span end, instant, or
    /// counter sample); `SimTime::ZERO` for an empty trace.
    pub fn horizon(&self) -> SimTime {
        self.events
            .iter()
            .map(|e| match e.kind {
                TraceEventKind::Span { duration } => e.time + duration,
                _ => e.time,
            })
            .fold(SimTime::ZERO, SimTime::max)
    }
}

/// Returns `tracer` only when present *and* enabled — the standard guard
/// instrumented code uses before formatting event names.
pub fn active(tracer: &Option<SharedTracer>) -> Option<&SharedTracer> {
    tracer.as_ref().filter(|t| t.is_enabled())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_tracer_is_disabled_and_inert() {
        let t = null_tracer();
        assert!(!t.is_enabled());
        let track = t.track("anything");
        t.begin_span(SimTime::ZERO, category::FABRIC, track, "s");
        t.end_span(SimTime::from_nanos(5), track);
        t.instant(SimTime::ZERO, category::TRAIN, track, "i");
        t.counter(SimTime::ZERO, category::PROXY, track, "c", 1.0);
        // Nothing observable: the null tracer has no state at all.
        assert_eq!(track, TrackId(0));
    }

    #[test]
    fn recording_tracer_interns_tracks() {
        let t = RecordingTracer::new();
        let a = t.track("link a");
        let b = t.track("link b");
        assert_ne!(a, b);
        assert_eq!(t.track("link a"), a);
        let trace = t.take();
        assert_eq!(trace.track_name(a), "link a");
        assert_eq!(trace.find_track("link b"), Some(b));
        assert_eq!(trace.find_track("missing"), None);
    }

    #[test]
    fn spans_nest_per_track() {
        let t = RecordingTracer::new();
        let tr = t.track("lane");
        t.begin_span(SimTime::from_nanos(10), category::TRAIN, tr, "outer");
        t.begin_span(SimTime::from_nanos(20), category::TRAIN, tr, "inner");
        t.end_span(SimTime::from_nanos(30), tr);
        t.end_span(SimTime::from_nanos(50), tr);
        let trace = t.take();
        assert_eq!(trace.len(), 2);
        assert_eq!(trace.events[0].name, "inner");
        assert_eq!(
            trace.events[0].kind,
            TraceEventKind::Span {
                duration: SimDuration::from_nanos(10)
            }
        );
        assert_eq!(trace.events[1].name, "outer");
        assert_eq!(
            trace.events[1].kind,
            TraceEventKind::Span {
                duration: SimDuration::from_nanos(40)
            }
        );
        assert_eq!(trace.horizon(), SimTime::from_nanos(50));
    }

    #[test]
    #[should_panic(expected = "no open span")]
    fn unbalanced_end_span_panics() {
        let t = RecordingTracer::new();
        let tr = t.track("lane");
        t.end_span(SimTime::ZERO, tr);
    }

    #[test]
    #[should_panic(expected = "open span")]
    fn take_with_open_span_panics() {
        let t = RecordingTracer::new();
        let tr = t.track("lane");
        t.begin_span(SimTime::ZERO, category::TRAIN, tr, "dangling");
        let _ = t.take();
    }

    #[test]
    fn clones_share_one_buffer() {
        let t = RecordingTracer::new();
        let other = t.clone();
        let handle = t.handle();
        let tr = t.track("shared");
        other.instant(SimTime::ZERO, category::SYNC, tr, "from clone");
        handle.counter(SimTime::from_nanos(1), category::PROXY, tr, "depth", 3.0);
        assert_eq!(t.len(), 2);
        let trace = t.take();
        assert_eq!(trace.events_in(category::SYNC).count(), 1);
        assert_eq!(trace.events_in(category::PROXY).count(), 1);
        assert_eq!(trace.events[1].kind, TraceEventKind::Counter { value: 3.0 });
    }

    #[test]
    fn active_guard_filters_disabled() {
        assert!(active(&None).is_none());
        assert!(active(&Some(null_tracer())).is_none());
        let rec: SharedTracer = Rc::new(RecordingTracer::new());
        assert!(active(&Some(rec)).is_some());
    }
}
