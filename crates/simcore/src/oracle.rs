//! Runtime invariant oracles for chaos search.
//!
//! An [`Oracle`] is a registered checker that watches a stream of
//! [`OracleEvent`]s emitted from hook points across the stack — the fabric
//! engine, the sync-core ring, the proxy tier, and the fault-aware training
//! loops — and renders [`Violation`]s when an invariant breaks. Oracles are
//! **observation-only**: emitting events must never perturb simulated time,
//! routing, or any seeded draw, exactly like the tracing layer.
//!
//! The built-in battery covers the invariants the COARSE design argues for
//! structurally:
//!
//! - [`ByteConservation`] — every byte requested of the fabric is either
//!   delivered or explicitly failed, and each ring collective moves exactly
//!   the `2·(n−1)·payload` bytes of the ring-allreduce identity (§III-F).
//! - [`TimeMonotonicity`] — transfers end no earlier than they start,
//!   iteration boundaries advance strictly, and no event is stamped after
//!   the run reportedly ended.
//! - [`Liveness`] — the proxy "waits-for" relation stays acyclic (§III-F,
//!   Fig. 10) and progress never stalls longer than a configurable bound
//!   while work is outstanding.
//! - [`RetryFifo`] — retries draw monotonically increasing attempt numbers
//!   at non-decreasing times, and resilience mechanisms never reorder a
//!   client's shard stream (the §III-F deadlock-avoidance invariant).
//! - [`CleanRunEquivalence`] — a faulty run in which **no fault bit** (no
//!   window intersected live traffic, no retry, no failover) must produce a
//!   result fingerprint bit-identical to the fault-free reference.
//!
//! Register oracles on an [`OracleHub`], thread the hub through the layers
//! under test (each layer exposes a `set_oracles`-style hook), and collect
//! [`OracleHub::violations`] at the end of the run.

// simlint: allow(parallel-ready, reason = "RefCell backs the Rc-shared hub handle below; Rc is !Send, so the type system pins it to one thread")
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use crate::faults::NodeIndex;
use crate::time::{SimDuration, SimTime};

/// Which fault kind perturbed live traffic (a fault "bit").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BiteKind {
    /// A bandwidth degradation stretched a transfer.
    Degrade,
    /// A link flap was active while routing (the route may have shifted).
    Flap,
    /// A transfer hit a dropped device.
    Dropout,
    /// A proxy stall delayed a service.
    Stall,
    /// Transient corruption rejected a transfer.
    Corrupt,
}

impl BiteKind {
    /// Stable label for reports.
    pub fn label(self) -> &'static str {
        match self {
            BiteKind::Degrade => "degrade",
            BiteKind::Flap => "flap",
            BiteKind::Dropout => "dropout",
            BiteKind::Stall => "stall",
            BiteKind::Corrupt => "corrupt",
        }
    }
}

/// One observation fed to the oracle battery.
#[derive(Debug, Clone, PartialEq)]
pub enum OracleEvent {
    /// The fabric was asked to move `bytes` from `src` to `dst`.
    TransferRequested {
        /// Source device (creation index).
        src: NodeIndex,
        /// Destination device (creation index).
        dst: NodeIndex,
        /// Payload size in bytes.
        bytes: u64,
        /// Simulated instant of the request.
        at: SimTime,
    },
    /// A requested transfer completed.
    TransferDelivered {
        /// Source device.
        src: NodeIndex,
        /// Destination device.
        dst: NodeIndex,
        /// Payload size in bytes.
        bytes: u64,
        /// When the transfer started occupying the fabric.
        start: SimTime,
        /// When the last byte arrived.
        end: SimTime,
    },
    /// A requested transfer failed (dead device, no route).
    TransferFailed {
        /// Source device.
        src: NodeIndex,
        /// Destination device.
        dst: NodeIndex,
        /// Payload size in bytes.
        bytes: u64,
        /// Simulated instant of the failure.
        at: SimTime,
    },
    /// An injected fault perturbed live traffic.
    FaultBite {
        /// Which fault kind fired.
        kind: BiteKind,
        /// When it fired.
        at: SimTime,
    },
    /// A ring collective over `cores` members began on `payload_bytes`.
    RingStart {
        /// Number of ring members.
        cores: u32,
        /// Bytes being synchronized.
        payload_bytes: u64,
    },
    /// One ring step moved `bytes` across the ring.
    RingStep {
        /// Bytes sent in this step, summed across members.
        bytes: u64,
        /// Logical step instant.
        at: SimTime,
    },
    /// One attempt of one shard of a client's push/pull stream.
    ShardAttempt {
        /// The pushing worker.
        worker: u32,
        /// The logical stream (tensor id or bucket id).
        stream: u64,
        /// Shard index within the stream.
        shard: u32,
        /// Retry attempt number (0 = first try).
        attempt: u32,
        /// Simulated instant of the attempt.
        at: SimTime,
    },
    /// A stream legitimately restarted from shard 0 (e.g. after failover).
    StreamReset {
        /// The worker whose stream restarted.
        worker: u32,
        /// The restarted stream.
        stream: u64,
        /// When the restart was decided.
        at: SimTime,
    },
    /// A shard landed in a proxy's per-client queue.
    ProxyEnqueue {
        /// The servicing proxy (device creation index).
        proxy: NodeIndex,
        /// The pushing client.
        client: u32,
        /// The logical stream (tensor id).
        stream: u64,
        /// Shard index within the stream.
        shard: u32,
        /// Arrival instant.
        at: SimTime,
    },
    /// A proxy discarded its in-flight round state (round restart).
    ProxyReset {
        /// The proxy that reset.
        proxy: NodeIndex,
        /// When.
        at: SimTime,
    },
    /// `waiter` cannot proceed until `holder` is serviced (wait-for edge).
    WaitEdge {
        /// The blocked unit of work (tensor id).
        waiter: u64,
        /// The unit of work blocking it.
        holder: u64,
    },
    /// Serviceable work completed (liveness heartbeat).
    Progress {
        /// When the progress happened.
        at: SimTime,
    },
    /// One training iteration finished.
    IterationEnd {
        /// Iteration index (0-based, strictly increasing).
        index: u32,
        /// End instant.
        at: SimTime,
    },
    /// The proxy-tier membership changed (eviction after repair or
    /// restore); `epoch` stamps the new membership view.
    MembershipEpoch {
        /// The new membership epoch (strictly increasing within a run).
        epoch: u64,
        /// When the new view took effect.
        at: SimTime,
    },
    /// Result fingerprint of the fault-free reference run.
    ReferenceFingerprint {
        /// Deterministic hash of the reference result.
        hash: u64,
    },
    /// Result fingerprint of the observed (possibly faulty) run.
    RunFingerprint {
        /// Deterministic hash of the observed result.
        hash: u64,
    },
    /// The observed run ended.
    RunEnd {
        /// Final simulated instant.
        at: SimTime,
    },
}

/// One invariant violation rendered by an oracle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The oracle that fired.
    pub oracle: &'static str,
    /// Human-readable description (stable across runs for a given input).
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.oracle, self.detail)
    }
}

/// A runtime invariant checker fed by [`OracleEvent`]s.
pub trait Oracle {
    /// Stable oracle name (used in verdicts and repro artifacts).
    fn name(&self) -> &'static str;
    /// Observes one event. Must be cheap and must not panic on any stream.
    fn observe(&mut self, ev: &OracleEvent);
    /// Violations found so far (called after the run; idempotent).
    fn violations(&self) -> Vec<Violation>;
}

/// Shared, registered oracle battery. Cloning shares the same underlying
/// oracles (like `SharedTracer` / `MetricRegistry`).
#[derive(Clone, Default)]
pub struct OracleHub {
    // simlint: allow(parallel-ready, reason = "cheap-clone hub handle; violations are appended in event order, which a parallel kernel must re-establish anyway")
    inner: Rc<RefCell<HubState>>,
}

#[derive(Default)]
struct HubState {
    oracles: Vec<Box<dyn Oracle>>,
    events_seen: u64,
}

impl std::fmt::Debug for OracleHub {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.inner.borrow();
        f.debug_struct("OracleHub")
            .field("oracles", &st.oracles.len())
            .field("events_seen", &st.events_seen)
            .finish()
    }
}

impl OracleHub {
    /// An empty hub with no oracles registered.
    pub fn new() -> OracleHub {
        OracleHub::default()
    }

    /// A hub armed with the full built-in battery. `watchdog` bounds the
    /// liveness oracle: no progress for longer than this (while work is
    /// outstanding) is a violation.
    pub fn with_builtins(watchdog: SimDuration) -> OracleHub {
        let hub = OracleHub::new();
        hub.register(Box::new(ByteConservation::new()));
        hub.register(Box::new(TimeMonotonicity::new()));
        hub.register(Box::new(Liveness::new(watchdog)));
        hub.register(Box::new(RetryFifo::new()));
        hub.register(Box::new(CleanRunEquivalence::new()));
        hub
    }

    /// Registers an oracle.
    pub fn register(&self, oracle: Box<dyn Oracle>) {
        self.inner.borrow_mut().oracles.push(oracle);
    }

    /// Feeds one event to every registered oracle.
    pub fn emit(&self, ev: OracleEvent) {
        let mut st = self.inner.borrow_mut();
        st.events_seen += 1;
        for o in &mut st.oracles {
            o.observe(&ev);
        }
    }

    /// Total events emitted to this hub.
    pub fn events_seen(&self) -> u64 {
        self.inner.borrow().events_seen
    }

    /// All violations across all registered oracles, in registration order.
    pub fn violations(&self) -> Vec<Violation> {
        self.inner
            .borrow()
            .oracles
            .iter()
            .flat_map(|o| o.violations())
            .collect()
    }

    /// Names of the registered oracles, in registration order.
    pub fn oracle_names(&self) -> Vec<&'static str> {
        self.inner
            .borrow()
            .oracles
            .iter()
            .map(|o| o.name())
            .collect()
    }
}

/// Caps how many violations one oracle accumulates — a systematically broken
/// run would otherwise allocate one violation per event.
const MAX_VIOLATIONS: usize = 16;

fn push_capped(v: &mut Vec<Violation>, oracle: &'static str, detail: String) {
    if v.len() < MAX_VIOLATIONS {
        v.push(Violation { oracle, detail });
    }
}

// ---------------------------------------------------------------------------
// Built-in oracle: byte conservation
// ---------------------------------------------------------------------------

/// Checks the fabric's byte ledger (`requested = delivered + failed`) and
/// the ring-allreduce traffic identity (`2·(n−1)·payload` per collective).
#[derive(Debug, Default)]
pub struct ByteConservation {
    requested_bytes: u64,
    delivered_bytes: u64,
    failed_bytes: u64,
    requested_count: u64,
    delivered_count: u64,
    failed_count: u64,
    /// Expected vs accumulated bytes of the ring collective in flight.
    ring_expected: Option<u64>,
    ring_seen: u64,
    violations: Vec<Violation>,
}

impl ByteConservation {
    /// A fresh ledger.
    pub fn new() -> ByteConservation {
        ByteConservation::default()
    }

    fn close_ring(&mut self) {
        if let Some(expected) = self.ring_expected.take() {
            if self.ring_seen != expected {
                push_capped(
                    &mut self.violations,
                    "byte-conservation",
                    format!(
                        "ring collective moved {} bytes, ring identity requires {}",
                        self.ring_seen, expected
                    ),
                );
            }
        }
        self.ring_seen = 0;
    }
}

impl Oracle for ByteConservation {
    fn name(&self) -> &'static str {
        "byte-conservation"
    }

    fn observe(&mut self, ev: &OracleEvent) {
        match *ev {
            OracleEvent::TransferRequested { bytes, .. } => {
                self.requested_bytes += bytes;
                self.requested_count += 1;
            }
            OracleEvent::TransferDelivered { bytes, .. } => {
                self.delivered_bytes += bytes;
                self.delivered_count += 1;
            }
            OracleEvent::TransferFailed { bytes, .. } => {
                self.failed_bytes += bytes;
                self.failed_count += 1;
            }
            OracleEvent::RingStart {
                cores,
                payload_bytes,
            } => {
                self.close_ring();
                self.ring_expected = Some(2 * (cores as u64).saturating_sub(1) * payload_bytes);
            }
            OracleEvent::RingStep { bytes, .. } => {
                self.ring_seen += bytes;
            }
            OracleEvent::RunEnd { .. } => {
                self.close_ring();
                if self.requested_bytes != self.delivered_bytes + self.failed_bytes {
                    push_capped(
                        &mut self.violations,
                        "byte-conservation",
                        format!(
                            "fabric ledger leaks: requested {} bytes ({} transfers), \
                             delivered {} ({}), failed {} ({})",
                            self.requested_bytes,
                            self.requested_count,
                            self.delivered_bytes,
                            self.delivered_count,
                            self.failed_bytes,
                            self.failed_count
                        ),
                    );
                }
            }
            _ => {}
        }
    }

    fn violations(&self) -> Vec<Violation> {
        self.violations.clone()
    }
}

// ---------------------------------------------------------------------------
// Built-in oracle: simulated-time monotonicity
// ---------------------------------------------------------------------------

/// Checks that simulated time never runs backwards where the design says it
/// cannot: transfers end no earlier than they start, iteration boundaries
/// strictly advance (in both index and time), and no event is stamped after
/// the reported end of the run.
#[derive(Debug, Default)]
pub struct TimeMonotonicity {
    last_iteration: Option<(u32, SimTime)>,
    max_stamp: SimTime,
    violations: Vec<Violation>,
}

impl TimeMonotonicity {
    /// A fresh checker.
    pub fn new() -> TimeMonotonicity {
        TimeMonotonicity::default()
    }

    fn stamp(&mut self, at: SimTime) {
        self.max_stamp = self.max_stamp.max(at);
    }
}

impl Oracle for TimeMonotonicity {
    fn name(&self) -> &'static str {
        "time-monotonicity"
    }

    fn observe(&mut self, ev: &OracleEvent) {
        match *ev {
            OracleEvent::TransferDelivered { start, end, .. } => {
                if end < start {
                    push_capped(
                        &mut self.violations,
                        "time-monotonicity",
                        format!(
                            "transfer ends at {}ns before it starts at {}ns",
                            end.as_nanos(),
                            start.as_nanos()
                        ),
                    );
                }
                self.stamp(end);
            }
            OracleEvent::TransferRequested { at, .. }
            | OracleEvent::TransferFailed { at, .. }
            | OracleEvent::FaultBite { at, .. }
            | OracleEvent::ShardAttempt { at, .. }
            | OracleEvent::StreamReset { at, .. }
            | OracleEvent::ProxyEnqueue { at, .. }
            | OracleEvent::ProxyReset { at, .. }
            | OracleEvent::Progress { at } => self.stamp(at),
            OracleEvent::IterationEnd { index, at } => {
                if let Some((pi, pt)) = self.last_iteration {
                    if index <= pi {
                        push_capped(
                            &mut self.violations,
                            "time-monotonicity",
                            format!("iteration index regressed: {index} after {pi}"),
                        );
                    }
                    if at <= pt {
                        push_capped(
                            &mut self.violations,
                            "time-monotonicity",
                            format!(
                                "iteration {index} ends at {}ns, not after iteration {pi} \
                                 at {}ns",
                                at.as_nanos(),
                                pt.as_nanos()
                            ),
                        );
                    }
                }
                self.last_iteration = Some((index, at));
                self.stamp(at);
            }
            OracleEvent::RunEnd { at } if at < self.max_stamp => {
                push_capped(
                    &mut self.violations,
                    "time-monotonicity",
                    format!(
                        "run reportedly ended at {}ns but an event was stamped {}ns",
                        at.as_nanos(),
                        self.max_stamp.as_nanos()
                    ),
                );
            }
            _ => {}
        }
    }

    fn violations(&self) -> Vec<Violation> {
        self.violations.clone()
    }
}

// ---------------------------------------------------------------------------
// Built-in oracle: wait-for acyclicity + liveness watchdog
// ---------------------------------------------------------------------------

/// Checks that the proxy "waits-for" relation stays acyclic (§III-F,
/// Fig. 10) and that progress heartbeats never gap longer than the watchdog
/// bound while work is outstanding.
#[derive(Debug)]
pub struct Liveness {
    watchdog: SimDuration,
    edges: Vec<(u64, u64)>,
    last_progress: Option<SimTime>,
    violations: Vec<Violation>,
}

impl Liveness {
    /// A checker whose watchdog fires after `watchdog` of silence.
    pub fn new(watchdog: SimDuration) -> Liveness {
        Liveness {
            watchdog,
            edges: Vec::new(),
            last_progress: None,
            violations: Vec::new(),
        }
    }

    /// True if the accumulated wait-for edges contain a cycle. Iterative
    /// three-color DFS over the adjacency list.
    fn has_cycle(&self) -> Option<Vec<u64>> {
        let mut adj: HashMap<u64, Vec<u64>> = HashMap::new();
        for &(w, h) in &self.edges {
            adj.entry(w).or_default().push(h);
        }
        let mut nodes: Vec<u64> = adj.keys().copied().collect();
        nodes.sort_unstable();
        // 0 = white, 1 = on stack, 2 = done.
        let mut color: HashMap<u64, u8> = HashMap::new();
        for &root in &nodes {
            if color.get(&root).copied().unwrap_or(0) != 0 {
                continue;
            }
            // Stack of (node, next-child-index); path tracks the grey chain.
            let mut stack: Vec<(u64, usize)> = vec![(root, 0)];
            color.insert(root, 1);
            let mut path = vec![root];
            while let Some(&mut (node, ref mut idx)) = stack.last_mut() {
                let children = adj.get(&node).map(Vec::as_slice).unwrap_or(&[]);
                if *idx < children.len() {
                    let child = children[*idx];
                    *idx += 1;
                    match color.get(&child).copied().unwrap_or(0) {
                        0 => {
                            color.insert(child, 1);
                            stack.push((child, 0));
                            path.push(child);
                        }
                        1 => {
                            // Found a grey node: the cycle is the path tail.
                            let start = path.iter().position(|&n| n == child).unwrap_or(0);
                            let mut cycle = path[start..].to_vec();
                            cycle.push(child);
                            return Some(cycle);
                        }
                        _ => {}
                    }
                } else {
                    color.insert(node, 2);
                    stack.pop();
                    path.pop();
                }
            }
        }
        None
    }
}

impl Oracle for Liveness {
    fn name(&self) -> &'static str {
        "liveness"
    }

    fn observe(&mut self, ev: &OracleEvent) {
        match *ev {
            OracleEvent::WaitEdge { waiter, holder } => {
                if waiter == holder {
                    push_capped(
                        &mut self.violations,
                        "liveness",
                        format!("work unit {waiter} waits on itself"),
                    );
                } else {
                    self.edges.push((waiter, holder));
                }
            }
            OracleEvent::Progress { at } => {
                if let Some(prev) = self.last_progress {
                    if at > prev && at - prev > self.watchdog {
                        push_capped(
                            &mut self.violations,
                            "liveness",
                            format!(
                                "no progress for {}ns (watchdog {}ns): silent from {}ns \
                                 to {}ns",
                                (at - prev).as_nanos(),
                                self.watchdog.as_nanos(),
                                prev.as_nanos(),
                                at.as_nanos()
                            ),
                        );
                    }
                }
                self.last_progress = Some(at);
                // Progress dissolves the wait-for edges observed so far:
                // they described the schedule *before* this service round.
                self.edges.clear();
            }
            OracleEvent::RunEnd { .. } => {
                if let Some(cycle) = self.has_cycle() {
                    let rendered: Vec<String> = cycle.iter().map(|n| format!("t{n}")).collect();
                    push_capped(
                        &mut self.violations,
                        "liveness",
                        format!("wait-for cycle: {}", rendered.join(" -> ")),
                    );
                }
            }
            _ => {}
        }
    }

    fn violations(&self) -> Vec<Violation> {
        let mut out = self.violations.clone();
        // A cycle present mid-stream (RunEnd not yet seen) still counts.
        if out.len() < MAX_VIOLATIONS {
            if let Some(cycle) = self.has_cycle() {
                let rendered: Vec<String> = cycle.iter().map(|n| format!("t{n}")).collect();
                let v = Violation {
                    oracle: "liveness",
                    detail: format!("wait-for cycle: {}", rendered.join(" -> ")),
                };
                if !out.contains(&v) {
                    out.push(v);
                }
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Built-in oracle: retry-FIFO ordering
// ---------------------------------------------------------------------------

/// Checks the §III-F ordering contract under retries: attempt numbers of one
/// shard increase by exactly one at non-decreasing times, shard indices of
/// one stream never regress (absent an explicit [`OracleEvent::StreamReset`]),
/// and a proxy's per-client queue receives streams without interleaving back
/// to an earlier stream (absent a [`OracleEvent::ProxyReset`]).
#[derive(Debug, Default)]
pub struct RetryFifo {
    /// Per (worker, stream): highest shard seen and its last attempt/time.
    streams: HashMap<(u32, u64), (u32, u32, SimTime)>,
    /// Per (proxy, client): stream arrival state (last stream, seen set).
    queues: HashMap<(NodeIndex, u32), (u64, Vec<u64>, u32)>,
    violations: Vec<Violation>,
}

impl RetryFifo {
    /// A fresh checker.
    pub fn new() -> RetryFifo {
        RetryFifo::default()
    }
}

impl Oracle for RetryFifo {
    fn name(&self) -> &'static str {
        "retry-fifo"
    }

    fn observe(&mut self, ev: &OracleEvent) {
        match *ev {
            OracleEvent::ShardAttempt {
                worker,
                stream,
                shard,
                attempt,
                at,
            } => {
                let key = (worker, stream);
                match self.streams.get_mut(&key) {
                    None => {
                        self.streams.insert(key, (shard, attempt, at));
                    }
                    Some((last_shard, last_attempt, last_at)) => {
                        if shard < *last_shard {
                            push_capped(
                                &mut self.violations,
                                "retry-fifo",
                                format!(
                                    "worker {worker} stream {stream}: shard {shard} \
                                     attempted after shard {last_shard} without a reset"
                                ),
                            );
                        } else if shard == *last_shard
                            && attempt != 0
                            && attempt != *last_attempt + 1
                        {
                            push_capped(
                                &mut self.violations,
                                "retry-fifo",
                                format!(
                                    "worker {worker} stream {stream} shard {shard}: \
                                     attempt {attempt} after attempt {last_attempt}"
                                ),
                            );
                        }
                        if at < *last_at {
                            push_capped(
                                &mut self.violations,
                                "retry-fifo",
                                format!(
                                    "worker {worker} stream {stream} shard {shard}: \
                                     attempt at {}ns before previous attempt at {}ns",
                                    at.as_nanos(),
                                    last_at.as_nanos()
                                ),
                            );
                        }
                        *last_shard = shard;
                        *last_attempt = attempt;
                        *last_at = at;
                    }
                }
            }
            OracleEvent::StreamReset { worker, stream, .. } => {
                self.streams.remove(&(worker, stream));
            }
            OracleEvent::ProxyEnqueue {
                proxy,
                client,
                stream,
                shard,
                ..
            } => {
                let entry = self
                    .queues
                    .entry((proxy, client))
                    .or_insert((stream, Vec::new(), 0));
                let (current, seen, last_shard) = entry;
                if *current != stream {
                    if seen.contains(&stream) {
                        push_capped(
                            &mut self.violations,
                            "retry-fifo",
                            format!(
                                "proxy {proxy} client {client}: stream {stream} \
                                 re-appeared after stream {current} (queue reordered)"
                            ),
                        );
                    }
                    seen.push(*current);
                    *current = stream;
                    *last_shard = shard;
                } else if shard < *last_shard {
                    push_capped(
                        &mut self.violations,
                        "retry-fifo",
                        format!(
                            "proxy {proxy} client {client} stream {stream}: shard \
                             {shard} enqueued after shard {last_shard}"
                        ),
                    );
                } else {
                    *last_shard = shard;
                }
            }
            OracleEvent::ProxyReset { proxy, .. } => {
                self.queues.retain(|&(p, _), _| p != proxy);
            }
            _ => {}
        }
    }

    fn violations(&self) -> Vec<Violation> {
        self.violations.clone()
    }
}

// ---------------------------------------------------------------------------
// Built-in oracle: clean-run equivalence
// ---------------------------------------------------------------------------

/// Checks that a faulty run whose plan never actually perturbed anything —
/// no [`OracleEvent::FaultBite`], no failed transfer, no stream reset —
/// converges to the bit-identical result fingerprint of the fault-free
/// reference run.
#[derive(Debug, Default)]
pub struct CleanRunEquivalence {
    bites: u64,
    resets: u64,
    failed: u64,
    reference: Option<u64>,
    run: Option<u64>,
    violations: Vec<Violation>,
}

impl CleanRunEquivalence {
    /// A fresh checker.
    pub fn new() -> CleanRunEquivalence {
        CleanRunEquivalence::default()
    }
}

impl Oracle for CleanRunEquivalence {
    fn name(&self) -> &'static str {
        "clean-run-equivalence"
    }

    fn observe(&mut self, ev: &OracleEvent) {
        match *ev {
            OracleEvent::FaultBite { .. } => self.bites += 1,
            OracleEvent::StreamReset { .. } => self.resets += 1,
            OracleEvent::TransferFailed { .. } => self.failed += 1,
            OracleEvent::ReferenceFingerprint { hash } => self.reference = Some(hash),
            OracleEvent::RunFingerprint { hash } => self.run = Some(hash),
            OracleEvent::RunEnd { .. }
                if self.bites == 0 && self.resets == 0 && self.failed == 0 =>
            {
                if let (Some(want), Some(got)) = (self.reference, self.run) {
                    if want != got {
                        push_capped(
                            &mut self.violations,
                            "clean-run-equivalence",
                            format!(
                                "no fault bit, yet the run fingerprint \
                                 {got:#018x} differs from the fault-free \
                                 reference {want:#018x}"
                            ),
                        );
                    }
                }
            }
            _ => {}
        }
    }

    fn violations(&self) -> Vec<Violation> {
        self.violations.clone()
    }
}

// ---------------------------------------------------------------------------
// Oracle: membership-epoch monotonicity
// ---------------------------------------------------------------------------

/// Checks that membership epochs strictly increase and that their stamps
/// never run backward: a recovery engine that reuses or reorders epochs
/// would let clients act on a stale membership view.
#[derive(Debug, Default)]
pub struct MembershipMonotonicity {
    last: Option<(u64, SimTime)>,
    violations: Vec<Violation>,
}

impl MembershipMonotonicity {
    /// A fresh checker.
    pub fn new() -> MembershipMonotonicity {
        MembershipMonotonicity::default()
    }
}

impl Oracle for MembershipMonotonicity {
    fn name(&self) -> &'static str {
        "membership-monotonicity"
    }

    fn observe(&mut self, ev: &OracleEvent) {
        if let OracleEvent::MembershipEpoch { epoch, at } = *ev {
            if let Some((prev_epoch, prev_at)) = self.last {
                if epoch <= prev_epoch {
                    push_capped(
                        &mut self.violations,
                        "membership-monotonicity",
                        format!(
                            "membership epoch {epoch} at {at} does not \
                             advance past epoch {prev_epoch} at {prev_at}"
                        ),
                    );
                }
                if at < prev_at {
                    push_capped(
                        &mut self.violations,
                        "membership-monotonicity",
                        format!(
                            "membership epoch {epoch} stamped {at}, before \
                             epoch {prev_epoch}'s stamp {prev_at}"
                        ),
                    );
                }
            } else if epoch == 0 {
                push_capped(
                    &mut self.violations,
                    "membership-monotonicity",
                    format!(
                        "membership epoch 0 announced at {at}: the initial \
                         view is epoch 0 and is never re-announced"
                    ),
                );
            }
            self.last = Some((epoch, at));
        }
    }

    fn violations(&self) -> Vec<Violation> {
        self.violations.clone()
    }
}

// ---------------------------------------------------------------------------
// Oracle: re-convergence after the last fault clears
// ---------------------------------------------------------------------------

/// Checks that once the last injected fault has cleared (`clear_at`), the
/// system completes an iteration within `bound` — i.e. recovery actually
/// re-converges instead of wedging or spinning on stale state. A run that
/// ends before `clear_at + bound` is vacuously fine (the schedule outlived
/// the run), as is a run whose final iteration lands before the last fault
/// window opens.
#[derive(Debug)]
pub struct Reconvergence {
    clear_at: SimTime,
    bound: SimDuration,
    converged: bool,
    violations: Vec<Violation>,
}

impl Reconvergence {
    /// A checker for a schedule whose last fault clears at `clear_at`.
    pub fn new(clear_at: SimTime, bound: SimDuration) -> Reconvergence {
        Reconvergence {
            clear_at,
            bound,
            converged: false,
            violations: Vec::new(),
        }
    }
}

impl Oracle for Reconvergence {
    fn name(&self) -> &'static str {
        "reconvergence"
    }

    fn observe(&mut self, ev: &OracleEvent) {
        match *ev {
            OracleEvent::IterationEnd { at, .. } if at >= self.clear_at => {
                if at <= self.clear_at + self.bound {
                    self.converged = true;
                } else if !self.converged {
                    push_capped(
                        &mut self.violations,
                        "reconvergence",
                        format!(
                            "first iteration after the faults cleared at {} \
                             finished only at {at}, past the {} re-convergence \
                             bound",
                            self.clear_at, self.bound
                        ),
                    );
                    // One verdict per run: later iterations are no less late.
                    self.converged = true;
                }
            }
            OracleEvent::RunEnd { at } if !self.converged && at > self.clear_at + self.bound => {
                push_capped(
                    &mut self.violations,
                    "reconvergence",
                    format!(
                        "run ended at {at} without completing any \
                         iteration within {} of the faults clearing at {}",
                        self.bound, self.clear_at
                    ),
                );
            }
            _ => {}
        }
    }

    fn violations(&self) -> Vec<Violation> {
        self.violations.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn empty_hub_reports_nothing() {
        let hub = OracleHub::new();
        hub.emit(OracleEvent::RunEnd { at: t(10) });
        assert!(hub.violations().is_empty());
        assert_eq!(hub.events_seen(), 1);
    }

    #[test]
    fn byte_conservation_catches_a_leak() {
        let hub = OracleHub::with_builtins(SimDuration::from_millis(10));
        hub.emit(OracleEvent::TransferRequested {
            src: 0,
            dst: 1,
            bytes: 100,
            at: t(0),
        });
        hub.emit(OracleEvent::TransferDelivered {
            src: 0,
            dst: 1,
            bytes: 60,
            start: t(0),
            end: t(5),
        });
        hub.emit(OracleEvent::RunEnd { at: t(5) });
        let v = hub.violations();
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].oracle, "byte-conservation");
        assert!(v[0].detail.contains("requested 100"));
    }

    #[test]
    fn byte_conservation_accepts_balanced_ledger_and_ring_identity() {
        let hub = OracleHub::with_builtins(SimDuration::from_millis(10));
        hub.emit(OracleEvent::TransferRequested {
            src: 0,
            dst: 1,
            bytes: 100,
            at: t(0),
        });
        hub.emit(OracleEvent::TransferDelivered {
            src: 0,
            dst: 1,
            bytes: 100,
            start: t(0),
            end: t(5),
        });
        // Ring of 3 on 300 bytes: identity total is 2*2*300 = 1200.
        hub.emit(OracleEvent::RingStart {
            cores: 3,
            payload_bytes: 300,
        });
        for step in 0..4u64 {
            hub.emit(OracleEvent::RingStep {
                bytes: 300,
                at: t(10 + step),
            });
        }
        hub.emit(OracleEvent::RunEnd { at: t(20) });
        assert!(hub.violations().is_empty(), "{:?}", hub.violations());
    }

    #[test]
    fn ring_identity_violation_detected() {
        let o = &mut ByteConservation::new();
        o.observe(&OracleEvent::RingStart {
            cores: 4,
            payload_bytes: 100,
        });
        o.observe(&OracleEvent::RingStep {
            bytes: 100,
            at: t(1),
        });
        o.observe(&OracleEvent::RunEnd { at: t(2) });
        let v = o.violations();
        assert_eq!(v.len(), 1);
        assert!(v[0].detail.contains("requires 600"), "{}", v[0].detail);
    }

    #[test]
    fn time_monotonicity_catches_backwards_iterations() {
        let o = &mut TimeMonotonicity::new();
        o.observe(&OracleEvent::IterationEnd {
            index: 0,
            at: t(10),
        });
        o.observe(&OracleEvent::IterationEnd { index: 1, at: t(5) });
        let v = o.violations();
        assert_eq!(v.len(), 1);
        assert!(v[0].detail.contains("not after"));
    }

    #[test]
    fn time_monotonicity_catches_events_past_run_end() {
        let o = &mut TimeMonotonicity::new();
        o.observe(&OracleEvent::Progress { at: t(100) });
        o.observe(&OracleEvent::RunEnd { at: t(50) });
        assert_eq!(o.violations().len(), 1);
    }

    #[test]
    fn liveness_finds_the_fig10_cycle() {
        let o = &mut Liveness::new(SimDuration::from_millis(5));
        o.observe(&OracleEvent::WaitEdge {
            waiter: 1,
            holder: 2,
        });
        o.observe(&OracleEvent::WaitEdge {
            waiter: 2,
            holder: 1,
        });
        o.observe(&OracleEvent::RunEnd { at: t(0) });
        let v = o.violations();
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].detail.contains("wait-for cycle"), "{}", v[0].detail);
    }

    #[test]
    fn liveness_accepts_acyclic_waits_and_clears_on_progress() {
        let o = &mut Liveness::new(SimDuration::from_millis(5));
        o.observe(&OracleEvent::WaitEdge {
            waiter: 1,
            holder: 2,
        });
        o.observe(&OracleEvent::WaitEdge {
            waiter: 2,
            holder: 3,
        });
        o.observe(&OracleEvent::Progress { at: t(10) });
        // The same edges reversed later do NOT form a cycle with the
        // pre-progress edges: progress dissolved them.
        o.observe(&OracleEvent::WaitEdge {
            waiter: 2,
            holder: 1,
        });
        o.observe(&OracleEvent::RunEnd { at: t(20) });
        assert!(o.violations().is_empty(), "{:?}", o.violations());
    }

    #[test]
    fn liveness_watchdog_fires_on_long_silence() {
        let o = &mut Liveness::new(SimDuration::from_nanos(100));
        o.observe(&OracleEvent::Progress { at: t(0) });
        o.observe(&OracleEvent::Progress { at: t(500) });
        let v = o.violations();
        assert_eq!(v.len(), 1);
        assert!(v[0].detail.contains("no progress for 500ns"));
    }

    #[test]
    fn retry_fifo_accepts_ordered_attempts_and_catches_inversion() {
        let o = &mut RetryFifo::new();
        // Shard 0: two attempts, then shard 1.
        o.observe(&OracleEvent::ShardAttempt {
            worker: 0,
            stream: 7,
            shard: 0,
            attempt: 0,
            at: t(0),
        });
        o.observe(&OracleEvent::ShardAttempt {
            worker: 0,
            stream: 7,
            shard: 0,
            attempt: 1,
            at: t(10),
        });
        o.observe(&OracleEvent::ShardAttempt {
            worker: 0,
            stream: 7,
            shard: 1,
            attempt: 0,
            at: t(20),
        });
        assert!(o.violations().is_empty());
        // Regressing to shard 0 without a reset is a violation.
        o.observe(&OracleEvent::ShardAttempt {
            worker: 0,
            stream: 7,
            shard: 0,
            attempt: 0,
            at: t(30),
        });
        let v = o.violations();
        assert_eq!(v.len(), 1);
        assert!(v[0].detail.contains("without a reset"));
    }

    #[test]
    fn retry_fifo_allows_restart_after_reset() {
        let o = &mut RetryFifo::new();
        o.observe(&OracleEvent::ShardAttempt {
            worker: 0,
            stream: 7,
            shard: 3,
            attempt: 0,
            at: t(0),
        });
        o.observe(&OracleEvent::StreamReset {
            worker: 0,
            stream: 7,
            at: t(5),
        });
        o.observe(&OracleEvent::ShardAttempt {
            worker: 0,
            stream: 7,
            shard: 0,
            attempt: 0,
            at: t(10),
        });
        assert!(o.violations().is_empty());
    }

    #[test]
    fn retry_fifo_catches_queue_interleaving() {
        let o = &mut RetryFifo::new();
        for (stream, shard) in [(1u64, 0u32), (1, 1), (2, 0), (1, 2)] {
            o.observe(&OracleEvent::ProxyEnqueue {
                proxy: 9,
                client: 0,
                stream,
                shard,
                at: t(0),
            });
        }
        let v = o.violations();
        assert_eq!(v.len(), 1);
        assert!(v[0].detail.contains("re-appeared"), "{}", v[0].detail);
    }

    #[test]
    fn clean_run_equivalence_fires_only_without_bites() {
        // No bites, differing fingerprints: violation.
        let o = &mut CleanRunEquivalence::new();
        o.observe(&OracleEvent::ReferenceFingerprint { hash: 1 });
        o.observe(&OracleEvent::RunFingerprint { hash: 2 });
        o.observe(&OracleEvent::RunEnd { at: t(0) });
        assert_eq!(o.violations().len(), 1);

        // A bite excuses the divergence.
        let o = &mut CleanRunEquivalence::new();
        o.observe(&OracleEvent::FaultBite {
            kind: BiteKind::Degrade,
            at: t(0),
        });
        o.observe(&OracleEvent::ReferenceFingerprint { hash: 1 });
        o.observe(&OracleEvent::RunFingerprint { hash: 2 });
        o.observe(&OracleEvent::RunEnd { at: t(1) });
        assert!(o.violations().is_empty());

        // No bites and identical fingerprints: clean.
        let o = &mut CleanRunEquivalence::new();
        o.observe(&OracleEvent::ReferenceFingerprint { hash: 5 });
        o.observe(&OracleEvent::RunFingerprint { hash: 5 });
        o.observe(&OracleEvent::RunEnd { at: t(1) });
        assert!(o.violations().is_empty());
    }

    #[test]
    fn membership_epochs_must_strictly_increase() {
        let o = &mut MembershipMonotonicity::new();
        o.observe(&OracleEvent::MembershipEpoch { epoch: 1, at: t(5) });
        o.observe(&OracleEvent::MembershipEpoch { epoch: 2, at: t(9) });
        assert!(o.violations().is_empty());
        o.observe(&OracleEvent::MembershipEpoch {
            epoch: 2,
            at: t(12),
        });
        assert_eq!(o.violations().len(), 1, "repeated epoch must fire");

        let o = &mut MembershipMonotonicity::new();
        o.observe(&OracleEvent::MembershipEpoch { epoch: 1, at: t(9) });
        o.observe(&OracleEvent::MembershipEpoch { epoch: 2, at: t(5) });
        assert_eq!(o.violations().len(), 1, "backward stamp must fire");

        let o = &mut MembershipMonotonicity::new();
        o.observe(&OracleEvent::MembershipEpoch { epoch: 0, at: t(5) });
        assert_eq!(
            o.violations().len(),
            1,
            "epoch 0 is the implicit initial view"
        );
    }

    #[test]
    fn reconvergence_accepts_timely_recovery() {
        let o = &mut Reconvergence::new(t(100), SimDuration::from_nanos(50));
        o.observe(&OracleEvent::IterationEnd {
            index: 0,
            at: t(90),
        });
        o.observe(&OracleEvent::IterationEnd {
            index: 1,
            at: t(130),
        });
        o.observe(&OracleEvent::RunEnd { at: t(400) });
        assert!(o.violations().is_empty());
    }

    #[test]
    fn reconvergence_flags_a_wedged_run() {
        // No iteration completes after the faults clear.
        let o = &mut Reconvergence::new(t(100), SimDuration::from_nanos(50));
        o.observe(&OracleEvent::IterationEnd {
            index: 0,
            at: t(90),
        });
        o.observe(&OracleEvent::RunEnd { at: t(400) });
        assert_eq!(o.violations().len(), 1);

        // The first post-clear iteration lands past the bound.
        let o = &mut Reconvergence::new(t(100), SimDuration::from_nanos(50));
        o.observe(&OracleEvent::IterationEnd {
            index: 0,
            at: t(300),
        });
        o.observe(&OracleEvent::RunEnd { at: t(300) });
        assert_eq!(o.violations().len(), 1);
    }

    #[test]
    fn reconvergence_is_vacuous_for_short_runs() {
        // The run ends before the bound elapses: nothing to prove.
        let o = &mut Reconvergence::new(t(100), SimDuration::from_nanos(50));
        o.observe(&OracleEvent::IterationEnd {
            index: 0,
            at: t(90),
        });
        o.observe(&OracleEvent::RunEnd { at: t(120) });
        assert!(o.violations().is_empty());
    }

    #[test]
    fn violations_are_capped() {
        let o = &mut TimeMonotonicity::new();
        for i in 0..100u64 {
            o.observe(&OracleEvent::TransferDelivered {
                src: 0,
                dst: 1,
                bytes: 1,
                start: t(10 + i),
                end: t(0),
            });
        }
        assert_eq!(o.violations().len(), MAX_VIOLATIONS);
    }
}
