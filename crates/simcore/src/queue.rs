//! The event calendar: a deterministic priority queue of timestamped events.
//!
//! Ties in time are broken by insertion order (a monotonically increasing
//! sequence number), so two runs of the same program always pop events in the
//! same order — a requirement for reproducible experiments.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::prof::Profiler;
use crate::time::{SimDuration, SimTime};

/// A handle to a scheduled event, usable for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventHandle(u64);

struct Entry<E> {
    at: SimTime,
    seq: u64,
    /// When the event was scheduled (profiling only: dwell = `at` −
    /// `queued_at` in simulated time, so the histogram stays deterministic).
    queued_at: SimTime,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse for earliest-first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic calendar of future events.
///
/// `EventQueue` tracks the current simulated time: popping an event advances
/// the clock to that event's timestamp.
///
/// ```
/// use coarse_simcore::queue::EventQueue;
/// use coarse_simcore::time::SimDuration;
///
/// let mut q = EventQueue::new();
/// q.schedule_after(SimDuration::from_nanos(5), "late");
/// q.schedule_after(SimDuration::from_nanos(2), "early");
/// let (t, ev) = q.pop().unwrap();
/// assert_eq!((t.as_nanos(), ev), (2, "early"));
/// ```
#[derive(Default)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    now: SimTime,
    next_seq: u64,
    cancelled: std::collections::HashSet<u64>,
    /// Observation-only profiler hook (calendar depth, dwell, cancel
    /// counts); `None` costs one branch per operation.
    profiler: Option<Profiler>,
}

impl<E> EventQueue<E> {
    /// Creates an empty calendar at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            now: SimTime::ZERO,
            next_seq: 0,
            cancelled: std::collections::HashSet::new(),
            profiler: None,
        }
    }

    /// Attaches a profiler recording calendar depth, dwell-time, and
    /// cancellation statistics. Observation-only: scheduling order and
    /// timestamps are unaffected.
    pub fn set_profiler(&mut self, profiler: Profiler) {
        self.profiler = Some(profiler);
    }

    /// The current simulated time (timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.heap.len() - self.cancelled.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is before the current time.
    pub fn schedule_at(&mut self, at: SimTime, event: E) -> EventHandle {
        assert!(
            at >= self.now,
            "cannot schedule into the past: at={at}, now={}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry {
            at,
            seq,
            queued_at: self.now,
            event,
        });
        if let Some(p) = &self.profiler {
            p.queue_scheduled(self.len() as u64);
        }
        EventHandle(seq)
    }

    /// Schedules `event` after a relative delay.
    pub fn schedule_after(&mut self, delay: SimDuration, event: E) -> EventHandle {
        self.schedule_at(self.now + delay, event)
    }

    /// Schedules `event` at the current instant (processed after all events
    /// already scheduled for this instant).
    pub fn schedule_now(&mut self, event: E) -> EventHandle {
        self.schedule_at(self.now, event)
    }

    /// Cancels a previously scheduled event. Returns `true` if the event was
    /// still pending.
    pub fn cancel(&mut self, handle: EventHandle) -> bool {
        if handle.0 >= self.next_seq {
            return false;
        }
        let fresh = self.cancelled.insert(handle.0);
        if fresh {
            if let Some(p) = &self.profiler {
                p.queue_cancelled();
            }
        }
        fresh
    }

    /// Removes and returns the earliest pending event, advancing the clock.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(entry) = self.heap.pop() {
            if self.cancelled.remove(&entry.seq) {
                continue;
            }
            self.now = entry.at;
            if let Some(p) = &self.profiler {
                p.queue_popped(entry.at - entry.queued_at, self.len() as u64);
            }
            return Some((entry.at, entry.event));
        }
        None
    }

    /// The timestamp of the next pending event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(entry) = self.heap.peek() {
            if self.cancelled.contains(&entry.seq) {
                let seq = entry.seq;
                self.heap.pop();
                self.cancelled.remove(&seq);
                continue;
            }
            return Some(entry.at);
        }
        None
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("now", &self.now)
            .field("pending", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_nanos(30), 3);
        q.schedule_at(SimTime::from_nanos(10), 1);
        q.schedule_at(SimTime::from_nanos(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(5);
        for i in 0..10 {
            q.schedule_at(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        q.schedule_after(SimDuration::from_micros(1), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_nanos(1000));
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_nanos(10), ());
        q.pop();
        q.schedule_at(SimTime::from_nanos(5), ());
    }

    #[test]
    fn cancel_removes_event() {
        let mut q = EventQueue::new();
        let h = q.schedule_at(SimTime::from_nanos(1), "a");
        q.schedule_at(SimTime::from_nanos(2), "b");
        assert!(q.cancel(h));
        assert!(!q.cancel(h), "double-cancel should report false");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().map(|(_, e)| e), Some("b"));
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let h = q.schedule_at(SimTime::from_nanos(1), "a");
        q.schedule_at(SimTime::from_nanos(7), "b");
        q.cancel(h);
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(7)));
    }

    #[test]
    fn schedule_now_runs_at_current_instant() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_nanos(4), 1);
        q.pop();
        q.schedule_now(2);
        let (t, e) = q.pop().unwrap();
        assert_eq!((t, e), (SimTime::from_nanos(4), 2));
    }

    #[test]
    fn empty_len_reporting() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        let h = q.schedule_now(());
        assert_eq!(q.len(), 1);
        q.cancel(h);
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }
}
