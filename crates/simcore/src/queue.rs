//! The event calendar: a deterministic priority queue of timestamped events.
//!
//! Ties in time are broken by insertion order (a monotonically increasing
//! sequence number), so two runs of the same program always pop events in the
//! same order — a requirement for reproducible experiments.
//!
//! Two implementations share the [`EventSchedule`] contract:
//!
//! - [`EventQueue`] — the production **calendar queue**: a flat slot arena
//!   (no per-event box or node allocation; freed slots are recycled through
//!   a free list, so the steady state allocates nothing) hashed into
//!   power-of-two time buckets. Pops scan forward from the current bucket,
//!   so for the bounded-horizon schedules a discrete-event simulation
//!   produces, scheduling and popping are O(1) amortized.
//! - [`HeapEventQueue`] — the reference `BinaryHeap` implementation, kept
//!   behind the same trait for differential testing (see
//!   `tests/properties.rs`): any divergence between the two is a bug in the
//!   calendar, by construction.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::prof::Profiler;
use crate::time::{SimDuration, SimTime};

/// A handle to a scheduled event, usable for cancellation.
///
/// Handles are meaningful only to the queue that issued them; the packed
/// representation is implementation-specific and two queue implementations
/// will issue different handles for the same logical schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventHandle(u64);

/// The finalized scheduling surface of the event core.
///
/// # Ordering contract
///
/// Implementations **must** pop events in ascending `(time, insertion)`
/// order: the earliest-scheduled timestamp first, and among events with the
/// **same** timestamp, first-scheduled first (insertion FIFO, tracked by a
/// monotonically increasing sequence number). Equivalently, the pop sequence
/// is strictly increasing in the lexicographic key `(at, seq)`. Both
/// implementations enforce this with a debug assertion on every pop, so the
/// calendar queue and the reference heap are interchangeable by
/// construction.
///
/// # Clock contract
///
/// The queue owns the simulated clock: [`pop`](Self::pop) advances
/// [`now`](Self::now) to the popped event's timestamp, and
/// [`schedule_at`](Self::schedule_at) panics on timestamps before `now`.
/// [`cancel`](Self::cancel) returns `true` iff the event was still pending
/// (scheduled, not yet popped, not previously cancelled).
pub trait EventSchedule<E> {
    /// The current simulated time (timestamp of the last popped event).
    fn now(&self) -> SimTime;

    /// Number of pending (non-cancelled) events.
    fn len(&self) -> usize;

    /// True if no events are pending.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is before the current time.
    fn schedule_at(&mut self, at: SimTime, event: E) -> EventHandle;

    /// Schedules `event` after a relative delay.
    fn schedule_after(&mut self, delay: SimDuration, event: E) -> EventHandle {
        self.schedule_at(self.now() + delay, event)
    }

    /// Schedules `event` at the current instant (processed after all events
    /// already scheduled for this instant).
    fn schedule_now(&mut self, event: E) -> EventHandle {
        self.schedule_at(self.now(), event)
    }

    /// Cancels a previously scheduled event. Returns `true` if the event was
    /// still pending.
    fn cancel(&mut self, handle: EventHandle) -> bool;

    /// Removes and returns the earliest pending event, advancing the clock.
    fn pop(&mut self) -> Option<(SimTime, E)>;

    /// The timestamp of the next pending event, if any.
    fn peek_time(&mut self) -> Option<SimTime>;

    /// Attaches a profiler recording calendar depth, dwell-time, and
    /// cancellation statistics. Observation-only: scheduling order and
    /// timestamps are unaffected.
    fn set_profiler(&mut self, profiler: Profiler);
}

/// Debug-only enforcement of the [`EventSchedule`] ordering contract: the
/// pop sequence must be strictly increasing in `(at, seq)`.
#[inline]
fn check_pop_order(last: &mut Option<(SimTime, u64)>, at: SimTime, seq: u64) {
    if let Some((last_at, last_seq)) = *last {
        debug_assert!(
            at > last_at || (at == last_at && seq > last_seq),
            "EventQueue ordering contract violated: popped (at={at}, seq={seq}) \
             after (at={last_at}, seq={last_seq})"
        );
    }
    *last = Some((at, seq));
}

// ---------------------------------------------------------------------------
// Calendar queue (production implementation)
// ---------------------------------------------------------------------------

/// One arena slot. Slots are recycled through a free list; `gen` is bumped
/// on every release so stale [`EventHandle`]s (popped or pruned events)
/// never alias a reused slot.
struct Slot<E> {
    at: SimTime,
    seq: u64,
    /// When the event was scheduled (profiling only: dwell = `at` −
    /// `queued_at` in simulated time, so the histogram stays deterministic).
    queued_at: SimTime,
    gen: u32,
    /// Cancelled events stay in their bucket (the payload is dropped
    /// eagerly) and are pruned lazily by the next scan over that bucket.
    cancelled: bool,
    event: Option<E>,
}

/// Initial bucket-count; grows by doubling when occupancy demands it.
const INITIAL_BUCKETS: usize = 16;
/// Initial bucket width: 2^10 ns. Recomputed from the pending-event span on
/// growth, so the width tracks the schedule's actual time scale.
const INITIAL_WIDTH_LOG2: u32 = 10;

/// A deterministic calendar of future events.
///
/// `EventQueue` tracks the current simulated time: popping an event advances
/// the clock to that event's timestamp.
///
/// This is the production calendar-queue implementation of
/// [`EventSchedule`]: events live in a flat slot arena (one allocation-free
/// recycle list, no per-event boxes) and are hashed by timestamp into
/// power-of-two time buckets. See [`HeapEventQueue`] for the reference
/// implementation used in differential tests.
///
/// ```
/// use coarse_simcore::queue::EventQueue;
/// use coarse_simcore::time::SimDuration;
///
/// let mut q = EventQueue::new();
/// q.schedule_after(SimDuration::from_nanos(5), "late");
/// q.schedule_after(SimDuration::from_nanos(2), "early");
/// let (t, ev) = q.pop().unwrap();
/// assert_eq!((t.as_nanos(), ev), (2, "early"));
/// ```
pub struct EventQueue<E> {
    slots: Vec<Slot<E>>,
    free: Vec<u32>,
    /// `buckets.len()` is always a power of two; bucket of an event is
    /// `(at >> width_log2) & (buckets.len() - 1)`.
    buckets: Vec<Vec<u32>>,
    width_log2: u32,
    /// Pending (non-cancelled) events.
    live: usize,
    now: SimTime,
    next_seq: u64,
    /// Last popped `(at, seq)`, for the debug ordering assertion.
    last_popped: Option<(SimTime, u64)>,
    /// Observation-only profiler hook (calendar depth, dwell, cancel
    /// counts); `None` costs one branch per operation.
    profiler: Option<Profiler>,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty calendar at time zero.
    pub fn new() -> Self {
        EventQueue {
            slots: Vec::new(),
            free: Vec::new(),
            buckets: (0..INITIAL_BUCKETS).map(|_| Vec::new()).collect(),
            width_log2: INITIAL_WIDTH_LOG2,
            live: 0,
            now: SimTime::ZERO,
            next_seq: 0,
            last_popped: None,
            profiler: None,
        }
    }

    /// Attaches a profiler recording calendar depth, dwell-time, and
    /// cancellation statistics. Observation-only: scheduling order and
    /// timestamps are unaffected.
    pub fn set_profiler(&mut self, profiler: Profiler) {
        self.profiler = Some(profiler);
    }

    /// The current simulated time (timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    fn bucket_of(&self, at: SimTime) -> usize {
        ((at.as_nanos() >> self.width_log2) & (self.buckets.len() as u64 - 1)) as usize
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is before the current time.
    pub fn schedule_at(&mut self, at: SimTime, event: E) -> EventHandle {
        assert!(
            at >= self.now,
            "cannot schedule into the past: at={at}, now={}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        let idx = match self.free.pop() {
            Some(idx) => {
                let slot = &mut self.slots[idx as usize];
                slot.at = at;
                slot.seq = seq;
                slot.queued_at = self.now;
                slot.cancelled = false;
                slot.event = Some(event);
                idx
            }
            None => {
                let idx = self.slots.len() as u32;
                self.slots.push(Slot {
                    at,
                    seq,
                    queued_at: self.now,
                    gen: 0,
                    cancelled: false,
                    event: Some(event),
                });
                idx
            }
        };
        let gen = self.slots[idx as usize].gen;
        let b = self.bucket_of(at);
        self.buckets[b].push(idx);
        self.live += 1;
        if self.live > self.buckets.len() * 4 {
            self.grow();
        }
        if let Some(p) = &self.profiler {
            p.queue_scheduled(self.live as u64);
        }
        EventHandle((u64::from(gen) << 32) | u64::from(idx))
    }

    /// Schedules `event` after a relative delay.
    pub fn schedule_after(&mut self, delay: SimDuration, event: E) -> EventHandle {
        self.schedule_at(self.now + delay, event)
    }

    /// Schedules `event` at the current instant (processed after all events
    /// already scheduled for this instant).
    pub fn schedule_now(&mut self, event: E) -> EventHandle {
        self.schedule_at(self.now, event)
    }

    /// Cancels a previously scheduled event. Returns `true` if the event was
    /// still pending.
    pub fn cancel(&mut self, handle: EventHandle) -> bool {
        let idx = (handle.0 & 0xffff_ffff) as usize;
        let gen = (handle.0 >> 32) as u32;
        let Some(slot) = self.slots.get_mut(idx) else {
            return false;
        };
        if slot.gen != gen || slot.cancelled {
            return false;
        }
        slot.cancelled = true;
        // Drop the payload eagerly; the slot itself is pruned by the next
        // scan over its bucket.
        slot.event = None;
        self.live -= 1;
        if let Some(p) = &self.profiler {
            p.queue_cancelled();
        }
        true
    }

    /// Doubles the bucket count and retunes the bucket width to the average
    /// gap of the pending schedule, then redistributes every pending event.
    /// Deterministic: depends only on the pending timestamps.
    fn grow(&mut self) {
        let nbuckets = self.buckets.len() * 2;
        let (mut min_at, mut max_at) = (u64::MAX, 0u64);
        for slot in &self.slots {
            if slot.event.is_some() && !slot.cancelled {
                min_at = min_at.min(slot.at.as_nanos());
                max_at = max_at.max(slot.at.as_nanos());
            }
        }
        if min_at <= max_at && self.live > 1 {
            let gap = ((max_at - min_at) / self.live as u64).max(1);
            // width = largest power of two ≤ gap, clamped to a sane range.
            self.width_log2 = (63 - gap.leading_zeros()).clamp(4, 40);
        }
        self.buckets = (0..nbuckets).map(|_| Vec::new()).collect();
        for idx in 0..self.slots.len() as u32 {
            let slot = &self.slots[idx as usize];
            if slot.event.is_some() && !slot.cancelled {
                let b = self.bucket_of(slot.at);
                self.buckets[b].push(idx);
            } else if slot.cancelled {
                // Rebuilding visits every slot anyway: prune cancelled ones
                // instead of re-bucketing them.
                let slot = &mut self.slots[idx as usize];
                slot.cancelled = false;
                slot.gen = slot.gen.wrapping_add(1);
                self.free.push(idx);
            }
        }
    }

    /// Finds the pending event with the minimal `(at, seq)` key, pruning
    /// cancelled slots as it scans. Returns `(bucket, position)` of the
    /// winner. Scans one calendar "year" forward from `now`; if every
    /// pending event is further out, falls back to a full scan (still
    /// deterministic: the key is a total order).
    fn find_min(&mut self) -> Option<(usize, usize)> {
        if self.live == 0 {
            return None;
        }
        let nbuckets = self.buckets.len() as u64;
        let shift = self.width_log2;
        let start = self.now.as_nanos() >> shift;
        for step in 0..nbuckets {
            let abs = start + step;
            let b = (abs & (nbuckets - 1)) as usize;
            self.prune_bucket(b);
            let mut best: Option<(usize, SimTime, u64)> = None;
            for (pos, &idx) in self.buckets[b].iter().enumerate() {
                let slot = &self.slots[idx as usize];
                // Only events inside this calendar year: later laps of the
                // same bucket hold strictly later timestamps.
                if slot.at.as_nanos() >> shift != abs {
                    continue;
                }
                let key = (slot.at, slot.seq);
                if best.is_none_or(|(_, a, s)| key < (a, s)) {
                    best = Some((pos, slot.at, slot.seq));
                }
            }
            if let Some((pos, _, _)) = best {
                return Some((b, pos));
            }
        }
        // Every pending event is at least one full calendar year away: take
        // the global minimum.
        let mut best: Option<(usize, usize, SimTime, u64)> = None;
        for b in 0..self.buckets.len() {
            self.prune_bucket(b);
            for (pos, &idx) in self.buckets[b].iter().enumerate() {
                let slot = &self.slots[idx as usize];
                let key = (slot.at, slot.seq);
                if best.is_none_or(|(_, _, a, s)| key < (a, s)) {
                    best = Some((b, pos, slot.at, slot.seq));
                }
            }
        }
        best.map(|(b, pos, _, _)| (b, pos))
    }

    /// Removes cancelled slots from bucket `b` and returns them to the free
    /// list.
    fn prune_bucket(&mut self, b: usize) {
        let Self {
            buckets,
            slots,
            free,
            ..
        } = self;
        buckets[b].retain(|&idx| {
            let slot = &mut slots[idx as usize];
            if slot.cancelled {
                slot.cancelled = false;
                slot.gen = slot.gen.wrapping_add(1);
                free.push(idx);
                false
            } else {
                true
            }
        });
    }

    /// Removes and returns the earliest pending event, advancing the clock.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let (b, pos) = self.find_min()?;
        let idx = self.buckets[b].swap_remove(pos);
        let slot = &mut self.slots[idx as usize];
        let (at, seq, queued_at) = (slot.at, slot.seq, slot.queued_at);
        // simlint: allow(panic-in-library, reason = "find_min only returns live slots, which always hold their payload")
        let event = slot.event.take().expect("live slot holds an event");
        slot.gen = slot.gen.wrapping_add(1);
        self.free.push(idx);
        self.live -= 1;
        self.now = at;
        check_pop_order(&mut self.last_popped, at, seq);
        if let Some(p) = &self.profiler {
            p.queue_popped(at - queued_at, self.live as u64);
        }
        Some((at, event))
    }

    /// The timestamp of the next pending event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        let (b, pos) = self.find_min()?;
        let idx = self.buckets[b][pos];
        Some(self.slots[idx as usize].at)
    }
}

impl<E> EventSchedule<E> for EventQueue<E> {
    fn now(&self) -> SimTime {
        EventQueue::now(self)
    }
    fn len(&self) -> usize {
        EventQueue::len(self)
    }
    fn schedule_at(&mut self, at: SimTime, event: E) -> EventHandle {
        EventQueue::schedule_at(self, at, event)
    }
    fn cancel(&mut self, handle: EventHandle) -> bool {
        EventQueue::cancel(self, handle)
    }
    fn pop(&mut self) -> Option<(SimTime, E)> {
        EventQueue::pop(self)
    }
    fn peek_time(&mut self) -> Option<SimTime> {
        EventQueue::peek_time(self)
    }
    fn set_profiler(&mut self, profiler: Profiler) {
        EventQueue::set_profiler(self, profiler)
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("now", &self.now)
            .field("pending", &self.len())
            .finish()
    }
}

// ---------------------------------------------------------------------------
// Reference heap implementation
// ---------------------------------------------------------------------------

struct Entry<E> {
    at: SimTime,
    seq: u64,
    queued_at: SimTime,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse for earliest-first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The reference [`EventSchedule`] implementation: a plain `BinaryHeap`
/// ordered by `(at, seq)`, with lazy deletion for cancellation.
///
/// Kept for differential testing against the production [`EventQueue`] —
/// this implementation is an order-of-magnitude simpler transcription of the
/// ordering contract, so agreement between the two over random schedules is
/// strong evidence the calendar queue is correct. Not used on any hot path.
#[derive(Default)]
pub struct HeapEventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    now: SimTime,
    next_seq: u64,
    /// `alive[seq]`: scheduled and neither popped nor cancelled. Sequence
    /// numbers are dense, so a flat vector replaces a hash set (the rest of
    /// the kernel bans unordered containers for determinism; an indexed
    /// vector is deterministic by construction).
    alive: Vec<bool>,
    live: usize,
    last_popped: Option<(SimTime, u64)>,
    profiler: Option<Profiler>,
}

impl<E> HeapEventQueue<E> {
    /// Creates an empty reference queue at time zero.
    pub fn new() -> Self {
        HeapEventQueue {
            heap: BinaryHeap::new(),
            now: SimTime::ZERO,
            next_seq: 0,
            alive: Vec::new(),
            live: 0,
            last_popped: None,
            profiler: None,
        }
    }
}

impl<E> EventSchedule<E> for HeapEventQueue<E> {
    fn now(&self) -> SimTime {
        self.now
    }

    fn len(&self) -> usize {
        self.live
    }

    fn schedule_at(&mut self, at: SimTime, event: E) -> EventHandle {
        assert!(
            at >= self.now,
            "cannot schedule into the past: at={at}, now={}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry {
            at,
            seq,
            queued_at: self.now,
            event,
        });
        self.alive.push(true);
        self.live += 1;
        if let Some(p) = &self.profiler {
            p.queue_scheduled(self.live as u64);
        }
        EventHandle(seq)
    }

    fn cancel(&mut self, handle: EventHandle) -> bool {
        let seq = handle.0 as usize;
        if self.alive.get(seq).copied() != Some(true) {
            return false;
        }
        self.alive[seq] = false;
        self.live -= 1;
        if let Some(p) = &self.profiler {
            p.queue_cancelled();
        }
        true
    }

    fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(entry) = self.heap.pop() {
            if !self.alive[entry.seq as usize] {
                continue; // cancelled: lazy deletion
            }
            self.alive[entry.seq as usize] = false;
            self.live -= 1;
            self.now = entry.at;
            check_pop_order(&mut self.last_popped, entry.at, entry.seq);
            if let Some(p) = &self.profiler {
                p.queue_popped(entry.at - entry.queued_at, self.live as u64);
            }
            return Some((entry.at, entry.event));
        }
        None
    }

    fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(entry) = self.heap.peek() {
            if !self.alive[entry.seq as usize] {
                self.heap.pop();
                continue;
            }
            return Some(entry.at);
        }
        None
    }

    fn set_profiler(&mut self, profiler: Profiler) {
        self.profiler = Some(profiler);
    }
}

impl<E> std::fmt::Debug for HeapEventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HeapEventQueue")
            .field("now", &self.now)
            .field("pending", &self.live)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Runs `body` against both implementations of the contract.
    fn for_both(body: impl Fn(&mut dyn EventSchedule<i32>)) {
        body(&mut EventQueue::new());
        body(&mut HeapEventQueue::new());
    }

    #[test]
    fn pops_in_time_order() {
        for_both(|q| {
            q.schedule_at(SimTime::from_nanos(30), 3);
            q.schedule_at(SimTime::from_nanos(10), 1);
            q.schedule_at(SimTime::from_nanos(20), 2);
            let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
            assert_eq!(order, vec![1, 2, 3]);
        });
    }

    #[test]
    fn ties_break_by_insertion_order() {
        for_both(|q| {
            let t = SimTime::from_nanos(5);
            for i in 0..10 {
                q.schedule_at(t, i);
            }
            let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
            assert_eq!(order, (0..10).collect::<Vec<_>>());
        });
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        q.schedule_after(SimDuration::from_micros(1), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_nanos(1000));
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_nanos(10), ());
        q.pop();
        q.schedule_at(SimTime::from_nanos(5), ());
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn heap_scheduling_in_the_past_panics() {
        let mut q = HeapEventQueue::new();
        q.schedule_at(SimTime::from_nanos(10), ());
        q.pop();
        q.schedule_at(SimTime::from_nanos(5), ());
    }

    #[test]
    fn cancel_removes_event() {
        for_both(|q| {
            let h = q.schedule_at(SimTime::from_nanos(1), 1);
            q.schedule_at(SimTime::from_nanos(2), 2);
            assert!(q.cancel(h));
            assert!(!q.cancel(h), "double-cancel should report false");
            assert_eq!(q.len(), 1);
            assert_eq!(q.pop().map(|(_, e)| e), Some(2));
        });
    }

    #[test]
    fn cancel_after_pop_reports_false() {
        for_both(|q| {
            let h = q.schedule_at(SimTime::from_nanos(1), 1);
            assert_eq!(q.pop().map(|(_, e)| e), Some(1));
            assert!(!q.cancel(h), "the event already ran");
            assert_eq!(q.len(), 0);
        });
    }

    #[test]
    fn peek_time_skips_cancelled() {
        for_both(|q| {
            let h = q.schedule_at(SimTime::from_nanos(1), 1);
            q.schedule_at(SimTime::from_nanos(7), 2);
            q.cancel(h);
            assert_eq!(q.peek_time(), Some(SimTime::from_nanos(7)));
        });
    }

    #[test]
    fn schedule_now_runs_at_current_instant() {
        for_both(|q| {
            q.schedule_at(SimTime::from_nanos(4), 1);
            q.pop();
            q.schedule_now(2);
            let (t, e) = q.pop().unwrap();
            assert_eq!((t, e), (SimTime::from_nanos(4), 2));
        });
    }

    #[test]
    fn empty_len_reporting() {
        for_both(|q| {
            assert!(q.is_empty());
            let h = q.schedule_now(0);
            assert_eq!(q.len(), 1);
            q.cancel(h);
            assert!(q.is_empty());
            assert_eq!(q.pop().map(|(_, e)| e), None);
        });
    }

    #[test]
    fn stale_handles_never_alias_recycled_slots() {
        let mut q = EventQueue::new();
        let h = q.schedule_at(SimTime::from_nanos(1), 1);
        q.pop();
        // The freed slot is recycled for a new event; the stale handle must
        // not cancel it.
        let h2 = q.schedule_at(SimTime::from_nanos(2), 2);
        assert!(!q.cancel(h));
        assert_eq!(q.len(), 1);
        assert!(q.cancel(h2));
    }

    #[test]
    fn distant_events_pop_in_order_across_calendar_years() {
        // Events far apart in time alias into the same buckets (calendar
        // "years"); the year guard in find_min must keep them ordered.
        for_both(|q| {
            let spread = [0u64, 1 << 20, 3, 1 << 30, 1 << 12, (1 << 30) + 1];
            for (i, &t) in spread.iter().enumerate() {
                q.schedule_at(SimTime::from_nanos(t), i as i32);
            }
            let mut times = Vec::new();
            while let Some((t, _)) = q.pop() {
                times.push(t.as_nanos());
            }
            let mut sorted = spread.to_vec();
            sorted.sort_unstable();
            assert_eq!(times, sorted);
        });
    }

    #[test]
    fn growth_preserves_order() {
        // Push enough ties + spread to force at least one grow() rebuild.
        let mut q = EventQueue::new();
        let n = 4 * INITIAL_BUCKETS as u64 * 4;
        for i in 0..n {
            q.schedule_at(SimTime::from_nanos((i % 7) * 1000), i as i32);
        }
        let mut popped = Vec::new();
        while let Some((t, e)) = q.pop() {
            popped.push((t.as_nanos(), e));
        }
        let mut expected: Vec<(u64, i32)> = (0..n).map(|i| ((i % 7) * 1000, i as i32)).collect();
        expected.sort_by_key(|&(t, e)| (t, e));
        assert_eq!(popped, expected);
    }

    #[test]
    fn steady_state_recycles_slots() {
        // A bounded-depth schedule must stop growing the arena: every pop
        // frees a slot that the next schedule reuses.
        let mut q = EventQueue::new();
        for i in 0..4 {
            q.schedule_at(SimTime::from_nanos(i), ());
        }
        for i in 4..10_000u64 {
            let (t, ()) = q.pop().unwrap();
            assert_eq!(t.as_nanos(), i - 4);
            q.schedule_at(SimTime::from_nanos(i), ());
        }
        assert!(
            q.slots.len() <= 8,
            "arena grew to {} slots for a depth-4 schedule",
            q.slots.len()
        );
    }
}
