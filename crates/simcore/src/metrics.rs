//! Typed metric registry for simulation runs.
//!
//! Where [`crate::trace`] answers *when did each thing happen*, this module
//! answers *how much happened in total*: link bytes moved, coherence
//! protocol overhead, proxy queue depths, ring steps executed, blocked
//! time accumulated. Instrumented layers publish into a shared
//! [`MetricRegistry`] alongside their trace events; at the end of a run the
//! registry is frozen into a deterministic [`MetricsSnapshot`] that run
//! reports and perf artifacts serialize.
//!
//! The design mirrors the tracer so both follow one idiom:
//!
//! - instrumented structs hold an `Option<MetricRegistry>` defaulting to
//!   `None`, so unmetered runs pay one branch per site;
//! - [`MetricRegistry`] is a cheap-clone handle (`Rc<RefCell<..>>`) — the
//!   fabric engine, collectives, and training loop all feed one registry;
//! - metrics are observation-only: publishing never changes simulated
//!   timing, and the determinism tests assert metered == unmetered runs.
//!
//! Three metric types cover every consumer in the workspace:
//!
//! | type | storage | example |
//! |------|---------|---------|
//! | counter | `u64`, monotonically increasing | `fabric.bytes` |
//! | gauge | `f64`, last-write-wins | `dualsync.chosen_m_bytes` |
//! | histogram | [`QuantileEstimator`] samples | `proxy.queue_depth` |

// simlint: allow(parallel-ready, reason = "RefCell backs the Rc-shared registry handle below; Rc is !Send, so the type system pins it to one thread")
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use crate::json::JsonValue;
use crate::stats::QuantileEstimator;

/// Well-known metric names used by the instrumented layers.
///
/// One vocabulary, like [`crate::trace::category`]: reports and tests refer
/// to these constants, so renames stay compile-checked.
pub mod name {
    /// Counter: point-to-point transfers completed by the fabric engine.
    pub const FABRIC_TRANSFERS: &str = "fabric.transfers";
    /// Counter: payload bytes delivered over fabric links.
    pub const FABRIC_BYTES: &str = "fabric.bytes";
    /// Counter: total link-nanoseconds of occupancy reserved on the fabric.
    pub const FABRIC_LINK_BUSY_NS: &str = "fabric.link_busy_ns";
    /// Counter: transfers staged through a host CPU (no p2p path).
    pub const FABRIC_STAGED: &str = "fabric.staged_transfers";
    /// Counter: timed ring-collective steps executed over the fabric.
    pub const RING_STEPS: &str = "collective.ring_steps";
    /// Counter: bytes moved by timed ring-collective steps.
    pub const RING_BYTES: &str = "collective.ring_bytes";
    /// Counter: sync-core ring steps executed (functional collectives).
    pub const SYNC_CORE_STEPS: &str = "cci.sync.core_steps";
    /// Counter: bytes forwarded between sync cores.
    pub const SYNC_CORE_BYTES: &str = "cci.sync.core_bytes";
    /// Counter: coherence protocol messages issued by the directory.
    pub const COHERENCE_MESSAGES: &str = "cci.coherence.messages";
    /// Counter: coherence protocol bytes (headers + invalidation payloads).
    pub const COHERENCE_BYTES: &str = "cci.coherence.protocol_bytes";
    /// Counter: gradient pushes accepted by the parameter proxy.
    pub const PROXY_PUSHES: &str = "core.proxy.pushes";
    /// Histogram: proxy queue depth sampled at each enqueue/dequeue.
    pub const PROXY_QUEUE_DEPTH: &str = "core.proxy.queue_depth";
    /// Counter: gradient pushes issued by parameter clients.
    pub const CLIENT_PUSHES: &str = "core.client.pushes";
    /// Counter: gradient bytes pushed by parameter clients.
    pub const CLIENT_PUSH_BYTES: &str = "core.client.push_bytes";
    /// Histogram: client outstanding-push queue depth.
    pub const CLIENT_QUEUE_DEPTH: &str = "core.client.queue_depth";
    /// Counter: training iterations completed.
    pub const TRAIN_ITERATIONS: &str = "train.iterations";
    /// Counter: nanoseconds the training loop spent blocked on
    /// communication.
    pub const TRAIN_BLOCKED_NS: &str = "train.blocked_ns";
    /// Histogram: per-iteration forward-pass time in nanoseconds.
    pub const TRAIN_FP_NS: &str = "train.fp_ns";
    /// Histogram: per-iteration backward-pass time in nanoseconds.
    pub const TRAIN_BP_NS: &str = "train.bp_ns";
    /// Histogram: per-iteration synchronization (non-overlapped) time in
    /// nanoseconds.
    pub const TRAIN_SYNC_NS: &str = "train.sync_ns";
    /// Gauge: dual-sync chosen proxy-path split `m*` in bytes.
    pub const DUALSYNC_CHOSEN_M_BYTES: &str = "dualsync.chosen_m_bytes";
    /// Gauge: dual-sync pilot candidates evaluated before choosing `m*`.
    pub const DUALSYNC_PILOT_RUNS: &str = "dualsync.pilot_runs";
}

#[derive(Debug, Default)]
struct MetricState {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    histograms: BTreeMap<&'static str, QuantileEstimator>,
}

/// A cheap-clone handle to a shared metric store.
///
/// Clones share the underlying maps (like [`crate::trace::RecordingTracer`]),
/// so one registry can be threaded through every instrumented struct of a
/// simulation and frozen once at the end.
#[derive(Debug, Clone, Default)]
pub struct MetricRegistry {
    // simlint: allow(parallel-ready, reason = "cheap-clone registry handle; per-worker registries merged at the end replace this under parallel dispatch")
    state: Rc<RefCell<MetricState>>,
}

impl MetricRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricRegistry::default()
    }

    /// Adds `delta` to the named counter (creating it at zero).
    pub fn inc(&self, name: &'static str, delta: u64) {
        *self.state.borrow_mut().counters.entry(name).or_insert(0) += delta;
    }

    /// Sets the named gauge to `value` (last write wins).
    ///
    /// # Panics
    ///
    /// Panics if `value` is NaN — a NaN gauge poisons every report that
    /// reads it.
    pub fn gauge(&self, name: &'static str, value: f64) {
        assert!(!value.is_nan(), "gauge {name} set to NaN");
        self.state.borrow_mut().gauges.insert(name, value);
    }

    /// Records one sample into the named histogram.
    ///
    /// # Panics
    ///
    /// Panics if `value` is NaN (the quantile estimator rejects NaN).
    pub fn observe(&self, name: &'static str, value: f64) {
        self.state
            .borrow_mut()
            .histograms
            .entry(name)
            .or_default()
            .record(value);
    }

    /// Current value of a counter (zero if never incremented).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.state.borrow().counters.get(name).copied().unwrap_or(0)
    }

    /// Freezes the registry into a deterministic snapshot. The registry
    /// keeps its contents; snapshotting is non-destructive.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut state = self.state.borrow_mut();
        let counters = state
            .counters
            .iter()
            .map(|(&name, &value)| (name.to_string(), value))
            .collect();
        let gauges = state
            .gauges
            .iter()
            .map(|(&name, &value)| (name.to_string(), value))
            .collect();
        let histograms = state
            .histograms
            .iter_mut()
            .map(|(&name, est)| (name.to_string(), HistogramSummary::from_estimator(est)))
            .collect();
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

/// Returns `metrics` only when present — the guard instrumented code uses,
/// mirroring [`crate::trace::active`]. (A registry handle is always live;
/// the option itself is the on/off switch.)
pub fn metered(metrics: &Option<MetricRegistry>) -> Option<&MetricRegistry> {
    metrics.as_ref()
}

/// Order-statistics summary of one histogram, computed at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSummary {
    /// Number of samples recorded.
    pub count: usize,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (linear interpolation).
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
}

impl HistogramSummary {
    fn from_estimator(est: &mut QuantileEstimator) -> HistogramSummary {
        let count = est.count();
        assert!(count > 0, "histograms are created on first sample");
        // simlint: allow(panic-in-library, reason = "guarded by the non-empty assert at the top of from_estimator")
        let min = est.quantile(0.0).expect("non-empty");
        // simlint: allow(panic-in-library, reason = "guarded by the non-empty assert at the top of from_estimator")
        let max = est.quantile(1.0).expect("non-empty");
        // simlint: allow(panic-in-library, reason = "guarded by the non-empty assert at the top of from_estimator")
        let p50 = est.quantile(0.5).expect("non-empty");
        // simlint: allow(panic-in-library, reason = "guarded by the non-empty assert at the top of from_estimator")
        let p95 = est.quantile(0.95).expect("non-empty");
        // simlint: allow(panic-in-library, reason = "guarded by the non-empty assert at the top of from_estimator")
        let p99 = est.quantile(0.99).expect("non-empty");
        // simlint: allow(panic-in-library, reason = "guarded by the non-empty assert at the top of from_estimator")
        let mean = est.mean().expect("non-empty");
        HistogramSummary {
            count,
            min,
            max,
            mean,
            p50,
            p95,
            p99,
        }
    }

    /// This summary as a JSON object (fixed member order).
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object()
            .with("count", JsonValue::int(self.count as u64))
            .with("min", JsonValue::num(self.min))
            .with("max", JsonValue::num(self.max))
            .with("mean", JsonValue::num(self.mean))
            .with("p50", JsonValue::num(self.p50))
            .with("p95", JsonValue::num(self.p95))
            .with("p99", JsonValue::num(self.p99))
    }
}

/// A frozen, deterministic view of a registry: all maps sorted by metric
/// name, histograms reduced to order-statistics summaries.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter values, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Gauge values, sorted by name.
    pub gauges: Vec<(String, f64)>,
    /// Histogram summaries, sorted by name.
    pub histograms: Vec<(String, HistogramSummary)>,
}

impl MetricsSnapshot {
    /// Value of the named counter, or zero if absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |&(_, v)| v)
    }

    /// Value of the named gauge, if set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Summary of the named histogram, if any samples were recorded.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSummary> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// This snapshot as a JSON object with `counters` / `gauges` /
    /// `histograms` members, each sorted by metric name.
    pub fn to_json(&self) -> JsonValue {
        let counters = self
            .counters
            .iter()
            .fold(JsonValue::object(), |obj, (name, value)| {
                obj.with(name, JsonValue::int(*value))
            });
        let gauges = self
            .gauges
            .iter()
            .fold(JsonValue::object(), |obj, (name, value)| {
                obj.with(name, JsonValue::num(*value))
            });
        let histograms = self
            .histograms
            .iter()
            .fold(JsonValue::object(), |obj, (name, summary)| {
                obj.with(name, summary.to_json())
            });
        JsonValue::object()
            .with("counters", counters)
            .with("gauges", gauges)
            .with("histograms", histograms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = MetricRegistry::new();
        m.inc(name::FABRIC_BYTES, 100);
        m.inc(name::FABRIC_BYTES, 23);
        m.inc(name::FABRIC_TRANSFERS, 1);
        let snap = m.snapshot();
        assert_eq!(snap.counter(name::FABRIC_BYTES), 123);
        assert_eq!(snap.counter(name::FABRIC_TRANSFERS), 1);
        assert_eq!(snap.counter("missing"), 0);
    }

    #[test]
    fn gauges_last_write_wins() {
        let m = MetricRegistry::new();
        m.gauge(name::DUALSYNC_CHOSEN_M_BYTES, 1.0);
        m.gauge(name::DUALSYNC_CHOSEN_M_BYTES, 2.0);
        assert_eq!(m.snapshot().gauge(name::DUALSYNC_CHOSEN_M_BYTES), Some(2.0));
        assert_eq!(m.snapshot().gauge("missing"), None);
    }

    #[test]
    fn histogram_summary_orders_samples() {
        let m = MetricRegistry::new();
        for x in [4.0, 1.0, 3.0, 2.0] {
            m.observe(name::PROXY_QUEUE_DEPTH, x);
        }
        let snap = m.snapshot();
        let h = snap.histogram(name::PROXY_QUEUE_DEPTH).unwrap();
        assert_eq!(h.count, 4);
        assert_eq!(h.min, 1.0);
        assert_eq!(h.max, 4.0);
        assert_eq!(h.p50, 2.5);
        assert_eq!(h.mean, 2.5);
    }

    #[test]
    fn clones_share_one_store() {
        let m = MetricRegistry::new();
        let other = m.clone();
        other.inc(name::RING_STEPS, 7);
        assert_eq!(m.counter_value(name::RING_STEPS), 7);
    }

    #[test]
    fn snapshot_is_sorted_and_deterministic() {
        let build = || {
            let m = MetricRegistry::new();
            m.inc(name::TRAIN_ITERATIONS, 3);
            m.inc(name::FABRIC_BYTES, 9);
            m.gauge(name::DUALSYNC_PILOT_RUNS, 5.0);
            m.observe(name::TRAIN_FP_NS, 10.0);
            m.observe(name::TRAIN_FP_NS, 30.0);
            m.snapshot()
        };
        let a = build();
        let b = build();
        assert_eq!(a, b);
        // Counter names arrive unsorted but snapshot in BTreeMap order.
        let names: Vec<&str> = a.counters.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec![name::FABRIC_BYTES, name::TRAIN_ITERATIONS]);
        assert_eq!(a.to_json().render(), b.to_json().render());
    }

    #[test]
    fn metered_guard() {
        assert!(metered(&None).is_none());
        assert!(metered(&Some(MetricRegistry::new())).is_some());
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_gauge_rejected() {
        MetricRegistry::new().gauge(name::TRAIN_BLOCKED_NS, f64::NAN);
    }
}
