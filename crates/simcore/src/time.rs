//! Simulated time.
//!
//! All timing in the simulator is expressed in integer **nanoseconds** so the
//! event calendar is exact and runs are bit-reproducible. Two newtypes keep
//! instants and durations from being confused ([`SimTime`] vs
//! [`SimDuration`]), mirroring `std::time::{Instant, Duration}`.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the simulated clock, in nanoseconds since simulation start.
///
/// ```
/// use coarse_simcore::time::{SimTime, SimDuration};
/// let t = SimTime::ZERO + SimDuration::from_micros(3);
/// assert_eq!(t.as_nanos(), 3_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
///
/// ```
/// use coarse_simcore::time::SimDuration;
/// assert_eq!(SimDuration::from_millis(2).as_secs_f64(), 0.002);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The far future; no event is ever scheduled at or after this instant.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `nanos` nanoseconds after simulation start.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The duration from `earlier` to `self`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                // simlint: allow(panic-in-library, reason = "documented # Panics contract mirroring std::time: earlier must not exceed self")
                .expect("`earlier` must not be after `self`"),
        )
    }

    /// The duration from `other` to `self`, or [`SimDuration::ZERO`] if
    /// `other` is later.
    pub fn saturating_duration_since(self, other: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// The earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The longest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration of `nanos` nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a duration of `micros` microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * 1_000)
    }

    /// Creates a duration of `millis` milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000_000)
    }

    /// Creates a duration of `secs` seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000_000)
    }

    /// Creates a duration from fractional seconds, rounding to nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "duration seconds must be finite and non-negative, got {secs}"
        );
        SimDuration((secs * 1e9).round() as u64)
    }

    /// Duration in whole nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Duration in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration in fractional microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Duration in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// True if the duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The longer of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// The shorter of two durations.
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }

    /// Saturating subtraction; returns [`SimDuration::ZERO`] on underflow.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiplies by a non-negative float, rounding to nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "duration factor must be finite and non-negative, got {factor}"
        );
        SimDuration((self.0 as f64 * factor).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        // simlint: allow(panic-in-library, reason = "overflow in simulated time arithmetic is a model bug; mirrors std::time panic semantics")
        SimTime(self.0.checked_add(rhs.0).expect("simulated time overflow"))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        // simlint: allow(panic-in-library, reason = "overflow in simulated time arithmetic is a model bug; mirrors std::time panic semantics")
        SimTime(self.0.checked_sub(rhs.0).expect("simulated time underflow"))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.duration_since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        // simlint: allow(panic-in-library, reason = "overflow in simulated time arithmetic is a model bug; mirrors std::time panic semantics")
        SimDuration(self.0.checked_add(rhs.0).expect("duration overflow"))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        // simlint: allow(panic-in-library, reason = "overflow in simulated time arithmetic is a model bug; mirrors std::time panic semantics")
        SimDuration(self.0.checked_sub(rhs.0).expect("duration underflow"))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        // simlint: allow(panic-in-library, reason = "overflow in simulated time arithmetic is a model bug; mirrors std::time panic semantics")
        SimDuration(self.0.checked_mul(rhs).expect("duration overflow"))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&SimDuration(self.0), f)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", ns as f64 / 1e9)
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_millis(1000));
        assert_eq!(SimDuration::from_millis(1), SimDuration::from_micros(1000));
        assert_eq!(SimDuration::from_micros(1), SimDuration::from_nanos(1000));
    }

    #[test]
    fn time_arithmetic_round_trips() {
        let t0 = SimTime::from_nanos(500);
        let d = SimDuration::from_nanos(250);
        let t1 = t0 + d;
        assert_eq!(t1 - t0, d);
        assert_eq!(t1 - d, t0);
        assert_eq!(t1.duration_since(t0), d);
    }

    #[test]
    fn saturating_duration_since_clamps() {
        let early = SimTime::from_nanos(10);
        let late = SimTime::from_nanos(20);
        assert_eq!(early.saturating_duration_since(late), SimDuration::ZERO);
        assert_eq!(
            late.saturating_duration_since(early),
            SimDuration::from_nanos(10)
        );
    }

    #[test]
    #[should_panic(expected = "`earlier` must not be after `self`")]
    fn duration_since_panics_on_reversed_order() {
        let _ = SimTime::from_nanos(1).duration_since(SimTime::from_nanos(2));
    }

    #[test]
    fn from_secs_f64_rounds_to_nanos() {
        assert_eq!(
            SimDuration::from_secs_f64(1.5e-9),
            SimDuration::from_nanos(2)
        );
        assert_eq!(
            SimDuration::from_secs_f64(0.25),
            SimDuration::from_millis(250)
        );
    }

    #[test]
    fn mul_div_scale() {
        let d = SimDuration::from_micros(3);
        assert_eq!(d * 4, SimDuration::from_micros(12));
        assert_eq!(d / 3, SimDuration::from_micros(1));
        assert_eq!(d.mul_f64(0.5), SimDuration::from_nanos(1500));
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(SimDuration::from_nanos(5).to_string(), "5ns");
        assert_eq!(SimDuration::from_micros(5).to_string(), "5.000us");
        assert_eq!(SimDuration::from_millis(5).to_string(), "5.000ms");
        assert_eq!(SimDuration::from_secs(5).to_string(), "5.000s");
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = [1u64, 2, 3].into_iter().map(SimDuration::from_nanos).sum();
        assert_eq!(total, SimDuration::from_nanos(6));
    }

    #[test]
    fn min_max() {
        let a = SimTime::from_nanos(1);
        let b = SimTime::from_nanos(2);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }
}
