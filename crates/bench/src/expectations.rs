//! The paper-expectation registry: one declarative table mapping every
//! DESIGN.md §4 experiment to `{id, paper value, tolerance bands, measured
//! extractor}`, replacing scattered hard-coded asserts.
//!
//! Each [`Expectation`] carries two inclusive bands. The **pass** band is
//! calibrated to the simulator's reproduction of the paper's figure; the
//! wider **warn** band flags drift that is suspicious but not yet a
//! regression. A measured value outside both is a **fail**. The
//! `figures -- validate` subcommand renders the evaluated table as a
//! fidelity scorecard; `figures -- report` emits it as versioned JSON.
//!
//! Expensive generators (the Fig. 16 training sweeps, node scaling) are
//! memoized in [`Measurements`] so one scorecard evaluation runs each
//! experiment at most once regardless of how many expectations read it.

use std::cell::OnceCell;

use coarse_core::resilience::RecoveryPolicy;
use coarse_simcore::json::JsonValue;
use coarse_trainsim::{
    compare_straggler, node_scaling, recovery_report, RecoveryReport, ScalingPoint, StragglerResult,
};

use crate::mechanisms::{self, Fig10, Fig9};
use crate::micro::{self, Fig13, Fig14, Fig3, Fig8};
use crate::training::{self, CapacityWall, Fig16e, Fig16f, Fig2Row, SchemeComparison, Table1Row};

/// Schema identifier of the scorecard JSON document.
pub const SCORECARD_SCHEMA: &str = "coarse.scorecard/v1";

/// Every metric name the instrumented simulator records, mirrored from
/// `simcore::metrics::name`. simlint's `metric-coverage` rule diffs this
/// list against the constants in metrics.rs both ways, so a metric cannot be
/// added (or renamed) without the bench layer acknowledging it here — the
/// scorecard and run reports are the declared consumers of every series.
pub static KNOWN_METRICS: &[&str] = &[
    "fabric.transfers",
    "fabric.bytes",
    "fabric.link_busy_ns",
    "fabric.staged_transfers",
    "collective.ring_steps",
    "collective.ring_bytes",
    "cci.sync.core_steps",
    "cci.sync.core_bytes",
    "cci.coherence.messages",
    "cci.coherence.protocol_bytes",
    "core.proxy.pushes",
    "core.proxy.queue_depth",
    "core.client.pushes",
    "core.client.push_bytes",
    "core.client.queue_depth",
    "train.iterations",
    "train.blocked_ns",
    "train.fp_ns",
    "train.bp_ns",
    "train.sync_ns",
    "dualsync.chosen_m_bytes",
    "dualsync.pilot_runs",
];

/// Verdict of one expectation (ordered: `Pass < Warn < Fail`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Verdict {
    /// Measured value inside the calibrated pass band.
    Pass,
    /// Outside the pass band but inside the warn band: suspicious drift.
    Warn,
    /// Outside both bands (or not a number): fidelity regression.
    Fail,
}

impl Verdict {
    /// Fixed-width display label.
    pub fn label(self) -> &'static str {
        match self {
            Verdict::Pass => "PASS",
            Verdict::Warn => "WARN",
            Verdict::Fail => "FAIL",
        }
    }
}

/// Lazily-computed, memoized experiment outputs shared by all extractors
/// within one scorecard evaluation.
#[derive(Default)]
pub struct Measurements {
    table1: OnceCell<Vec<Table1Row>>,
    fig2: OnceCell<Vec<Fig2Row>>,
    fig3: OnceCell<Fig3>,
    fig8: OnceCell<Vec<Fig8>>,
    fig9: OnceCell<Fig9>,
    fig10: OnceCell<Fig10>,
    fig13: OnceCell<Fig13>,
    fig14: OnceCell<Fig14>,
    fig15: OnceCell<Vec<micro::Fig15>>,
    fig16: OnceCell<Vec<SchemeComparison>>,
    fig16e: OnceCell<Fig16e>,
    fig16f: OnceCell<Fig16f>,
    capacity: OnceCell<CapacityWall>,
    ring_bw: OnceCell<f64>,
    routing: OnceCell<(f64, f64)>,
    bidir: OnceCell<(f64, f64)>,
    coherence: OnceCell<Vec<(usize, u64)>>,
    crossover: OnceCell<Option<f64>>,
    straggler: OnceCell<Vec<(f64, StragglerResult, StragglerResult)>>,
    scaling: OnceCell<Vec<ScalingPoint>>,
    recovery: OnceCell<RecoveryReport>,
}

impl Measurements {
    /// Fresh (empty) measurement cache.
    pub fn new() -> Self {
        Measurements::default()
    }

    fn table1(&self) -> &[Table1Row] {
        self.table1.get_or_init(training::table1)
    }
    fn fig2(&self) -> &[Fig2Row] {
        self.fig2.get_or_init(training::fig2)
    }
    fn fig3(&self) -> &Fig3 {
        self.fig3.get_or_init(micro::fig3)
    }
    fn fig8(&self) -> &[Fig8] {
        self.fig8.get_or_init(micro::fig8_all)
    }
    fn fig9(&self) -> &Fig9 {
        self.fig9.get_or_init(mechanisms::fig9)
    }
    fn fig10(&self) -> &Fig10 {
        self.fig10.get_or_init(mechanisms::fig10)
    }
    fn fig13(&self) -> &Fig13 {
        self.fig13.get_or_init(micro::fig13)
    }
    fn fig14(&self) -> &Fig14 {
        self.fig14.get_or_init(micro::fig14)
    }
    fn fig15(&self) -> &[micro::Fig15] {
        self.fig15.get_or_init(micro::fig15_all)
    }
    fn fig16(&self) -> &[SchemeComparison] {
        self.fig16.get_or_init(training::fig16_single_node)
    }
    fn fig16_panel(&self, id: &str) -> &SchemeComparison {
        self.fig16
            .get_or_init(training::fig16_single_node)
            .iter()
            .find(|r| r.id == id)
            .expect("known fig16 panel id")
    }
    fn fig16e(&self) -> &Fig16e {
        self.fig16e.get_or_init(training::fig16e)
    }
    fn fig16f(&self) -> &Fig16f {
        self.fig16f.get_or_init(training::fig16f)
    }
    fn capacity(&self) -> &CapacityWall {
        self.capacity.get_or_init(training::capacity_wall)
    }
    fn ring_bw(&self) -> f64 {
        *self
            .ring_bw
            .get_or_init(mechanisms::ablation_ring_bandwidth_utilization)
    }
    fn routing(&self) -> (f64, f64) {
        *self.routing.get_or_init(mechanisms::ablation_routing)
    }
    fn bidir(&self) -> (f64, f64) {
        *self.bidir.get_or_init(|| {
            let (same, opposite) = mechanisms::ablation_bidirectional_groups();
            (same.as_secs_f64(), opposite.as_secs_f64())
        })
    }
    fn coherence(&self) -> &[(usize, u64)] {
        self.coherence
            .get_or_init(|| mechanisms::ablation_coherence_scaling(8))
    }
    fn crossover_kib(&self) -> Option<f64> {
        *self.crossover.get_or_init(|| {
            mechanisms::ablation_ring_tree_crossover().map(|s| s.as_u64() as f64 / 1024.0)
        })
    }
    fn straggler(&self) -> &[(f64, StragglerResult, StragglerResult)] {
        self.straggler.get_or_init(|| {
            [0.0f64, 0.4]
                .iter()
                .map(|&sigma| {
                    let (barrier, overlap) = compare_straggler(4, sigma);
                    (sigma, barrier, overlap)
                })
                .collect()
        })
    }
    fn scaling(&self) -> &[ScalingPoint] {
        self.scaling
            .get_or_init(|| node_scaling(&coarse_models::zoo::bert_large(), 2, &[1, 2, 4]))
    }
    fn recovery(&self) -> &RecoveryReport {
        self.recovery.get_or_init(|| {
            let policy = RecoveryPolicy {
                checkpoint_interval: 2,
                ..RecoveryPolicy::default()
            };
            recovery_report("fig16d", 6, &policy).expect("fig16d runs under the recovery harness")
        })
    }
}

/// One declarative paper expectation.
pub struct Expectation {
    /// Stable identifier, `<scenario>.<metric>`.
    pub id: &'static str,
    /// Scenario group used by `figures -- validate <scenario>`.
    pub scenario: &'static str,
    /// What is being checked.
    pub description: &'static str,
    /// The paper's quoted value or band, for display.
    pub paper: &'static str,
    /// Inclusive band calibrated to this simulator's reproduction.
    pub pass: (f64, f64),
    /// Wider inclusive band: outside `pass` but inside `warn` is drift.
    pub warn: (f64, f64),
    /// Pulls the measured value out of the memoized experiment outputs.
    pub extract: fn(&Measurements) -> f64,
}

impl Expectation {
    /// Evaluates this expectation against (memoized) measurements.
    pub fn evaluate(&self, m: &Measurements) -> Evaluated<'_> {
        let measured = (self.extract)(m);
        let verdict = if contains(self.pass, measured) {
            Verdict::Pass
        } else if contains(self.warn, measured) {
            Verdict::Warn
        } else {
            Verdict::Fail
        };
        Evaluated {
            expectation: self,
            measured,
            verdict,
        }
    }
}

fn contains(band: (f64, f64), v: f64) -> bool {
    v.is_finite() && band.0 <= v && v <= band.1
}

fn bool_metric(b: bool) -> f64 {
    if b {
        1.0
    } else {
        0.0
    }
}

/// Inclusive band meaning "exactly true" for boolean expectations.
const TRUE_BAND: (f64, f64) = (0.5, 1.5);

/// The registry: every DESIGN.md §4 row as a declarative expectation.
/// Bands are calibrated to the simulator (see DESIGN.md §9); the paper's
/// own figure is kept alongside for display.
pub static REGISTRY: &[Expectation] = &[
    Expectation {
        id: "table1.half-gpus-emulate-devices",
        scenario: "table1",
        description: "all machines split GPUs evenly into workers and memory devices",
        paper: "Table I: half of each machine's GPUs emulate CCI memory devices",
        pass: TRUE_BAND,
        warn: TRUE_BAND,
        extract: |m| {
            bool_metric(
                m.table1()
                    .iter()
                    .all(|r| r.workers == r.mem_devices && r.workers * 2 == r.gpus),
            )
        },
    },
    Expectation {
        id: "fig2.max-comm-fraction",
        scenario: "fig2",
        description: "worst-case blocking communication fraction under the centralized PS",
        paper: "Fig. 2: up to 76% of training time",
        pass: (0.70, 1.00),
        warn: (0.60, 1.00),
        extract: |m| m.fig2().iter().map(|r| r.comm_fraction).fold(0.0, f64::max),
    },
    Expectation {
        id: "fig2.min-comm-fraction",
        scenario: "fig2",
        description: "compute-bound case (ResNet50 on V100) stays far less comm-bound",
        paper: "Fig. 2: overhead is model- and machine-dependent",
        pass: (0.0, 0.60),
        warn: (0.0, 0.70),
        extract: |m| m.fig2().iter().map(|r| r.comm_fraction).fold(1.0, f64::min),
    },
    Expectation {
        id: "fig3.read-speedup",
        scenario: "fig3",
        description: "GPU-Direct over CCI load/store read bandwidth at 64 MiB",
        paper: "Fig. 3: 17x read",
        pass: (16.0, 17.5),
        warn: (9.0, 25.0),
        extract: |m| m.fig3().read_speedup,
    },
    Expectation {
        id: "fig3.write-speedup",
        scenario: "fig3",
        description: "GPU-Direct over CCI load/store write bandwidth at 64 MiB",
        paper: "Fig. 3: 4x write",
        pass: (3.8, 4.2),
        warn: (1.25, 8.0),
        extract: |m| m.fig3().write_speedup,
    },
    Expectation {
        id: "fig8.v100-anti-locality",
        scenario: "fig8",
        description: "V100 remote-pair over local-pair bidirectional bandwidth",
        paper: "Fig. 8a: remote > local (anti-locality)",
        pass: (1.3, 2.5),
        warn: (1.0, 3.0),
        extract: |m| {
            let v100 = &m.fig8()[0];
            v100.matrix[0][2] / v100.matrix[0][1]
        },
    },
    Expectation {
        id: "fig8.p100-locality",
        scenario: "fig8",
        description: "P100 local-pair over remote-pair bidirectional bandwidth",
        paper: "Fig. 8b: local > remote",
        pass: (1.15, 1.6),
        warn: (1.0, 2.0),
        extract: |m| {
            let p100 = &m.fig8()[1];
            p100.matrix[0][1] / p100.matrix[0][2]
        },
    },
    Expectation {
        id: "fig8.sdsc-local-uni-gib",
        scenario: "fig8",
        description: "SDSC local-pair unidirectional bandwidth (GiB/s)",
        paper: "SIII-E: 13 GB/s unidirectional",
        pass: (12.0, 14.0),
        warn: (10.0, 16.0),
        extract: |m| m.fig8()[1].local_uni_gib,
    },
    Expectation {
        id: "fig8.sdsc-local-bidir-gib",
        scenario: "fig8",
        description: "SDSC local-pair aggregate bidirectional bandwidth (GiB/s)",
        paper: "SIII-E: 25 GB/s bidirectional",
        pass: (23.0, 27.0),
        warn: (20.0, 30.0),
        extract: |m| m.fig8()[1].local_bidir_gib,
    },
    Expectation {
        id: "fig9.partition-speedup",
        scenario: "fig9",
        description: "partitioned-pipelined over FIFO tensor synchronization makespan",
        paper: "Fig. 9: partitioning fills both bus directions without idle gaps",
        pass: (1.3, 2.0),
        warn: (1.1, 3.0),
        extract: |m| m.fig9().speedup,
    },
    Expectation {
        id: "fig10.fcfs-deadlocks",
        scenario: "fig10",
        description: "FCFS proxy scheduling deadlocks on the crossed-tensor scenario",
        paper: "Fig. 10: FCFS deadlocks",
        pass: TRUE_BAND,
        warn: TRUE_BAND,
        extract: |m| bool_metric(!m.fig10().fcfs.deadlocked.is_empty()),
    },
    Expectation {
        id: "fig10.queue-completes",
        scenario: "fig10",
        description: "per-client queue scheduling completes every tensor",
        paper: "Fig. 10: queue-based scheduling avoids the deadlock",
        pass: TRUE_BAND,
        warn: TRUE_BAND,
        extract: |m| {
            let q = &m.fig10().queue_based;
            bool_metric(q.deadlocked.is_empty() && !q.completed.is_empty())
        },
    },
    Expectation {
        id: "fig13.direct-read-gain-64mib",
        scenario: "fig13",
        description: "GPU-Direct over CCI read bandwidth at the largest access size",
        paper: "Fig. 13: GPU Direct 9-17x read over CCI",
        pass: (9.0, 17.5),
        warn: (5.0, 25.0),
        extract: |m| {
            let f = m.fig13();
            let cci = f.curves[0].1.last().expect("non-empty sweep");
            let direct = f.curves[2].1.last().expect("non-empty sweep");
            direct / cci
        },
    },
    Expectation {
        id: "fig13.cci-read-flat",
        scenario: "fig13",
        description: "CCI load/store read bandwidth is flat across access sizes",
        paper: "Fig. 13: CCI curve is flat",
        pass: (0.999, 1.001),
        warn: (0.99, 1.01),
        extract: |m| {
            let read = &m.fig13().curves[0].1;
            let max = read.iter().copied().fold(f64::MIN, f64::max);
            let min = read.iter().copied().fold(f64::MAX, f64::min);
            max / min
        },
    },
    Expectation {
        id: "fig14.saturation-mib",
        scenario: "fig14",
        description: "smallest DMA access size reaching >=99% of peak read bandwidth (MiB)",
        paper: "Fig. 14: saturates at 2 MiB",
        pass: (1.9, 2.1),
        warn: (0.9, 4.1),
        extract: |m| m.fig14().saturation_size.as_u64() as f64 / (1u64 << 20) as f64,
    },
    Expectation {
        id: "fig15.v100-remote-bandwidth-gain",
        scenario: "fig15",
        description: "V100 best-remote over local proxy bandwidth (routing-table input)",
        paper: "Fig. 15: V100 profiling steers clients to remote proxies",
        pass: (1.4, 2.2),
        warn: (1.1, 3.0),
        extract: |m| {
            let v100 = &m.fig15()[2];
            v100.best_remote.bandwidth / v100.local.bandwidth
        },
    },
    Expectation {
        id: "fig15.p100-local-bandwidth-gain",
        scenario: "fig15",
        description: "P100 local over best-remote proxy bandwidth",
        paper: "Fig. 15: P100 locality keeps clients on the local proxy",
        pass: (1.1, 1.6),
        warn: (1.0, 2.0),
        extract: |m| {
            let p100 = &m.fig15()[1];
            p100.local.bandwidth / p100.best_remote.bandwidth
        },
    },
    Expectation {
        id: "fig15.local-latency-wins-p2p-machines",
        scenario: "fig15",
        description: "the local proxy has the lowest small-transfer latency on P100 and V100",
        paper: "Fig. 15: latency favors the same-switch proxy on p2p machines",
        pass: TRUE_BAND,
        warn: TRUE_BAND,
        extract: |m| {
            bool_metric(
                m.fig15()[1..]
                    .iter()
                    .all(|f| f.local.latency < f.best_remote.latency),
            )
        },
    },
    Expectation {
        id: "fig16a.coarse-speedup",
        scenario: "fig16",
        description: "COARSE over DENSE, ResNet50 on AWS T4",
        paper: "Fig. 16a: 3.3-4.3x",
        pass: (1.5, 3.5),
        warn: (1.2, 4.5),
        extract: |m| m.fig16_panel("fig16a").coarse_speedup(),
    },
    Expectation {
        id: "fig16b.coarse-speedup",
        scenario: "fig16",
        description: "COARSE over DENSE, BERT-Base on AWS T4",
        paper: "Fig. 16b: 11.3-13.3x",
        pass: (8.0, 14.0),
        warn: (6.0, 16.0),
        extract: |m| m.fig16_panel("fig16b").coarse_speedup(),
    },
    Expectation {
        id: "fig16c.coarse-speedup",
        scenario: "fig16",
        description: "COARSE over DENSE, BERT-Large on SDSC P100",
        paper: "Fig. 16c: ~3.4x",
        pass: (2.0, 4.0),
        warn: (1.5, 5.0),
        extract: |m| m.fig16_panel("fig16c").coarse_speedup(),
    },
    Expectation {
        id: "fig16d.coarse-speedup",
        scenario: "fig16",
        description: "COARSE over DENSE, BERT-Large on AWS V100",
        paper: "Fig. 16d: 10.8-13.8x",
        pass: (8.0, 18.0),
        warn: (6.0, 22.0),
        extract: |m| m.fig16_panel("fig16d").coarse_speedup(),
    },
    Expectation {
        id: "fig16.all-schemes-beat-dense",
        scenario: "fig16",
        description: "smallest AllReduce/COARSE speedup over DENSE across all panels",
        paper: "Fig. 16: both schemes beat the naive CCI parameter server everywhere",
        pass: (1.5, f64::INFINITY),
        warn: (1.2, f64::INFINITY),
        extract: |m| {
            m.fig16()
                .iter()
                .flat_map(|r| [r.coarse_speedup(), r.allreduce_speedup()])
                .fold(f64::INFINITY, f64::min)
        },
    },
    Expectation {
        id: "fig16.bert-dominates-resnet",
        scenario: "fig16",
        description: "V100 BERT COARSE speedup over T4 ResNet COARSE speedup",
        paper: "Fig. 16: communication-dominated models gain far more",
        pass: (2.0, f64::INFINITY),
        warn: (1.5, f64::INFINITY),
        extract: |m| {
            m.fig16_panel("fig16d").coarse_speedup() / m.fig16_panel("fig16a").coarse_speedup()
        },
    },
    Expectation {
        id: "fig16d.coarse-over-allreduce",
        scenario: "fig16",
        description: "COARSE over AllReduce iteration time on the NVLink-less V100 path",
        paper: "Fig. 16d: COARSE > AllReduce",
        pass: (1.0, 1.5),
        warn: (0.95, 2.0),
        extract: |m| {
            let d = m.fig16_panel("fig16d");
            d.coarse_speedup() / d.allreduce_speedup()
        },
    },
    Expectation {
        id: "fig16b.t4-blocked-ratio",
        scenario: "fig16",
        description: "COARSE over AllReduce blocked time on the p2p-less T4 (must not dominate)",
        paper: "Fig. 16b: COARSE trails AllReduce slightly on T4",
        pass: (0.8, 2.0),
        warn: (0.6, 3.0),
        extract: |m| {
            let b = m.fig16_panel("fig16b");
            b.coarse.blocked_comm.as_secs_f64() / b.allreduce.blocked_comm.as_secs_f64()
        },
    },
    Expectation {
        id: "fig16e.allreduce-b4-oom",
        scenario: "fig16",
        description: "BERT-Large batch 4 does not fit with on-GPU parameters and Adam state",
        paper: "Fig. 16e: AllReduce cannot reach batch 4 in 16 GiB",
        pass: TRUE_BAND,
        warn: TRUE_BAND,
        extract: |m| bool_metric(!m.fig16e().allreduce_b4_fits),
    },
    Expectation {
        id: "fig16e.batch4-throughput-gain",
        scenario: "fig16",
        description: "COARSE(b4) over AllReduce(b2) throughput on one V100 node",
        paper: "Fig. 16e: +48.3%",
        pass: (1.25, 1.7),
        warn: (1.1, 2.0),
        extract: |m| m.fig16e().speedup,
    },
    Expectation {
        id: "fig16f.two-node-gain",
        scenario: "fig16",
        description: "two-node COARSE over two-node AllReduce throughput",
        paper: "Fig. 16f: up to +42.7%",
        pass: (1.05, 1.45),
        warn: (1.0, 1.6),
        extract: |m| m.fig16f().speedup_2node,
    },
    Expectation {
        id: "fig16f.one-node-b4-gain",
        scenario: "fig16",
        description: "single-node COARSE(b4) over two-node AllReduce(b2) throughput",
        paper: "Fig. 16f: +38.6%",
        pass: (1.2, 2.0),
        warn: (1.1, 2.5),
        extract: |m| m.fig16f().speedup_1node_b4,
    },
    Expectation {
        id: "fig17.coarse-max-normalized",
        scenario: "fig17",
        description: "worst COARSE blocked time normalized to DENSE (BERT panels)",
        paper: "Fig. 17: <10% of the naive CCI parameter server",
        pass: (0.0, 0.15),
        warn: (0.0, 0.25),
        extract: |m| {
            m.fig16()
                .iter()
                .filter(|r| r.id != "fig16a")
                .map(|r| r.normalized_blocked(&r.coarse))
                .fold(0.0, f64::max)
        },
    },
    Expectation {
        id: "fig17.allreduce-max-normalized",
        scenario: "fig17",
        description: "worst AllReduce blocked time normalized to DENSE (BERT panels)",
        paper: "Fig. 17: <10% of the naive CCI parameter server",
        pass: (0.0, 0.20),
        warn: (0.0, 0.30),
        extract: |m| {
            m.fig16()
                .iter()
                .filter(|r| r.id != "fig16a")
                .map(|r| r.normalized_blocked(&r.allreduce))
                .fold(0.0, f64::max)
        },
    },
    Expectation {
        id: "fig17.coarse-beats-allreduce-p100-v100",
        scenario: "fig17",
        description: "COARSE blocks less than AllReduce on the p2p-capable machines",
        paper: "Fig. 17c-d: COARSE -28% (P100), -20..-42% (V100) vs AllReduce",
        pass: TRUE_BAND,
        warn: TRUE_BAND,
        extract: |m| {
            bool_metric(["fig16c", "fig16d"].iter().all(|id| {
                let r = m.fig16_panel(id);
                r.coarse.blocked_comm < r.allreduce.blocked_comm
            }))
        },
    },
    Expectation {
        id: "fig17e.coarse-blocked-vs-allreduce",
        scenario: "fig17",
        description: "single-node COARSE(b4) blocked time over AllReduce(b2)",
        paper: "Fig. 17e: COARSE well under AllReduce",
        pass: (0.1, 0.6),
        warn: (0.05, 0.9),
        extract: |m| {
            let e = m.fig16e();
            e.coarse_b4.blocked_comm.as_secs_f64() / e.allreduce_b2.blocked_comm.as_secs_f64()
        },
    },
    Expectation {
        id: "fig17f.coarse-blocked-vs-allreduce",
        scenario: "fig17",
        description: "two-node COARSE blocked time over two-node AllReduce",
        paper: "Fig. 17f: -23..-46% vs AllReduce",
        pass: (0.6, 1.0),
        warn: (0.3, 1.1),
        extract: |m| {
            let f = m.fig16f();
            f.coarse_2node.blocked_comm.as_secs_f64() / f.allreduce_2node.blocked_comm.as_secs_f64()
        },
    },
    Expectation {
        id: "ablation.ring-bandwidth-utilization",
        scenario: "ablations",
        description: "ring AllReduce utilization of full-duplex link capacity (V100 PCIe)",
        paper: "SII-B: as low as 34% on DGX-1",
        pass: (0.30, 0.40),
        warn: (0.25, 0.50),
        extract: |m| m.ring_bw(),
    },
    Expectation {
        id: "ablation.routing-gain",
        scenario: "ablations",
        description: "routed over forced-local push bandwidth on the anti-local V100",
        paper: "SIV-B: the routing table exploits anti-locality",
        pass: (1.4, 2.2),
        warn: (1.1, 3.0),
        extract: |m| {
            let (routed, forced) = m.routing();
            routed / forced
        },
    },
    Expectation {
        id: "ablation.bidirectional-groups",
        scenario: "ablations",
        description: "same-direction over opposite-direction sync-core group makespan",
        paper: "SIV-C: opposite ring directions share the full-duplex bus",
        pass: (1.8, 2.2),
        warn: (1.5, 3.0),
        extract: |m| {
            let (same, opposite) = m.bidir();
            same / opposite
        },
    },
    Expectation {
        id: "ablation.coherence-scaling",
        scenario: "ablations",
        description: "coherence protocol bytes per write round, 8 sharers over 2",
        paper: "SIII-D: invalidation traffic grows with sharer count",
        pass: (6.0, 8.0),
        warn: (4.0, 12.0),
        extract: |m| {
            let c = m.coherence();
            let first = c.first().expect("at least 2 sharers").1 as f64;
            let last = c.last().expect("at least 2 sharers").1 as f64;
            last / first
        },
    },
    Expectation {
        id: "ablation.ring-tree-crossover-kib",
        scenario: "ablations",
        description: "payload where the ring collective overtakes the tree on the CCI mesh (KiB)",
        paper: "SIV-C: bandwidth-optimal ring wins for large tensors",
        pass: (16.0, 64.0),
        warn: (8.0, 128.0),
        extract: |m| m.crossover_kib().unwrap_or(f64::NAN),
    },
    Expectation {
        id: "ablation.straggler-zero-jitter",
        scenario: "ablations",
        description: "overlapped sync mean wait with zero compute jitter (ms)",
        paper: "SII-B: waits come only from stragglers",
        pass: (0.0, 0.001),
        warn: (0.0, 0.01),
        extract: |m| m.straggler()[0].2.mean_wait.as_micros_f64() / 1000.0,
    },
    Expectation {
        id: "ablation.straggler-sigma04-wait-ms",
        scenario: "ablations",
        description: "overlapped sync mean wait at sigma=0.4 compute jitter (ms)",
        paper: "SII-B: fast workers wait on stragglers",
        pass: (15.0, 40.0),
        warn: (5.0, 80.0),
        extract: |m| m.straggler()[1].2.mean_wait.as_micros_f64() / 1000.0,
    },
    Expectation {
        id: "ablation.node-scaling-4node-gain",
        scenario: "ablations",
        description: "COARSE throughput advantage over AllReduce at 4 nodes",
        paper: "Fig. 16f trend: the advantage persists at scale",
        pass: (0.05, 0.20),
        warn: (0.0, 0.30),
        extract: |m| {
            let p = m.scaling().last().expect("4-node point");
            p.coarse_gain() - 1.0
        },
    },
    Expectation {
        id: "recovery.goodput",
        scenario: "recovery",
        description: "COARSE goodput under the reference multi-fault schedule (fig16d)",
        paper: "SIII-E: training continues through proxy failures",
        pass: (0.35, 0.60),
        warn: (0.20, 0.80),
        extract: |m| m.recovery().goodput(),
    },
    Expectation {
        id: "recovery.restores",
        scenario: "recovery",
        description: "pool-checkpoint restores forced by the two scheduled dropouts",
        paper: "SIII-E: a failed proxy's shards are recovered from pooled memory",
        pass: (1.5, 2.5),
        warn: (0.5, 3.5),
        extract: |m| m.recovery().faulty.restores as f64,
    },
    Expectation {
        id: "recovery.mttr-ms",
        scenario: "recovery",
        description: "mean time to restore after a hard proxy dropout (ms)",
        paper: "SIII-E: recovery is bounded by re-reading the image over CCI",
        pass: (20.0, 100.0),
        warn: (5.0, 500.0),
        extract: |m| m.recovery().faulty.mttr.as_secs_f64() * 1e3,
    },
    Expectation {
        id: "recovery.checkpoint-overhead",
        scenario: "recovery",
        description: "fault-free wall-time overhead of checkpointing every 2 iterations",
        paper: "SIII-E: pooled-memory checkpoints are cheap enough to take often",
        pass: (0.0, 0.10),
        warn: (0.0, 0.25),
        extract: |m| m.recovery().checkpoint_overhead(),
    },
    Expectation {
        id: "recovery.pool-vs-disk",
        scenario: "recovery",
        description: "pool-checkpoint cost as a fraction of the disk baseline",
        paper: "SIII-E: sealed pushes into the pool vs a 1.5 GiB/s disk write",
        pass: (0.0, 0.20),
        warn: (0.0, 0.50),
        extract: |m| m.recovery().pool_vs_disk(),
    },
    Expectation {
        id: "recovery.oracles-quiet",
        scenario: "recovery",
        description: "membership monotone and re-converged after the last fault clears",
        paper: "invariant: recovery must terminate and epochs never regress",
        pass: TRUE_BAND,
        warn: TRUE_BAND,
        extract: |m| bool_metric(m.recovery().violations.is_empty()),
    },
    Expectation {
        id: "capacity.allreduce-max-batch",
        scenario: "capacity",
        description: "largest GPT-2 XL batch with everything on a 16 GiB GPU",
        paper: "SVI: the model does not fit at all without offload",
        pass: (-0.5, 0.5),
        warn: (-0.5, 0.5),
        extract: |m| m.capacity().allreduce_max_batch as f64,
    },
    Expectation {
        id: "capacity.coarse-max-batch",
        scenario: "capacity",
        description: "largest GPT-2 XL batch with COARSE's offloaded residency",
        paper: "SVI: CCI memory devices enable larger models",
        pass: (0.5, 8.5),
        warn: (0.5, 16.5),
        extract: |m| m.capacity().coarse_max_batch as f64,
    },
    Expectation {
        id: "capacity.coarse-b1-utilization",
        scenario: "capacity",
        description: "GPU compute utilization training GPT-2 XL at batch 1 under COARSE",
        paper: "SVI: offloaded training remains compute-bound",
        pass: (0.3, 1.0),
        warn: (0.2, 1.0),
        extract: |m| m.capacity().coarse_b1.gpu_utilization(),
    },
];

/// One evaluated expectation: the registry row plus its measured value.
pub struct Evaluated<'a> {
    /// The registry row.
    pub expectation: &'a Expectation,
    /// The extracted measurement.
    pub measured: f64,
    /// Pass / warn / fail.
    pub verdict: Verdict,
}

/// Scenario groups present in the registry, in first-appearance order.
pub fn scenarios() -> Vec<&'static str> {
    let mut out: Vec<&'static str> = Vec::new();
    for e in REGISTRY {
        if !out.contains(&e.scenario) {
            out.push(e.scenario);
        }
    }
    out
}

/// A fully evaluated scorecard over (a filtered subset of) the registry.
pub struct Scorecard<'a> {
    /// Evaluated rows, in registry order.
    pub rows: Vec<Evaluated<'a>>,
}

impl Scorecard<'_> {
    /// Evaluates the registry. `scenario` filters to one group; `None`
    /// evaluates everything.
    ///
    /// # Panics
    ///
    /// Panics if `scenario` names an unknown group (the caller should have
    /// validated it against [`scenarios`]).
    pub fn evaluate(scenario: Option<&str>) -> Scorecard<'static> {
        if let Some(s) = scenario {
            assert!(
                scenarios().contains(&s),
                "unknown scenario '{s}'; known: {}",
                scenarios().join(" ")
            );
        }
        let m = Measurements::new();
        let rows = REGISTRY
            .iter()
            .filter(|e| scenario.is_none_or(|s| e.scenario == s))
            .map(|e| e.evaluate(&m))
            .collect();
        Scorecard { rows }
    }

    /// The worst verdict on the card (empty card passes).
    pub fn worst(&self) -> Verdict {
        self.rows
            .iter()
            .map(|r| r.verdict)
            .max()
            .unwrap_or(Verdict::Pass)
    }

    /// `(pass, warn, fail)` counts.
    pub fn counts(&self) -> (usize, usize, usize) {
        let tally = |v: Verdict| self.rows.iter().filter(|r| r.verdict == v).count();
        (
            tally(Verdict::Pass),
            tally(Verdict::Warn),
            tally(Verdict::Fail),
        )
    }

    /// Renders the scorecard as an aligned text table with a verdict
    /// summary line.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<4} {:<42} {:>12} {:>19}  paper",
            "", "expectation", "measured", "pass band"
        );
        for r in &self.rows {
            let band = format!(
                "[{}, {}]",
                fmt_bound(r.expectation.pass.0),
                fmt_bound(r.expectation.pass.1)
            );
            let _ = writeln!(
                out,
                "{:<4} {:<42} {:>12} {:>19}  {}",
                r.verdict.label(),
                r.expectation.id,
                fmt_value(r.measured),
                band,
                r.expectation.paper
            );
        }
        let (pass, warn, fail) = self.counts();
        let _ = writeln!(
            out,
            "\n{} expectations: {pass} pass, {warn} warn, {fail} fail — verdict: {}",
            self.rows.len(),
            self.worst().label()
        );
        out
    }

    /// Renders the scorecard as a [`SCORECARD_SCHEMA`] JSON document with a
    /// fixed key order (byte-deterministic for a given simulator build).
    pub fn to_json(&self) -> JsonValue {
        let (pass, warn, fail) = self.counts();
        let mut rows = Vec::new();
        for r in &self.rows {
            let e = r.expectation;
            rows.push(
                JsonValue::object()
                    .with("id", JsonValue::str(e.id))
                    .with("scenario", JsonValue::str(e.scenario))
                    .with("description", JsonValue::str(e.description))
                    .with("paper", JsonValue::str(e.paper))
                    .with("measured", JsonValue::num(r.measured))
                    .with(
                        "pass_band",
                        JsonValue::Array(vec![JsonValue::num(e.pass.0), JsonValue::num(e.pass.1)]),
                    )
                    .with(
                        "warn_band",
                        JsonValue::Array(vec![JsonValue::num(e.warn.0), JsonValue::num(e.warn.1)]),
                    )
                    .with("verdict", JsonValue::str(r.verdict.label())),
            );
        }
        JsonValue::object()
            .with("schema", JsonValue::str(SCORECARD_SCHEMA))
            .with("verdict", JsonValue::str(self.worst().label()))
            .with(
                "counts",
                JsonValue::object()
                    .with("pass", JsonValue::int(pass as u64))
                    .with("warn", JsonValue::int(warn as u64))
                    .with("fail", JsonValue::int(fail as u64)),
            )
            .with("expectations", JsonValue::Array(rows))
    }
}

fn fmt_value(v: f64) -> String {
    if !v.is_finite() {
        return format!("{v}");
    }
    if v.abs() >= 100.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

fn fmt_bound(v: f64) -> String {
    if v == f64::INFINITY {
        "inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-inf".to_string()
    } else if v.abs() >= 100.0 {
        format!("{v:.0}")
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_unique_and_well_formed() {
        let mut seen = std::collections::BTreeSet::new();
        for e in REGISTRY {
            assert!(seen.insert(e.id), "duplicate id {}", e.id);
            assert!(
                e.id.contains('.'),
                "{}: id must be <experiment>.<metric>",
                e.id
            );
            assert!(e.pass.0 <= e.pass.1, "{}: inverted pass band", e.id);
            assert!(
                e.warn.0 <= e.pass.0 && e.pass.1 <= e.warn.1,
                "{}: warn band must contain pass band",
                e.id
            );
        }
    }

    #[test]
    fn registry_covers_every_design_scenario() {
        let have = scenarios();
        for required in [
            "table1",
            "fig2",
            "fig3",
            "fig8",
            "fig9",
            "fig10",
            "fig13",
            "fig14",
            "fig15",
            "fig16",
            "fig17",
            "ablations",
            "capacity",
        ] {
            assert!(have.contains(&required), "missing scenario {required}");
        }
    }

    #[test]
    fn verdict_bands_classify_correctly() {
        let e = &REGISTRY[1]; // fig2.max-comm-fraction: pass (0.70, 1.00), warn (0.60, 1.00)
        assert_eq!(e.id, "fig2.max-comm-fraction");
        assert!(contains(e.pass, 0.75));
        assert!(!contains(e.pass, 0.65) && contains(e.warn, 0.65));
        assert!(!contains(e.warn, 0.55));
        assert!(!contains(e.warn, f64::NAN));
    }

    #[test]
    fn scorecard_json_matches_text_counts() {
        let card = Scorecard::evaluate(Some("fig3"));
        assert_eq!(card.rows.len(), 2);
        let json = card.to_json().render();
        assert!(json.contains(SCORECARD_SCHEMA));
        let text = card.render();
        assert!(text.contains("fig3.read-speedup"));
    }
}
