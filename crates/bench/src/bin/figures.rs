//! Regenerates every table and figure of the COARSE paper's evaluation,
//! validates them against the paper-expectation registry, and produces
//! machine-readable fidelity and perf artifacts.
//!
//! ```text
//! cargo run --release -p coarse-bench --bin figures -- list
//! cargo run --release -p coarse-bench --bin figures -- fig16
//! cargo run --release -p coarse-bench --bin figures -- validate all
//! cargo run --release -p coarse-bench --bin figures -- report --json out.json
//! cargo run --release -p coarse-bench --bin figures -- bench ci
//! ```

use coarse_bench::{expectations, mechanisms, micro, selfbench, training};

/// With `--features prof-alloc`, every allocation this binary makes is
/// counted and attributed to the profiling region open at the time; the
/// `alloc` section of `profile-<scenario>.json` is then populated.
#[cfg(feature = "prof-alloc")]
#[global_allocator]
static ALLOC: coarse_simcore::prof::alloc_counter::CountingAlloc =
    coarse_simcore::prof::alloc_counter::CountingAlloc;

fn hr(title: &str) {
    println!("\n================================================================");
    println!("{title}");
    println!("================================================================");
}

fn table1() {
    hr("TABLE I — Evaluated machine instances");
    println!(
        "{:<12} {:<6} {:>5} {:>8} {:>9} {:>6} {:>7}",
        "machine", "GPU", "GPUs", "workers", "mem devs", "p2p", "NVLink"
    );
    for r in training::table1() {
        println!(
            "{:<12} {:<6} {:>5} {:>8} {:>9} {:>6} {:>7}",
            r.name, r.sku, r.gpus, r.workers, r.mem_devices, r.p2p, r.nvlink
        );
    }
    println!("(paper: half of each machine's GPUs emulate CCI memory devices)");
}

fn fig2() {
    hr("FIG 2 — Communication overhead of centralized parameter-server training");
    println!("paper: communication blocks up to 76% of training time (§II-B)");
    println!(
        "{:<12} {:<12} {:>6} {:>16}",
        "machine", "model", "batch", "comm fraction"
    );
    for r in training::fig2() {
        println!(
            "{:<12} {:<12} {:>6} {:>15.1}%",
            r.machine,
            r.model,
            r.batch,
            r.comm_fraction * 100.0
        );
    }
}

fn fig3() {
    hr("FIG 3 — CCI prototype peer-to-peer bandwidth (64 MiB transfers)");
    println!("paper: GPU Direct gives 17x read / 4x write over CCI load-store");
    println!("{:<14} {:>12} {:>12}", "mode", "read GiB/s", "write GiB/s");
    let f = micro::fig3();
    for (label, r, w) in &f.rows {
        println!("{label:<14} {r:>12.3} {w:>12.3}");
    }
    println!(
        "measured speedups: read {:.1}x (paper 17x), write {:.1}x (paper 4x)",
        f.read_speedup, f.write_speedup
    );
}

fn fig8() {
    hr("FIG 8 — PCIe device-to-device bidirectional bandwidth matrices (GiB/s)");
    for panel in micro::fig8_all() {
        println!("\n-- {} --", panel.machine);
        print!("{:>6}", "");
        for j in 0..panel.matrix.len() {
            print!("{:>7}", format!("gpu{j}"));
        }
        println!();
        for (i, row) in panel.matrix.iter().enumerate() {
            print!("{:>6}", format!("gpu{i}"));
            for v in row {
                print!("{v:>7.1}");
            }
            println!();
        }
        println!(
            "local pair: {:.1} GiB/s unidirectional, {:.1} GiB/s bidirectional",
            panel.local_uni_gib, panel.local_bidir_gib
        );
    }
    println!("\n(paper: V100 shows anti-locality — remote > local; P100 shows locality;");
    println!(" §III-E quotes 13 GiB/s uni / 25 GiB/s bidir for an SDSC local pair)");
}

fn fig9() {
    hr("FIG 9 — FIFO vs partitioned pipelined synchronization");
    let f = mechanisms::fig9();
    println!("two unequal tensors (24 MiB + 8 MiB), client to same-switch proxy:");
    println!("  FIFO (whole tensors):   {}", f.fifo_makespan);
    println!("  partitioned (2 MiB):    {}", f.partitioned_makespan);
    println!("  speedup:                {:.2}x", f.speedup);
    println!("(paper: partitioning fills both bus directions without idle gaps)");
}

fn fig10() {
    hr("FIG 10 — Deadlock avoidance: FCFS vs queue-based proxy scheduling");
    let f = mechanisms::fig10();
    println!(
        "FCFS:        completed {:?}, deadlocked {:?}",
        f.fcfs.completed, f.fcfs.deadlocked
    );
    println!(
        "queue-based: completed {:?}, deadlocked {:?}",
        f.queue_based.completed, f.queue_based.deadlocked
    );
    println!("(paper: FCFS deadlocks on the crossed tensor-1/tensor-2 scenario;");
    println!(" per-client queues synchronize all queues concurrently)");
}

fn fig13() {
    hr("FIG 13 — CCI prototype bandwidth vs access size");
    let f = micro::fig13();
    print!("{:>10}", "size");
    for (label, _, _) in &f.curves {
        print!(
            " {:>16} {:>8}",
            format!("{label} rd"),
            format!("{label} wr")
        );
    }
    println!();
    for (i, s) in f.sizes.iter().enumerate() {
        print!("{:>10}", s.to_string());
        for (_, read, write) in &f.curves {
            print!(" {:>16.3} {:>8.3}", read[i], write[i]);
        }
        println!();
    }
    println!("(paper: CCI flat; GPU Indirect bounded by CCI; GPU Direct 9-17x read,");
    println!(" 1.25-4x write)");
}

fn fig14() {
    hr("FIG 14 — Prototype DMA bandwidth vs access size");
    let f = micro::fig14();
    println!("{:>10} {:>12} {:>12}", "size", "read GiB/s", "write GiB/s");
    for (s, r, w) in &f.points {
        println!("{:>10} {r:>12.3} {w:>12.3}", s.to_string());
    }
    println!(
        "saturation (>=99% of peak) at {} — paper: 2 MiB",
        f.saturation_size
    );
}

fn fig15() {
    hr("FIG 15 — Client-to-proxy profiling (routing-table inputs)");
    for f in micro::fig15_all() {
        println!("\n-- {} (client = worker 0) --", f.machine);
        println!(
            "  local proxy:       latency {} bandwidth {:>6.2} GiB/s",
            f.local.latency,
            f.local.bandwidth / (1u64 << 30) as f64
        );
        println!(
            "  best remote proxy: latency {} bandwidth {:>6.2} GiB/s",
            f.best_remote.latency,
            f.best_remote.bandwidth / (1u64 << 30) as f64
        );
        println!("  bandwidth sweep (GiB/s):");
        println!("  {:>10} {:>8} {:>8}", "size", "local", "remote");
        for ((s, l), (_, r)) in f.local_sweep.iter().zip(&f.remote_sweep) {
            println!("  {:>10} {l:>8.2} {r:>8.2}", s.to_string());
        }
    }
}

fn fig16() {
    hr("FIG 16 — Training speedup (vs DENSE; panels e-f vs AllReduce)");
    println!(
        "{:<12} {:<12} {:<12} {:>6} {:>10} {:>10}",
        "panel", "machine", "model", "batch", "AllReduce", "COARSE"
    );
    for r in training::fig16_single_node() {
        println!(
            "{:<12} {:<12} {:<12} {:>6} {:>9.1}x {:>9.1}x",
            r.id,
            r.machine,
            r.model,
            r.batch,
            r.allreduce_speedup(),
            r.coarse_speedup()
        );
    }
    println!("(paper bands: a 3.3-4.3x; b 11.3-13.3x; c ~3.4x; d 10.8-13.8x)");

    let e = training::fig16e();
    println!("\n-- fig16e: single-node batch-size experiment (BERT-Large, V100) --");
    println!(
        "  AllReduce b2: {:>8.1} samples/s (iter {})",
        e.allreduce_b2.throughput, e.allreduce_b2.iteration_time
    );
    println!(
        "  COARSE    b2: {:>8.1} samples/s (iter {})",
        e.coarse_b2.throughput, e.coarse_b2.iteration_time
    );
    println!(
        "  COARSE    b4: {:>8.1} samples/s (iter {})",
        e.coarse_b4.throughput, e.coarse_b4.iteration_time
    );
    println!("  AllReduce b4 fits in 16 GiB: {}", e.allreduce_b4_fits);
    println!(
        "  COARSE(b4) over AllReduce(b2): +{:.1}% — paper: +48.3%",
        (e.speedup - 1.0) * 100.0
    );

    let f = training::fig16f();
    println!("\n-- fig16f: multi-node (2x AWS V100, 25 Gbit/s network) --");
    println!(
        "  AllReduce 2-node b2:  {:>8.1} samples/s (iter {})",
        f.allreduce_2node.throughput, f.allreduce_2node.iteration_time
    );
    println!(
        "  COARSE    2-node b2:  {:>8.1} samples/s (iter {})",
        f.coarse_2node.throughput, f.coarse_2node.iteration_time
    );
    println!(
        "  COARSE    1-node b4:  {:>8.1} samples/s (iter {})",
        f.coarse_1node_b4.throughput, f.coarse_1node_b4.iteration_time
    );
    println!(
        "  COARSE(2n) over AllReduce(2n): +{:.1}% — paper: up to +42.7%",
        (f.speedup_2node - 1.0) * 100.0
    );
    println!(
        "  COARSE(1n,b4) over AllReduce(2n): +{:.1}% — paper: +38.6%",
        (f.speedup_1node_b4 - 1.0) * 100.0
    );
}

fn fig17() {
    hr("FIG 17 — Blocked communication time (normalized to DENSE)");
    println!(
        "{:<12} {:<12} {:<12} {:>10} {:>10} {:>10}",
        "panel", "machine", "model", "DENSE", "AllReduce", "COARSE"
    );
    for r in training::fig16_single_node() {
        println!(
            "{:<12} {:<12} {:<12} {:>9.0}% {:>9.1}% {:>9.1}%",
            r.id,
            r.machine,
            r.model,
            100.0,
            r.normalized_blocked(&r.allreduce) * 100.0,
            r.normalized_blocked(&r.coarse) * 100.0
        );
    }
    println!("(paper: AllReduce and COARSE reduce blocked communication to <10% of the");
    println!(" naive CCI parameter server; COARSE beats AllReduce on P100/V100 and");
    println!(" trails slightly on the p2p-less T4)");

    // Panels e-f: blocked communication normalized to AllReduce.
    let f = training::fig16f();
    let e = training::fig16e();
    println!(
        "
-- fig17e/f: normalized to AllReduce --"
    );
    println!(
        "single node (b4 COARSE vs b2 AllReduce): COARSE blocked = {:.0}% of AllReduce",
        e.coarse_b4.blocked_comm.as_secs_f64() / e.allreduce_b2.blocked_comm.as_secs_f64() * 100.0
    );
    println!(
        "two nodes: COARSE blocked = {:.0}% of AllReduce (paper: −23…−46%)",
        f.coarse_2node.blocked_comm.as_secs_f64() / f.allreduce_2node.blocked_comm.as_secs_f64()
            * 100.0
    );
}

fn ablations() {
    hr("ABLATIONS");
    let u = mechanisms::ablation_ring_bandwidth_utilization();
    println!(
        "ring AllReduce bandwidth utilization (V100 PCIe, vs full-duplex): {:.0}% — paper: as low as 34% on DGX-1",
        u * 100.0
    );
    let (routed, forced) = mechanisms::ablation_routing();
    println!(
        "tensor routing on V100: routed {routed:.1} GiB/s vs forced-local {forced:.1} GiB/s ({:.2}x)",
        routed / forced
    );
    let (sweep, opt) = mechanisms::ablation_dualsync();
    println!("dual-sync estimate sweep (m -> T_train):");
    for p in sweep.iter().step_by(4) {
        println!(
            "  m = {:>10}  T_train = {}",
            p.proxy_bytes.to_string(),
            p.estimate
        );
    }
    println!(
        "  optimizer choice: m = {} (T_train = {})",
        opt.proxy_bytes, opt.estimate
    );
    let (same, opposite) = mechanisms::ablation_bidirectional_groups();
    println!(
        "sync-core group directions: same {} vs opposite {} ({:.2}x)",
        same,
        opposite,
        same.as_secs_f64() / opposite.as_secs_f64()
    );
    println!("coherence protocol bytes per write round (4 MiB region):");
    for (n, bytes) in mechanisms::ablation_coherence_scaling(8) {
        println!("  {n} sharers: {bytes} bytes");
    }
    if let Some(c) = mechanisms::ablation_ring_tree_crossover() {
        println!("ring-vs-tree collective crossover on the CCI mesh: {c}");
    }
    println!(
        "
straggler sensitivity (50 iters, 245 ms compute, jitter sigma sweep):"
    );
    println!(
        "{:>8} {:>16} {:>16} {:>12} {:>12}",
        "sigma", "barrier wait", "overlap wait", "barrier util", "overlap util"
    );
    for sigma in [0.0f64, 0.1, 0.2, 0.4] {
        let (b, o) = coarse_trainsim::compare_straggler(4, sigma);
        println!(
            "{sigma:>8.1} {:>16} {:>16} {:>11.0}% {:>11.0}%",
            b.mean_wait.to_string(),
            o.mean_wait.to_string(),
            b.utilization * 100.0,
            o.utilization * 100.0
        );
    }
    println!(
        "
node scaling (BERT-Large b2, 25 Gbit/s network):"
    );
    println!(
        "{:>6} {:>18} {:>18} {:>14}",
        "nodes", "AllReduce iter", "COARSE iter", "COARSE gain"
    );
    for p in coarse_trainsim::node_scaling(&coarse_models::zoo::bert_large(), 2, &[1, 2, 4]) {
        println!(
            "{:>6} {:>18} {:>18} {:>13.1}%",
            p.nodes,
            p.allreduce.iteration_time.to_string(),
            p.coarse.iteration_time.to_string(),
            (p.coarse_gain() - 1.0) * 100.0
        );
    }
}

fn timeline() {
    hr("TIMELINE — one steady-state COARSE iteration (BERT-Large, AWS V100)");
    use coarse_fabric::machines::{aws_v100, PartitionScheme};
    let machine = aws_v100();
    let part = machine.partition(PartitionScheme::OneToOne);
    let trace =
        coarse_trainsim::trace_coarse(&machine, &part, &coarse_models::zoo::bert_large(), 2);
    print!("{}", trace.render_gantt(76));
    println!("(the overlap structure behind Fig. 17d: pushes and proxy collectives ride");
    println!(" inside the backward window; only the dual-sync GPU ring and the final");
    println!(" pulls block the next iteration)");
}

fn capacity() {
    hr("EXTENSION — the capacity wall (GPT-2 XL, 1.5B params, 16 GiB GPUs)");
    let c = training::capacity_wall();
    println!(
        "max feasible per-GPU batch, everything on GPU:  {}",
        c.allreduce_max_batch
    );
    println!(
        "max feasible per-GPU batch, COARSE offload:     {}",
        c.coarse_max_batch
    );
    println!(
        "COARSE batch 1: iter {} | blocked {} | util {:.0}% | {:.1} samples/s",
        c.coarse_b1.iteration_time,
        c.coarse_b1.blocked_comm,
        c.coarse_b1.gpu_utilization() * 100.0,
        c.coarse_b1.throughput
    );
    println!("(§VI: \"COARSE leverages CCI memory devices to enable larger models");
    println!(" to be trained\" — at 1.5B parameters only the offloaded residency fits)");
}

/// `figures -- trace <scenario>`: records a fully traced COARSE run and
/// writes `trace-<scenario>.json` (Chrome trace-event format, loadable in
/// Perfetto or `chrome://tracing`) plus `trace-<scenario>.txt` (the text
/// summary, also printed).
fn trace_scenario(scenario: &str) {
    use coarse_fabric::machines::{aws_v100, sdsc_p100, PartitionScheme};
    let (machine, model, batch) = match scenario {
        "resnet50-coarse" => (aws_v100(), coarse_models::zoo::resnet50(), 64u32),
        "bert-coarse" => (aws_v100(), coarse_models::zoo::bert_large(), 2),
        "bert-p100-coarse" => (sdsc_p100(), coarse_models::zoo::bert_large(), 2),
        other => {
            eprintln!(
                "unknown trace scenario '{other}'; expected one of: \
                 resnet50-coarse bert-coarse bert-p100-coarse"
            );
            std::process::exit(2);
        }
    };
    hr(&format!(
        "TRACE — {} ({}, batch {batch}, 3 iterations)",
        scenario,
        machine.name()
    ));
    let part = machine.partition(PartitionScheme::OneToOne);
    let (result, trace) = coarse_trainsim::record_coarse_trace(&machine, &part, &model, batch, 3);
    println!(
        "iteration {} | blocked {} | {:.1} samples/s",
        result.iteration_time, result.blocked_comm, result.throughput
    );
    let summary = coarse_trainsim::summary_table(&trace, 10);
    print!("\n{summary}");
    let json_path = format!("trace-{scenario}.json");
    let txt_path = format!("trace-{scenario}.txt");
    write_artifact(&json_path, &coarse_trainsim::chrome_trace_json(&trace));
    write_artifact(&txt_path, &summary);
    println!("\nwrote {json_path} (open in Perfetto / chrome://tracing) and {txt_path}");
}

/// Every figure generator, in paper order.
const FIGURES: &[(&str, fn())] = &[
    ("table1", table1),
    ("fig2", fig2),
    ("fig3", fig3),
    ("fig8", fig8),
    ("fig9", fig9),
    ("fig10", fig10),
    ("fig13", fig13),
    ("fig14", fig14),
    ("fig15", fig15),
    ("fig16", fig16),
    ("fig17", fig17),
    ("ablations", ablations),
    ("capacity", capacity),
    ("timeline", timeline),
];

const TRACE_SCENARIOS: &str = "resnet50-coarse bert-coarse bert-p100-coarse";

fn usage() {
    let figures: Vec<&str> = FIGURES.iter().map(|(n, _)| *n).collect();
    eprintln!(
        "usage: figures -- <subcommand>\n\
         \n\
         subcommands:\n\
         \x20 list                     list subcommands, figures, and scenarios\n\
         \x20 all                      regenerate every figure\n\
         \x20 <figure>                 one of: {}\n\
         \x20 validate [scenario|all]  score the simulator against the paper-expectation\n\
         \x20                          registry (exit 1 on any FAIL verdict)\n\
         \x20 report [scenario] [--json <path>]\n\
         \x20                          emit the fidelity report (scorecard + per-panel\n\
         \x20                          run reports) as versioned JSON\n\
         \x20 bench [label] [--baseline <file>]\n\
         \x20                          run the perf self-benchmark and write\n\
         \x20                          BENCH_<label>.json (default label: local);\n\
         \x20                          with --baseline, diff against a committed\n\
         \x20                          BENCH artifact — wall-clock drift warns,\n\
         \x20                          deterministic drift exits 1\n\
         \x20 profile [scenario]       run the self-profiling harness twice over a\n\
         \x20                          fig16 preset (default fig16d), verify the\n\
         \x20                          deterministic section is byte-identical, and\n\
         \x20                          write profile-<scenario>.json plus the\n\
         \x20                          collapsed-stack profile-<scenario>.folded\n\
         \x20 explain [scenario]       extract the critical path of a fig16 preset\n\
         \x20                          (default fig16d) under both COARSE and DENSE,\n\
         \x20                          print the per-class blame split, verify the\n\
         \x20                          report is byte-identical across two runs, and\n\
         \x20                          write explain-<scenario>.json plus the\n\
         \x20                          critical-path overlay explain-<scenario>.trace.json\n\
         \x20 lint [--json [path]]     run the simlint determinism & simulation-safety\n\
         \x20      [--baseline <file>] analyzer over the workspace sources; exit 1 on\n\
         \x20                          any un-waived diagnostic (default JSON path:\n\
         \x20                          lint-report.json); with --baseline, fail only\n\
         \x20                          on findings absent from the given earlier report\n\
         \x20 trace [scenario]         record a traced COARSE run; scenarios:\n\
         \x20                          {TRACE_SCENARIOS}\n\
         \x20 faults [scenario]        run a seeded fault-injection scenario over the\n\
         \x20                          fig16d panel and write fault-report-<scenario>.json;\n\
         \x20                          scenarios: {FAULT_SCENARIOS}\n\
         \x20 recover [preset]         run the recovery harness (reference multi-fault\n\
         \x20                          schedule, pool checkpoints, oracle battery) over\n\
         \x20                          a fig16 preset (default fig16d), verify two runs\n\
         \x20                          render byte-identical reports, and write\n\
         \x20                          recover-<preset>.json; exit 1 on any violation\n\
         \x20 recover sweep [preset]   same, across checkpoint intervals; writes the\n\
         \x20                          cost/recovery matrix recover-sweep-<preset>.json\n\
         \x20 chaos soak [cases]       randomized fault-schedule search with runtime\n\
         \x20                          oracles armed (default 500 cases); failures are\n\
         \x20                          shrunk and written as chaos-repro-<hash>.json\n\
         \x20 chaos run <preset> [seed]  one seeded chaos case over a fig16 preset\n\
         \x20 chaos replay <path>      re-run a chaos repro and verify it still fails\n\
         \x20                          the same way\n\
         \x20 chaos selftest           prove the pipeline catches a sabotaged retry\n\
         \x20                          order and shrinks it to <= 3 fault events",
        figures.join(" ")
    );
}

fn list() {
    println!("figures (regenerators, paper order):");
    for (name, _) in FIGURES {
        println!("  {name}");
    }
    println!("\nvalidate / report scenarios:");
    for s in expectations::scenarios() {
        let n = expectations::REGISTRY
            .iter()
            .filter(|e| e.scenario == s)
            .count();
        println!("  {s:<12} {n} expectation(s)");
    }
    println!("\ntrace scenarios:");
    for s in TRACE_SCENARIOS.split(' ') {
        println!("  {s}");
    }
    println!("\nfault scenarios:");
    for s in FAULT_SCENARIOS.split(' ') {
        println!("  {s}");
    }
    println!("\nchaos modes:");
    for s in ["soak", "run", "replay", "selftest"] {
        println!("  {s}");
    }
    println!("\nrecover presets (plus 'sweep <preset>'):");
    for s in coarse_trainsim::Scenario::presets() {
        println!("  {s}");
    }
    println!("\nprofile scenarios:");
    for s in coarse_trainsim::Scenario::presets() {
        println!("  {s}");
    }
    println!("\nlint rules:");
    for r in coarse_simlint::rules::RULES {
        println!("  {}", r.id);
    }
}

/// `figures -- validate [scenario|all]`: evaluates the expectation registry
/// and prints the fidelity scorecard. Exits 1 if any expectation fails.
fn validate(scenario: &str) {
    let filter = if scenario == "all" {
        None
    } else {
        if !expectations::scenarios().contains(&scenario) {
            eprintln!(
                "unknown scenario '{scenario}'; expected 'all' or one of: {}",
                expectations::scenarios().join(" ")
            );
            std::process::exit(2);
        }
        Some(scenario)
    };
    hr(&format!("FIDELITY SCORECARD — {scenario}"));
    let card = expectations::Scorecard::evaluate(filter);
    print!("{}", card.render());
    if card.worst() == expectations::Verdict::Fail {
        std::process::exit(1);
    }
}

/// The Fig. 16 single-node panels as `RunReport` inputs — one
/// [`Scenario`](coarse_trainsim::Scenario) preset per panel.
fn panel_reports() -> Vec<coarse_trainsim::RunReport> {
    coarse_trainsim::Scenario::presets()
        .into_iter()
        .map(|name| coarse_trainsim::Scenario::preset(name).report())
        .collect()
}

/// Schema tag for the combined scorecard + run-report document.
const FIDELITY_SCHEMA: &str = "coarse.fidelity-report/v1";

/// `figures -- report [scenario] [--json <path>]`: the scorecard plus the
/// per-panel run reports as one versioned, byte-deterministic document.
fn report(scenario: Option<&str>, json_path: Option<&str>) {
    use coarse_simcore::json::JsonValue;
    if let Some(s) = scenario {
        if !expectations::scenarios().contains(&s) {
            eprintln!(
                "unknown scenario '{s}'; expected one of: {}",
                expectations::scenarios().join(" ")
            );
            std::process::exit(2);
        }
    }
    let card = expectations::Scorecard::evaluate(scenario);
    let with_panels = scenario.is_none_or(|s| s == "fig16" || s == "fig17");
    let runs: Vec<JsonValue> = if with_panels {
        panel_reports().iter().map(|r| r.to_json()).collect()
    } else {
        Vec::new()
    };
    let doc = JsonValue::object()
        .with("schema", JsonValue::str(FIDELITY_SCHEMA))
        .with("scorecard", card.to_json())
        .with("run_reports", JsonValue::Array(runs));
    let mut rendered = doc.render_pretty();
    rendered.push('\n');
    match json_path {
        Some(path) => {
            write_artifact(path, &rendered);
            print!("{}", card.render());
            println!("wrote {path}");
        }
        None => print!("{rendered}"),
    }
}

const FAULT_SCENARIOS: &str = "proxy-dropout link-degrade flaky-cci matrix";

/// Seed for the CI fault suite: fixed so two runs of the same binary
/// produce byte-identical artifacts.
const FAULT_SEED: u64 = 0xC0A2_5E01;

/// Builds the named seeded fault scenario over the `fig16d` panel
/// (BERT-Large on AWS V100) and returns it ready to run.
fn build_fault_scenario(name: &str) -> coarse_trainsim::Scenario {
    use coarse_simcore::faults::FaultPlan;
    use coarse_simcore::time::{SimDuration, SimTime};
    let base = coarse_trainsim::Scenario::preset("fig16d");
    let part = coarse_fabric::machines::aws_v100()
        .partition(coarse_fabric::machines::PartitionScheme::OneToOne);
    let devices: Vec<u32> = part.mem_devices.iter().map(|d| d.index() as u32).collect();
    let window = (
        SimTime::ZERO + SimDuration::from_millis(1),
        SimTime::ZERO + SimDuration::from_millis(500),
    );
    let plan = match name {
        // One seeded memory device drops out mid-run; COARSE must fail
        // over and finish on the survivors.
        "proxy-dropout" => FaultPlan::seeded_dropout(FAULT_SEED, &devices, window.0, window.1),
        // Every CCI-ring neighbor pair degrades by a seeded 1.5-4x factor
        // over a seeded sub-window. The window spans the whole 3-iteration
        // run (~900ms) so the steady-state (last) iteration is hit too —
        // a window that closes before the final iteration leaves the
        // reported period untouched.
        "link-degrade" => {
            let pairs: Vec<(u32, u32)> = (0..devices.len())
                .map(|i| (devices[i], devices[(i + 1) % devices.len()]))
                .collect();
            FaultPlan::seeded_degradation(
                FAULT_SEED,
                &pairs,
                window.0,
                SimTime::ZERO + SimDuration::from_millis(2_000),
                1.5,
                4.0,
            )
        }
        // Transient CCI transfer errors on every memory device: pushes
        // retry with exponential backoff.
        "flaky-cci" => {
            let mut plan = FaultPlan::new(FAULT_SEED);
            for &d in &devices {
                plan = plan.corrupt_transfers(d, SimTime::ZERO, SimTime::MAX, 200_000);
            }
            plan
        }
        other => {
            eprintln!("unknown fault scenario '{other}'; expected one of: {FAULT_SCENARIOS}");
            std::process::exit(2);
        }
    };
    base.faults(plan)
}

/// `figures -- faults <scenario>`: runs a seeded fault-injection scenario
/// over the fig16d panel, prints the resilience accounting, verifies the
/// run is deterministic (two same-seed runs must render byte-identical
/// reports), and writes `fault-report-<scenario>.json`.
fn faults(scenario: &str) {
    let names: Vec<&str> = if scenario == "matrix" {
        FAULT_SCENARIOS
            .split(' ')
            .filter(|s| *s != "matrix")
            .collect()
    } else {
        vec![scenario]
    };
    for name in names {
        let s = build_fault_scenario(name);
        hr(&format!(
            "FAULT SUITE — {name} (fig16d, seed {FAULT_SEED:#x})"
        ));
        let report = s.report();
        let again = s.report();
        assert_eq!(
            report.render(),
            again.render(),
            "same-seed fault runs must be byte-identical"
        );
        let f = report
            .faults
            .as_ref()
            .expect("fault scenarios carry a resilience summary");
        println!("injected faults:   {}", f.injected);
        println!("push retries:      {}", f.retries);
        println!("proxy failovers:   {}", f.failovers);
        println!("degraded to GPU:   {}", f.degraded_to_gpu);
        println!("recovery time:     {}", f.recovery_time);
        let clean = report
            .scheme(coarse_trainsim::Scheme::Coarse)
            .result()
            .expect("fig16d COARSE fits");
        println!(
            "iteration time:    {} (clean: {})",
            f.coarse.iteration_time, clean.iteration_time
        );
        let path = format!("fault-report-{name}.json");
        write_artifact(&path, &report.render());
        println!("wrote {path} (determinism check: two same-seed runs matched)");
    }
}

fn bench(label: &str, baseline: Option<&str>) {
    hr(&format!("PERF SELF-BENCHMARK — {label}"));
    let path = match selfbench::write_report(label) {
        Ok(path) => path,
        Err(e) => {
            eprintln!("error: cannot write bench artifact: {e}");
            std::process::exit(1);
        }
    };
    println!("\nwrote {path}");
    if let Some(base_path) = baseline {
        let parse = |p: &str| {
            let text = std::fs::read_to_string(p).unwrap_or_else(|e| {
                eprintln!("error: cannot read {p}: {e}");
                std::process::exit(1);
            });
            coarse_simcore::json::JsonValue::parse(&text).unwrap_or_else(|e| {
                eprintln!("error: {p} is not valid JSON: {e}");
                std::process::exit(1);
            })
        };
        let current = parse(&path);
        let base = parse(base_path);
        let cmp = selfbench::compare_reports(&current, &base, selfbench::WALL_TOLERANCE);
        for w in &cmp.warnings {
            println!("warning: {w}");
        }
        for e in &cmp.errors {
            eprintln!("error: {e}");
        }
        if !cmp.passed() {
            eprintln!("baseline gate vs {base_path}: FAIL (deterministic drift)");
            std::process::exit(1);
        }
        println!(
            "baseline gate vs {base_path}: OK ({} advisory warning(s))",
            cmp.warnings.len()
        );
    }
}

/// `figures -- profile <scenario>`: runs the self-profiling harness twice,
/// asserts the deterministic section is byte-identical across the two runs,
/// and writes `profile-<scenario>.json` (the `coarse.profile-report/v1`
/// document) plus `profile-<scenario>.folded` (collapsed stacks for
/// flamegraph tooling). Exits 2 with usage on an unknown scenario name.
fn profile(name: &str) {
    use coarse_trainsim::{profile_preset, TrainError};
    hr(&format!("SELF-PROFILE — {name}"));
    // Warm-up run, discarded: first-touch lazy initialization (stdio
    // buffers, allocator pools) would otherwise show up as extra
    // allocations in the first profiled run under `prof-alloc`.
    let warmup = profile_preset(name);
    let run = match warmup.and(profile_preset(name)) {
        Ok(run) => run,
        Err(TrainError::UnknownPreset { .. }) => {
            eprintln!(
                "unknown profile scenario '{name}'; scenarios: {}\n",
                coarse_trainsim::Scenario::presets().join(" ")
            );
            usage();
            std::process::exit(2);
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    let again = profile_preset(name).expect("second profiled run of a known preset");
    let (det_a, det_b) = (
        run.deterministic_json().render(),
        again.deterministic_json().render(),
    );
    if det_a != det_b {
        eprintln!("error: deterministic profile sections differ between two runs of '{name}'");
        std::process::exit(1);
    }
    let q = run.profiler.queue_stats();
    println!(
        "kernel: {} events dispatched ({} scheduled, {} cancelled)",
        run.profiler.events_dispatched(),
        q.scheduled,
        q.cancelled
    );
    println!("{:<20} {:>12}", "region", "events");
    for &r in &coarse_simcore::prof::region::ALL {
        let events = run.profiler.region_events(r);
        if events > 0 {
            println!("{r:<20} {events:>12}");
        }
    }
    let mut doc = run.report_json().render_pretty();
    doc.push('\n');
    let json_path = format!("profile-{name}.json");
    write_artifact(&json_path, &doc);
    let folded_path = format!("profile-{name}.folded");
    write_artifact(&folded_path, &run.folded());
    println!("\nwrote {json_path}");
    println!("wrote {folded_path} (determinism check: two runs matched)");
}

/// `figures -- explain <scenario>`: runs the critical-path explanation
/// harness twice over a fig16 preset, asserts the
/// `coarse.explain-report/v1` document is byte-identical across the two
/// runs, prints the per-class blame split for both schemes, and writes
/// `explain-<scenario>.json` plus the Chrome-trace critical-path overlay
/// `explain-<scenario>.trace.json`. Exits 2 with usage on an unknown
/// scenario name.
fn explain(name: &str) {
    use coarse_simcore::critpath::class;
    use coarse_trainsim::{explain_preset, TrainError};
    hr(&format!("EXPLAIN — {name}"));
    let run = match explain_preset(name) {
        Ok(run) => run,
        Err(TrainError::UnknownPreset { .. }) => {
            eprintln!(
                "unknown explain scenario '{name}'; scenarios: {}\n",
                coarse_trainsim::Scenario::presets().join(" ")
            );
            usage();
            std::process::exit(2);
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    let again = explain_preset(name).expect("second explained run of a known preset");
    let (doc_a, doc_b) = (run.report_json().render(), again.report_json().render());
    if doc_a != doc_b {
        eprintln!("error: explain reports differ between two runs of '{name}'");
        std::process::exit(1);
    }
    println!("{:<16} {:>10} {:>10}", "class", "coarse", "dense");
    for c in class::ALL {
        let (fc, fd) = (
            run.coarse.explanation.fraction(c),
            run.dense.explanation.fraction(c),
        );
        if fc > 0.0 || fd > 0.0 {
            println!("{c:<16} {:>9.1}% {:>9.1}%", fc * 100.0, fd * 100.0);
        }
    }
    for (scheme, ex) in [
        ("coarse", &run.coarse.explanation),
        ("dense", &run.dense.explanation),
    ] {
        let dom = ex.dominant().unwrap_or("none");
        println!(
            "{scheme}: dominated by {dom} (eliminating it saves at most {:.1}%)",
            ex.speedup_bound(dom) * 100.0
        );
    }
    if let Some((link, util)) = run.coarse_links.first() {
        println!("busiest coarse link: {link} ({:.1}% busy)", util * 100.0);
    }
    let mut doc = run.report_json().render_pretty();
    doc.push('\n');
    let json_path = format!("explain-{name}.json");
    write_artifact(&json_path, &doc);
    let trace_path = format!("explain-{name}.trace.json");
    write_artifact(&trace_path, &run.overlay_trace_json().render());
    println!("\nwrote {json_path}");
    println!("wrote {trace_path} (determinism check: two runs matched)");
}

/// Iterations per recovery run: long enough for the reference schedule's
/// two dropouts to land in distinct checkpoint epochs, short enough for CI.
const RECOVER_ITERATIONS: u32 = 6;

/// Checkpoint cadence of the single-run mode (every other iteration).
const RECOVER_INTERVAL: u32 = 2;

/// Intervals the sweep mode measures (0 = never checkpoint).
const RECOVER_SWEEP_INTERVALS: &[u32] = &[0, 1, 2, 4];

/// Prints the headline numbers of one recovery report.
fn recover_summary(r: &coarse_trainsim::RecoveryReport) {
    println!(
        "schedule:          {} fault event(s); parameter image {}",
        r.schedule.specs().len(),
        r.image_bytes
    );
    println!("baseline wall:     {}", r.baseline_wall);
    println!(
        "checkpointed wall: {} ({} checkpoint(s), +{:.2}% overhead)",
        r.checkpointed_wall,
        r.checkpoints,
        r.checkpoint_overhead() * 100.0
    );
    println!(
        "pool vs disk:      {} vs {} per checkpoint ({:.1}% of disk)",
        r.pool_checkpoint_mean(),
        r.disk_checkpoint(),
        r.pool_vs_disk() * 100.0
    );
    println!("faulty wall:       {}", r.faulty.wall);
    println!(
        "recovery:          {} repair(s), {} restore(s), {} lost iteration(s), MTTR {}",
        r.faulty.repairs, r.faulty.restores, r.faulty.lost_iterations, r.faulty.mttr
    );
    println!("goodput:           {:.1}%", r.goodput() * 100.0);
    if r.violations.is_empty() {
        println!("oracles:           quiet (membership monotone, re-converged)");
    } else {
        for v in &r.violations {
            println!("VIOLATION {v}");
        }
    }
}

/// `figures -- recover [preset]` / `figures -- recover sweep [preset]`:
/// runs the recovery harness (reference multi-fault schedule + pool
/// checkpoints + the full oracle battery) twice over a fig16 preset,
/// asserts the `coarse.recovery-report/v1` document is byte-identical
/// across the two runs, prints the goodput accounting, and writes
/// `recover-<preset>.json` (or `recover-sweep-<preset>.json`). Exits 1 on
/// any oracle violation, 2 on an unknown preset.
fn recover(args: &[String]) {
    use coarse_core::resilience::RecoveryPolicy;
    use coarse_trainsim::{interval_sweep, recovery_report, TrainError};
    let unknown = |name: &str| -> ! {
        eprintln!(
            "unknown recover preset '{name}'; presets: {}\n",
            coarse_trainsim::Scenario::presets().join(" ")
        );
        usage();
        std::process::exit(2);
    };
    let fail = |e: TrainError| -> ! {
        eprintln!("error: {e}");
        std::process::exit(1);
    };
    if args.first().map(String::as_str) == Some("sweep") {
        let name = args.get(1).map(String::as_str).unwrap_or("fig16d");
        let policy = RecoveryPolicy::default();
        hr(&format!(
            "RECOVER SWEEP — {name} ({RECOVER_ITERATIONS} iterations, intervals {RECOVER_SWEEP_INTERVALS:?})"
        ));
        let sweep = match interval_sweep(name, RECOVER_ITERATIONS, RECOVER_SWEEP_INTERVALS, &policy)
        {
            Ok(sweep) => sweep,
            Err(TrainError::UnknownPreset { .. }) => unknown(name),
            Err(e) => fail(e),
        };
        let again = interval_sweep(name, RECOVER_ITERATIONS, RECOVER_SWEEP_INTERVALS, &policy)
            .expect("second sweep of a known preset");
        if sweep.render() != again.render() {
            eprintln!("error: recovery sweeps differ between two runs of '{name}'");
            std::process::exit(1);
        }
        println!(
            "{:>9} {:>10} {:>9} {:>6} {:>9} {:>16}",
            "interval", "overhead", "goodput", "lost", "restores", "MTTR"
        );
        for r in &sweep.reports {
            println!(
                "{:>9} {:>9.2}% {:>8.1}% {:>6} {:>9} {:>16}",
                r.policy.checkpoint_interval,
                r.checkpoint_overhead() * 100.0,
                r.goodput() * 100.0,
                r.faulty.lost_iterations,
                r.faulty.restores,
                r.faulty.mttr.to_string()
            );
        }
        let mut doc = sweep.render();
        doc.push('\n');
        let path = format!("recover-sweep-{name}.json");
        write_artifact(&path, &doc);
        println!("\nwrote {path} (determinism check: two runs matched)");
        if sweep.reports.iter().any(|r| !r.violations.is_empty()) {
            for r in &sweep.reports {
                for v in &r.violations {
                    eprintln!("VIOLATION (interval {}) {v}", r.policy.checkpoint_interval);
                }
            }
            std::process::exit(1);
        }
        return;
    }
    let name = args.first().map(String::as_str).unwrap_or("fig16d");
    let policy = RecoveryPolicy {
        checkpoint_interval: RECOVER_INTERVAL,
        ..RecoveryPolicy::default()
    };
    hr(&format!(
        "RECOVER — {name} ({RECOVER_ITERATIONS} iterations, checkpoint every {RECOVER_INTERVAL})"
    ));
    let report = match recovery_report(name, RECOVER_ITERATIONS, &policy) {
        Ok(report) => report,
        Err(TrainError::UnknownPreset { .. }) => unknown(name),
        Err(e) => fail(e),
    };
    let again = recovery_report(name, RECOVER_ITERATIONS, &policy)
        .expect("second recovery run of a known preset");
    if report.render() != again.render() {
        eprintln!("error: recovery reports differ between two runs of '{name}'");
        std::process::exit(1);
    }
    recover_summary(&report);
    let mut doc = report.render();
    doc.push('\n');
    let path = format!("recover-{name}.json");
    write_artifact(&path, &doc);
    println!("\nwrote {path} (determinism check: two runs matched)");
    if !report.violations.is_empty() {
        std::process::exit(1);
    }
}

/// Writes a CLI artifact, exiting 1 with a message instead of panicking
/// when the filesystem refuses (read-only checkout, missing directory).
fn write_artifact(path: &str, contents: &str) {
    if let Err(e) = std::fs::write(path, contents) {
        eprintln!("error: cannot write {path}: {e}");
        std::process::exit(1);
    }
}

/// `figures -- lint [--json [path]] [--baseline <file>]`: runs the simlint
/// static analyzer over the workspace sources, prints every active
/// (un-waived) diagnostic, and optionally writes the
/// `coarse.lint-report/v1` JSON artifact. Without `--baseline`, exits 1
/// when any un-waived diagnostic remains. With `--baseline`, compares
/// against a committed earlier report and exits 1 only on findings NOT in
/// the baseline — so a branch can ratchet down legacy debt without being
/// blocked by it — while stale (since-fixed) baseline entries are listed
/// for pruning. Exits 2 on usage errors.
fn lint(args: &[String]) {
    let mut json_path: Option<String> = None;
    let mut baseline_path: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--json" => match args.get(i + 1) {
                Some(p) if !p.starts_with("--") => {
                    json_path = Some(p.clone());
                    i += 1;
                }
                _ => json_path = Some("lint-report.json".to_string()),
            },
            "--baseline" => match args.get(i + 1) {
                Some(p) if !p.starts_with("--") => {
                    baseline_path = Some(p.clone());
                    i += 1;
                }
                _ => {
                    eprintln!("--baseline requires a report file path");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("unknown lint option '{other}'");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    // figures is built inside crates/bench; the workspace root is two up.
    let manifest = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = manifest
        .ancestors()
        .nth(2)
        .unwrap_or_else(|| std::path::Path::new("."));
    let report = match coarse_simlint::lint_workspace(root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    print!("{}", report.render_text(false));
    if let Some(path) = &json_path {
        write_artifact(path, &report.render_json());
        println!("wrote {path}");
    }
    let Some(bp) = &baseline_path else {
        if report.active() > 0 {
            std::process::exit(1);
        }
        return;
    };
    let text = match std::fs::read_to_string(bp) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read baseline {bp}: {e}");
            std::process::exit(2);
        }
    };
    let base = match coarse_simlint::baseline::Baseline::parse(&text) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("error: bad baseline {bp}: {e}");
            std::process::exit(2);
        }
    };
    let fresh = base.new_findings(&report);
    let stale = base.stale(&report);
    for (rule, path, message) in &stale {
        println!("stale baseline entry (fixed — prune it): [{rule}] {path}: {message}");
    }
    if fresh.is_empty() {
        println!(
            "baseline check: no new findings ({} active, all in {bp})",
            report.active()
        );
        return;
    }
    println!(
        "baseline check: {} NEW finding(s) not in {bp}:",
        fresh.len()
    );
    for d in fresh {
        println!("  {}:{}: [{}] {}", d.path, d.line, d.rule, d.message);
    }
    std::process::exit(1);
}

/// Seed for the chaos soak: fixed so CI runs are reproducible; override
/// per-case exploration by passing a different case count (the per-case
/// seeds are derived from `base_seed ^ case`).
const CHAOS_SEED: u64 = 0xC0A5_5EED;

/// `figures -- chaos soak [cases]`: runs the seeded chaos search across the
/// Fig. 16 presets with the oracle battery armed, twice, asserting the two
/// sweeps render byte-identical summaries. Every oracle failure is shrunk
/// to a minimal plan and written as a replayable `chaos-repro-<hash>.json`.
/// Exits 1 if any case violated an invariant.
fn chaos_soak(cases: u32) {
    use coarse_trainsim::chaos::{soak, SoakConfig};
    let cfg = SoakConfig {
        cases,
        base_seed: CHAOS_SEED,
        ..SoakConfig::default()
    };
    hr(&format!(
        "CHAOS SOAK — {cases} cases over {} presets (seed {CHAOS_SEED:#x})",
        cfg.presets.len()
    ));
    let first = match soak(&cfg) {
        Ok(outcome) => outcome,
        Err(e) => {
            eprintln!("error: soak failed to run: {e}");
            std::process::exit(1);
        }
    };
    let again = soak(&cfg).expect("second sweep of an identical config");
    assert_eq!(
        first.render_summary(),
        again.render_summary(),
        "same-seed chaos soaks must be byte-identical"
    );
    print!("{}", first.render_summary());
    println!("determinism check: two same-seed sweeps matched");
    for f in &first.failures {
        let name = f.repro.file_name();
        write_artifact(&name, &f.repro.render());
        println!("wrote {name}");
    }
    if !first.failures.is_empty() {
        std::process::exit(1);
    }
}

/// `figures -- chaos run <preset> [seed]`: samples one fault schedule over
/// the preset and runs it with oracles armed. Exits 1 on any violation.
fn chaos_run(preset: &str, seed: u64) {
    use coarse_simcore::faults::FaultPlanGen;
    use coarse_trainsim::chaos::{run_case, universe_for};
    let base = match coarse_trainsim::Scenario::try_preset(preset) {
        Ok(s) => s.iterations(2),
        Err(e) => {
            eprintln!(
                "error: {e}; known presets: {}",
                coarse_trainsim::Scenario::presets().join(" ")
            );
            std::process::exit(2);
        }
    };
    let plan = FaultPlanGen::new(universe_for(&base)).sample(seed);
    hr(&format!(
        "CHAOS CASE — {preset}, seed {seed:#x}, {} fault event(s)",
        plan.len()
    ));
    for ev in plan.events() {
        println!("  t={} {}", ev.at, ev.label);
    }
    let scenario = base.faults(plan);
    let report = match run_case(&scenario, coarse_trainsim::Sabotage::None) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("error: case failed to run: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "retries {} | failovers {} | degraded-to-gpu {}",
        report.faulty.retries, report.faulty.failovers, report.faulty.degraded_to_gpu
    );
    if report.violations.is_empty() {
        println!("oracles: quiet (all invariants held)");
    } else {
        for v in &report.violations {
            println!("VIOLATION {v}");
        }
        std::process::exit(1);
    }
}

/// `figures -- chaos replay <path>`: re-runs a serialized repro and checks
/// the fresh verdicts against the recorded ones. Exits 1 if the failure no
/// longer reproduces (or reproduces differently).
fn chaos_replay(path: &str) {
    use coarse_trainsim::chaos::{replay, ChaosRepro};
    let doc = match std::fs::read_to_string(path) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    let repro = match ChaosRepro::parse(&doc) {
        Ok(repro) => repro,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    hr(&format!(
        "CHAOS REPLAY — {} ({} fault event(s), sabotage {:?})",
        path,
        repro.plan.len(),
        repro.sabotage
    ));
    let report = match replay(&doc) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("error: replay failed to run: {e}");
            std::process::exit(1);
        }
    };
    let fresh = report.rendered_violations();
    for v in &fresh {
        println!("VIOLATION {v}");
    }
    if fresh == repro.violations {
        println!("replay reproduces the recorded failure exactly");
    } else {
        eprintln!(
            "replay diverged from the recorded violations:\n  recorded: {:?}\n  fresh:    {:?}",
            repro.violations, fresh
        );
        std::process::exit(1);
    }
}

/// `figures -- chaos selftest`: end-to-end proof the chaos pipeline can
/// catch a protocol bug — arms the test-only `InvertRetryOrder` sabotage,
/// expects the retry-FIFO oracle to fire, the shrinker to reduce the plan
/// to ≤ 3 events, and the serialized repro to replay to the same failure.
fn chaos_selftest() {
    use coarse_trainsim::chaos::{replay, soak, SoakConfig};
    hr("CHAOS SELFTEST — sabotaged retry order must be caught and shrunk");
    let cfg = SoakConfig {
        presets: vec!["fig16a".to_string()],
        cases: 1,
        base_seed: CHAOS_SEED,
        sabotage: coarse_trainsim::Sabotage::InvertRetryOrder,
        ..SoakConfig::default()
    };
    let outcome = soak(&cfg).expect("selftest soak runs");
    let Some(failure) = outcome.failures.first() else {
        eprintln!("FAIL: sabotaged run produced no oracle violation");
        std::process::exit(1);
    };
    if !failure.violations.iter().any(|v| v.contains("retry-fifo")) {
        eprintln!(
            "FAIL: expected a retry-fifo verdict, got {:?}",
            failure.violations
        );
        std::process::exit(1);
    }
    println!(
        "caught: {} violation(s), plan shrunk {} -> {} event(s) over {} shrink runs",
        failure.violations.len(),
        failure.original_events,
        failure.shrunk_events,
        failure.shrink_tested
    );
    if failure.shrunk_events > 3 {
        eprintln!(
            "FAIL: shrinker left {} events (expected <= 3)",
            failure.shrunk_events
        );
        std::process::exit(1);
    }
    let replayed = replay(&failure.repro.render()).expect("repro replays");
    if replayed.rendered_violations() != failure.violations {
        eprintln!(
            "FAIL: replay diverged:\n  recorded: {:?}\n  fresh:    {:?}",
            failure.violations,
            replayed.rendered_violations()
        );
        std::process::exit(1);
    }
    let name = failure.repro.file_name();
    write_artifact(&name, &failure.repro.render());
    println!("wrote {name}");
    println!("replay reproduces the shrunk failure byte-for-byte: PASS");
}

/// Dispatches `figures -- chaos <mode>`.
fn chaos(args: &[String]) {
    let mode = args.first().map(String::as_str).unwrap_or("soak");
    let parse_u64 = |s: &str, what: &str| -> u64 {
        let digits = s.strip_prefix("0x");
        let parsed = match digits {
            Some(hex) => u64::from_str_radix(hex, 16),
            None => s.parse(),
        };
        parsed.unwrap_or_else(|_| {
            eprintln!("error: {what} '{s}' is not a number");
            std::process::exit(2);
        })
    };
    match mode {
        "soak" => {
            let cases = args
                .get(1)
                .map(|s| parse_u64(s, "case count") as u32)
                .unwrap_or(500);
            chaos_soak(cases);
        }
        "run" => {
            let Some(preset) = args.get(1) else {
                eprintln!("usage: figures -- chaos run <preset> [seed]");
                std::process::exit(2);
            };
            let seed = args
                .get(2)
                .map(|s| parse_u64(s, "seed"))
                .unwrap_or(CHAOS_SEED);
            chaos_run(preset, seed);
        }
        "replay" => {
            let Some(path) = args.get(1) else {
                eprintln!("usage: figures -- chaos replay <chaos-repro-*.json>");
                std::process::exit(2);
            };
            chaos_replay(path);
        }
        "selftest" => chaos_selftest(),
        other => {
            eprintln!("unknown chaos mode '{other}'; expected: soak | run | replay | selftest");
            std::process::exit(2);
        }
    }
}

fn main() {
    // The library never reads the environment itself; the CLI boundary is
    // the one place ambient state becomes an explicit input.
    coarse_trainsim::coarse::set_pilot_debug(std::env::var("COARSE_DEBUG").is_ok());
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(what) = args.first().map(String::as_str) else {
        usage();
        std::process::exit(2);
    };
    match what {
        "help" | "--help" | "-h" => {
            usage();
            return;
        }
        "list" => {
            list();
            return;
        }
        "trace" => {
            let scenario = args.get(1).map(String::as_str).unwrap_or("resnet50-coarse");
            trace_scenario(scenario);
            return;
        }
        "faults" => {
            let scenario = args.get(1).map(String::as_str).unwrap_or("matrix");
            faults(scenario);
            return;
        }
        "chaos" => {
            chaos(&args[1..]);
            return;
        }
        "recover" => {
            recover(&args[1..]);
            return;
        }
        "validate" => {
            let scenario = args.get(1).map(String::as_str).unwrap_or("all");
            validate(scenario);
            return;
        }
        "report" => {
            let mut scenario = None;
            let mut json_path = None;
            let mut rest = args[1..].iter();
            while let Some(arg) = rest.next() {
                if arg == "--json" {
                    match rest.next() {
                        Some(p) => json_path = Some(p.as_str()),
                        None => {
                            eprintln!("--json requires a path");
                            std::process::exit(2);
                        }
                    }
                } else {
                    scenario = Some(arg.as_str());
                }
            }
            report(scenario, json_path);
            return;
        }
        "bench" => {
            let mut label = None;
            let mut baseline = None;
            let mut rest = args[1..].iter();
            while let Some(arg) = rest.next() {
                if arg == "--baseline" {
                    match rest.next() {
                        Some(p) => baseline = Some(p.as_str()),
                        None => {
                            eprintln!("--baseline requires a path");
                            std::process::exit(2);
                        }
                    }
                } else if arg.starts_with("--") {
                    eprintln!("unknown bench option '{arg}'\n");
                    usage();
                    std::process::exit(2);
                } else {
                    label = Some(arg.as_str());
                }
            }
            bench(label.unwrap_or("local"), baseline);
            return;
        }
        "profile" => {
            let scenario = args.get(1).map(String::as_str).unwrap_or("fig16d");
            profile(scenario);
            return;
        }
        "explain" => {
            let scenario = args.get(1).map(String::as_str).unwrap_or("fig16d");
            explain(scenario);
            return;
        }
        "lint" => {
            lint(&args[1..]);
            return;
        }
        _ => {}
    }
    let mut ran = false;
    for (name, f) in FIGURES {
        if what == "all" || what == *name {
            f();
            ran = true;
        }
    }
    if !ran {
        eprintln!("unknown subcommand '{what}'\n");
        usage();
        std::process::exit(2);
    }
}
