//! Mechanism figures and ablations: tensor partitioning (Fig. 9), deadlock
//! avoidance (Fig. 10), ring bandwidth utilization (§II-B), routing and
//! dual-sync ablations, bidirectional sync groups, and coherence scaling.

use coarse_cci::coherence::Directory;
use coarse_cci::synccore::RingDirection;
use coarse_cci::tensor::TensorId;
use coarse_collectives::timed::{ring_allreduce, ring_bandwidth_utilization};
use coarse_core::deadlock::{figure10_scenario, ScheduleOutcome, SchedulingPolicy};
use coarse_core::dualsync::{self, DualSyncInputs, DualSyncPlan};
use coarse_fabric::engine::TransferEngine;
use coarse_fabric::machines::{self, PartitionScheme};
use coarse_fabric::topology::{LinkClass, LinkMask};
use coarse_simcore::time::{SimDuration, SimTime};
use coarse_simcore::units::{Bandwidth, ByteSize};

const PCIE_ONLY: LinkMask = LinkMask::only(LinkClass::Pcie);

const CCI_ONLY: LinkMask = LinkMask::only(LinkClass::Cci);

/// Fig. 9: FIFO vs partitioned-pipelined tensor synchronization between one
/// client and its proxy, two unequal tensors.
#[derive(Debug, Clone, Copy)]
pub struct Fig9 {
    /// Makespan without partitioning (tensor-granularity FIFO).
    pub fifo_makespan: SimDuration,
    /// Makespan with tensors partitioned into pipeline shards.
    pub partitioned_makespan: SimDuration,
    /// Speedup of partitioning.
    pub speedup: f64,
}

/// Generates Fig. 9 on the SDSC P100 local client/proxy pair.
pub fn fig9() -> Fig9 {
    let machine = machines::sdsc_p100();
    let part = machine.partition(PartitionScheme::OneToOne);
    let client = part.workers[0];
    let proxy = part.proxy_for(0);
    let topo = machine.topology();
    // Two unequal tensors, as in the paper's example.
    let t0 = ByteSize::mib(24);
    let t1 = ByteSize::mib(8);

    // FIFO: whole-tensor push → pull, the pull direction idling while the
    // next push has nothing to overlap with.
    let fifo = {
        let mut e = TransferEngine::new(topo.clone());
        let push0 = e
            .transfer_masked(client, proxy, t0, SimTime::ZERO, PCIE_ONLY)
            .expect("route");
        let push1 = e
            .transfer_masked(client, proxy, t1, push0.end, PCIE_ONLY)
            .expect("route");
        let pull0 = e
            .transfer_masked(proxy, client, t0, push0.end, PCIE_ONLY)
            .expect("route");
        let pull1 = e
            .transfer_masked(proxy, client, t1, push1.end.max(pull0.end), PCIE_ONLY)
            .expect("route");
        pull1.end - SimTime::ZERO
    };

    // Partitioned: 2 MiB shards; each shard's pull chases its push on the
    // opposite bus direction.
    let partitioned = {
        let mut e = TransferEngine::new(topo.clone());
        let shard = ByteSize::mib(2);
        let mut push_t = SimTime::ZERO;
        let mut pull_t = SimTime::ZERO;
        for total in [t0, t1] {
            let mut left = total;
            while !left.is_zero() {
                let s = left.min(shard);
                left = left - s;
                let push = e
                    .transfer_masked(client, proxy, s, push_t, PCIE_ONLY)
                    .expect("route");
                push_t = push.end;
                let pull = e
                    .transfer_masked(proxy, client, s, push.end.max(pull_t), PCIE_ONLY)
                    .expect("route");
                pull_t = pull.end;
            }
        }
        pull_t - SimTime::ZERO
    };

    Fig9 {
        fifo_makespan: fifo,
        partitioned_makespan: partitioned,
        speedup: fifo.as_secs_f64() / partitioned.as_secs_f64(),
    }
}

/// Fig. 10: FCFS deadlock vs queue-based completion on the paper's exact
/// scenario.
#[derive(Debug, Clone)]
pub struct Fig10 {
    /// Outcome under FCFS (deadlocks).
    pub fcfs: ScheduleOutcome,
    /// Outcome under per-client queues (completes).
    pub queue_based: ScheduleOutcome,
}

/// Generates Fig. 10.
pub fn fig10() -> Fig10 {
    Fig10 {
        fcfs: figure10_scenario(SchedulingPolicy::Fcfs),
        queue_based: figure10_scenario(SchedulingPolicy::PerClientQueues),
    }
}

/// §II-B ablation: ring AllReduce bandwidth utilization over the V100
/// machine's PCIe fabric, measured against the **full-duplex** capacity of
/// a GPU link. Ring AllReduce drives each link in one direction only and is
/// paced by the slowest hop, so utilization lands near the paper's "as low
/// as 34% on DGX-1" figure.
pub fn ablation_ring_bandwidth_utilization() -> f64 {
    let machine = machines::aws_v100();
    let part = machine.partition(PartitionScheme::OneToOne);
    let mut e = TransferEngine::new(machine.topology().clone());
    let ready = vec![SimTime::ZERO; part.workers.len()];
    let result = ring_allreduce(
        &mut e,
        &part.workers,
        ByteSize::mib(256),
        &ready,
        RingDirection::Forward,
        PCIE_ONLY,
    )
    .expect("workers connected");
    // Full-duplex capacity of the GPU's own PCIe link (2 × 13 GiB/s).
    ring_bandwidth_utilization(
        &result,
        part.workers.len(),
        2.0 * 13.0 * (1u64 << 30) as f64,
    )
}

/// Routing ablation: achieved bandwidth pushing a large payload to the
/// profiled `BwProxy` vs forcing the same-switch proxy, on the anti-local
/// V100 machine. Returns `(routed GiB/s, forced-local GiB/s)`.
pub fn ablation_routing() -> (f64, f64) {
    let machine = machines::aws_v100();
    let part = machine.partition(PartitionScheme::OneToOne);
    let client = part.workers[0];
    let local = part.proxy_for(0);
    let table = coarse_core::profiler::build_routing_table(
        machine.topology(),
        client,
        &part.mem_devices,
        SimTime::ZERO,
    );
    let payload = ByteSize::mib(64);
    let gib = |bps: f64| bps / (1u64 << 30) as f64;
    let routed = coarse_fabric::probe::measure_unidirectional(
        machine.topology(),
        client,
        table.route_for(payload),
        payload,
        PCIE_ONLY,
    );
    let forced = coarse_fabric::probe::measure_unidirectional(
        machine.topology(),
        client,
        local,
        payload,
        PCIE_ONLY,
    );
    (gib(routed), gib(forced))
}

/// Dual-sync ablation: the §III-F estimate swept over `m`, plus the chosen
/// optimum, for a BERT-Large-like configuration.
pub fn ablation_dualsync() -> (Vec<DualSyncPlan>, DualSyncPlan) {
    let inputs = DualSyncInputs {
        workers: 4,
        total_bytes: ByteSize::mib(1280),
        proxy_bandwidth: Bandwidth::gib_per_sec(11.7),
        gpu_bandwidth: Bandwidth::gib_per_sec(22.0),
        forward: SimDuration::from_millis(82),
        backward: SimDuration::from_millis(163),
    };
    (dualsync::sweep(&inputs, 21), dualsync::optimize(&inputs))
}

/// Bidirectional sync-group ablation: two groups in the same vs opposite
/// ring directions over the CCI device fabric. Returns `(same-direction
/// makespan, opposite-direction makespan)`.
pub fn ablation_bidirectional_groups() -> (SimDuration, SimDuration) {
    let mut machine = machines::aws_v100();
    let part = machine.partition(PartitionScheme::OneToOne);
    machine.augment_cci_ring(&part.mem_devices);
    let devs = part.mem_devices.clone();
    let ready = vec![SimTime::ZERO; devs.len()];
    let payload = ByteSize::mib(32);
    let run = |second: RingDirection| {
        let mut e = TransferEngine::new(machine.topology().clone());
        let a = ring_allreduce(
            &mut e,
            &devs,
            payload,
            &ready,
            RingDirection::Forward,
            CCI_ONLY,
        )
        .expect("connected");
        let b =
            ring_allreduce(&mut e, &devs, payload, &ready, second, CCI_ONLY).expect("connected");
        a.end.max(b.end) - SimTime::ZERO
    };
    (run(RingDirection::Forward), run(RingDirection::Reverse))
}

/// Coherence-scaling ablation: protocol bytes of one full write round to a
/// shared region, per sharer count (the §III-D scalability argument).
pub fn ablation_coherence_scaling(max_sharers: usize) -> Vec<(usize, u64)> {
    let mut topo = coarse_fabric::topology::Topology::new();
    let devices: Vec<_> = (0..max_sharers.max(2))
        .map(|i| topo.add_device(coarse_fabric::device::DeviceKind::Gpu, format!("g{i}"), 0))
        .collect();
    let region = coarse_cci::address::CciAddr(0x1000);
    let payload = ByteSize::mib(4);
    (2..=max_sharers)
        .map(|n| {
            let mut dir = Directory::new();
            for &d in &devices[..n] {
                dir.read(region, d, payload);
            }
            let mut bytes = 0;
            for &d in &devices[..n] {
                bytes += dir.write(region, d, payload).protocol_bytes.as_u64();
            }
            (n, bytes)
        })
        .collect()
}

/// Ring-vs-tree collective crossover on a full CCI mesh: the smallest
/// payload at which the bandwidth-optimal ring overtakes the
/// latency-optimal tree.
pub fn ablation_ring_tree_crossover() -> Option<ByteSize> {
    let mut machine = machines::aws_v100();
    let part = machine.partition(PartitionScheme::OneToOne);
    machine.augment_cci_mesh(&part.mem_devices);
    let topo = machine.topology().clone();
    let candidates: Vec<ByteSize> = (8..=26).map(|p| ByteSize::bytes(1 << p)).collect();
    coarse_collectives::tree::crossover_payload(
        || TransferEngine::new(topo.clone()),
        &part.mem_devices,
        &candidates,
        CCI_ONLY,
    )
}

/// Exercises the functional deadlock scheduler at scale to confirm
/// queue-based scheduling completes arbitrary consistent workloads.
pub fn deadlock_stress(tensors: u64, clients: usize, proxies: usize) -> ScheduleOutcome {
    use coarse_core::deadlock::SyncScheduler;
    let mut s = SyncScheduler::new(proxies, SchedulingPolicy::PerClientQueues);
    let mut rng = coarse_simcore::rng::SimRng::seed_from_u64(99);
    for t in 0..tensors {
        for c in 0..clients {
            let p = rng.next_below(proxies as u64) as usize;
            s.push(p, c, TensorId(t));
        }
    }
    s.run()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig9_partitioning_fills_the_pipeline() {
        let f = fig9();
        assert!(
            f.speedup > 1.3,
            "partitioning should clearly beat FIFO, got {:.2}",
            f.speedup
        );
        assert!(f.partitioned_makespan < f.fifo_makespan);
    }

    #[test]
    fn fig10_shapes() {
        let f = fig10();
        assert!(!f.fcfs.is_deadlock_free());
        assert!(f.queue_based.is_deadlock_free());
        assert_eq!(f.queue_based.completed.len(), 2);
    }

    #[test]
    fn ring_utilization_is_low_on_pcie() {
        let u = ablation_ring_bandwidth_utilization();
        // The paper quotes 34% on DGX-1; our fabric lands in the same
        // regime (about a third of full-duplex capacity).
        assert!(u > 0.2 && u < 0.5, "utilization {u}");
    }

    #[test]
    fn routing_ablation_shows_antilocality_win() {
        let (routed, forced) = ablation_routing();
        assert!(
            routed > forced * 1.4,
            "routing must beat forced-local: {routed:.1} vs {forced:.1}"
        );
    }

    #[test]
    fn dualsync_ablation_optimum_on_curve() {
        let (sweep, opt) = ablation_dualsync();
        for p in &sweep {
            assert!(opt.estimate <= p.estimate);
        }
    }

    #[test]
    fn bidirectional_groups_win() {
        let (same, opposite) = ablation_bidirectional_groups();
        assert!(
            opposite < same.mul_f64(0.6),
            "opposite-direction groups must overlap: {opposite} vs {same}"
        );
    }

    #[test]
    fn coherence_bytes_grow_superlinearly() {
        let rows = ablation_coherence_scaling(8);
        assert_eq!(rows.len(), 7);
        let first = rows[0].1 as f64;
        let last = rows.last().unwrap().1 as f64;
        // 4x the sharers → clearly superlinear protocol traffic.
        assert!(last > first * 5.0, "{first} → {last}");
    }

    #[test]
    fn ring_tree_crossover_in_sane_range() {
        let c = ablation_ring_tree_crossover().expect("crossover exists");
        assert!(c > ByteSize::bytes(256) && c < ByteSize::mib(64), "{c}");
    }

    #[test]
    fn deadlock_stress_completes() {
        let out = deadlock_stress(100, 8, 4);
        assert!(out.is_deadlock_free());
        assert_eq!(out.completed.len(), 100);
    }
}
