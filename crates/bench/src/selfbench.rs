//! The perf self-benchmark: times the simulator's own hot loops — route
//! resolution, flow transfers, ring collective steps, and a full COARSE
//! training iteration — and writes a `BENCH_<label>.json` artifact for CI
//! regression diffing.
//!
//! The *timings* in the artifact are wall-clock and therefore machine-
//! dependent; the *work counters* (bytes moved, iterations simulated) are
//! deterministic, so two artifacts can be compared as normalized
//! ns-per-unit-of-work. Sample counts honor the same environment knobs as
//! the `benches/` binaries (`COARSE_BENCH_SAMPLES`,
//! `COARSE_BENCH_MIN_BATCH_MS`).

use std::time::Duration;

use coarse_cci::synccore::RingDirection;
use coarse_collectives::timed::ring_allreduce;
use coarse_fabric::engine::TransferEngine;
use coarse_fabric::machines::{aws_v100, PartitionScheme};
use coarse_fabric::topology::{Link, LinkClass};
use coarse_models::zoo::bert_large;
use coarse_simcore::json::JsonValue;
use coarse_simcore::time::SimTime;
use coarse_simcore::units::ByteSize;
use coarse_trainsim::simulate_coarse;

use crate::harness::{black_box, Bench};

/// Schema identifier of the `BENCH_<label>.json` artifact.
pub const BENCH_SCHEMA: &str = "coarse.selfbench/v1";

/// One timed hot loop.
#[derive(Debug, Clone)]
pub struct BenchEntry {
    /// Benchmark name, `<subsystem>.<loop>`.
    pub name: &'static str,
    /// Median wall-clock time per iteration.
    pub median: Duration,
    /// Deterministic work units processed per iteration.
    pub work: u64,
    /// What one work unit is (`"bytes"`, `"routes"`, `"iterations"`).
    pub unit: &'static str,
}

fn pcie_only(l: &Link) -> bool {
    l.class() == LinkClass::Pcie
}

/// Runs every self-benchmark and returns the timed entries (also printed
/// through the harness as they run).
pub fn run_selfbench() -> Vec<BenchEntry> {
    let b = Bench::group("selfbench");
    let mut entries = Vec::new();
    let mut push = |name: &'static str, median: Duration, work: u64, unit: &'static str| {
        entries.push(BenchEntry {
            name,
            median,
            work,
            unit,
        });
    };

    let machine = aws_v100();
    let part = machine.partition(PartitionScheme::OneToOne);
    let model = bert_large();
    let gpus = machine.gpus().to_vec();
    let topo = machine.topology().clone();

    // Route resolution: the lookup on every transfer's critical path.
    push(
        "engine.route",
        b.run("engine.route", || {
            black_box(topo.route(black_box(gpus[0]), black_box(gpus[7])))
        }),
        1,
        "routes",
    );

    // Flow transfers: one 1 MiB link-occupancy computation.
    {
        let size = ByteSize::mib(1);
        let mut engine = TransferEngine::new(topo.clone());
        let mut t = SimTime::ZERO;
        push(
            "engine.transfer_1mib",
            b.run("engine.transfer_1mib", || {
                let rec = engine.transfer(gpus[0], gpus[2], size, t).expect("route");
                t = rec.end;
                black_box(rec)
            }),
            size.as_u64(),
            "bytes",
        );
    }

    // Ring collective: a full 4-member allreduce (6 steps) over PCIe.
    {
        let payload = ByteSize::mib(4);
        let ready = vec![SimTime::ZERO; part.workers.len()];
        push(
            "collectives.ring_allreduce_4mib",
            b.run("collectives.ring_allreduce_4mib", || {
                let mut engine = TransferEngine::new(topo.clone());
                black_box(
                    ring_allreduce(
                        &mut engine,
                        &part.workers,
                        payload,
                        &ready,
                        RingDirection::Forward,
                        pcie_only,
                    )
                    .expect("ring completes"),
                )
            }),
            payload.as_u64(),
            "bytes",
        );
    }

    // End-to-end: steady-state COARSE iterations (pilot + 2 iterations).
    push(
        "trainsim.coarse_2iter",
        b.run("trainsim.coarse_2iter", || {
            black_box(simulate_coarse(&machine, &part, &model, 2, 2))
        }),
        2,
        "iterations",
    );

    entries
}

/// Renders entries as the [`BENCH_SCHEMA`] JSON document.
pub fn to_json(label: &str, entries: &[BenchEntry]) -> JsonValue {
    let mut rows = Vec::new();
    for e in entries {
        rows.push(
            JsonValue::object()
                .with("name", JsonValue::str(e.name))
                .with("median_ns", JsonValue::int(e.median.as_nanos() as u64))
                .with("work", JsonValue::int(e.work))
                .with("unit", JsonValue::str(e.unit))
                .with(
                    "ns_per_unit",
                    JsonValue::num(e.median.as_nanos() as f64 / e.work as f64),
                ),
        );
    }
    JsonValue::object()
        .with("schema", JsonValue::str(BENCH_SCHEMA))
        .with("label", JsonValue::str(label))
        .with("benches", JsonValue::Array(rows))
}

/// Runs the self-benchmark and writes `BENCH_<label>.json` to the current
/// directory. Returns the path written.
///
/// # Errors
///
/// Propagates the I/O error if the artifact cannot be written.
pub fn write_report(label: &str) -> std::io::Result<String> {
    let entries = run_selfbench();
    let path = format!("BENCH_{label}.json");
    let mut doc = to_json(label, &entries).render_pretty();
    doc.push('\n');
    std::fs::write(&path, doc)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_document_shape() {
        let entries = vec![BenchEntry {
            name: "engine.route",
            median: Duration::from_nanos(250),
            work: 1,
            unit: "routes",
        }];
        let doc = to_json("unit", &entries).render();
        assert!(doc.contains("\"schema\":\"coarse.selfbench/v1\""));
        assert!(doc.contains("\"label\":\"unit\""));
        assert!(doc.contains("\"median_ns\":250"));
        assert!(doc.contains("\"ns_per_unit\":250"));
    }
}
