//! The perf self-benchmark: times the simulator's own hot loops — route
//! resolution, flow transfers, ring collective steps, and a full COARSE
//! training iteration — and writes a `BENCH_<label>.json` artifact for CI
//! regression diffing.
//!
//! The artifact mixes two kinds of fields, gated differently by the
//! regression comparison ([`compare_reports`]):
//!
//! - **wall-clock** timings are machine-dependent; drift beyond a tolerance
//!   band is *advisory* (a warning, never a CI failure);
//! - **deterministic** fields — the per-bench work counters plus the
//!   self-profiler's kernel/region event counts from a profiled
//!   [`PROFILE_PRESET`] run — depend only on the simulated program, so any
//!   drift against the committed baseline is a *hard failure*.
//!
//! Sample counts honor the same environment knobs as the `benches/`
//! binaries (`COARSE_BENCH_SAMPLES`, `COARSE_BENCH_MIN_BATCH_MS`).

use std::time::Duration;

use coarse_cci::synccore::RingDirection;
use coarse_collectives::timed::ring_allreduce;
use coarse_fabric::engine::TransferEngine;
use coarse_fabric::machines::{aws_v100, PartitionScheme};
use coarse_fabric::topology::{LinkClass, LinkMask};
use coarse_models::zoo::bert_large;
use coarse_simcore::json::JsonValue;
use coarse_simcore::prof::region;
use coarse_simcore::time::SimTime;
use coarse_simcore::units::ByteSize;
use coarse_trainsim::{profile_preset, simulate_coarse, ProfileRun};

use crate::harness::{black_box, Bench};

/// Schema identifier of the `BENCH_<label>.json` artifact. v2 added the
/// `profile` section (deterministic kernel/region event counts plus
/// wall-clock throughput from a profiled [`PROFILE_PRESET`] run).
pub const BENCH_SCHEMA: &str = "coarse.selfbench/v2";

/// Scenario preset the artifact's `profile` section is captured under.
pub const PROFILE_PRESET: &str = "fig16d";

/// Fractional wall-clock tolerance band for [`compare_reports`]: normalized
/// timings may drift by ±50% against the baseline before a warning. Wide on
/// purpose — baselines are committed from arbitrary developer/CI hosts.
pub const WALL_TOLERANCE: f64 = 0.5;

/// One timed hot loop.
#[derive(Debug, Clone)]
pub struct BenchEntry {
    /// Benchmark name, `<subsystem>.<loop>`.
    pub name: &'static str,
    /// Median wall-clock time per iteration.
    pub median: Duration,
    /// Deterministic work units processed per iteration.
    pub work: u64,
    /// What one work unit is (`"bytes"`, `"routes"`, `"iterations"`).
    pub unit: &'static str,
}

const PCIE_ONLY: LinkMask = LinkMask::only(LinkClass::Pcie);

/// Runs every self-benchmark and returns the timed entries (also printed
/// through the harness as they run).
pub fn run_selfbench() -> Vec<BenchEntry> {
    let b = Bench::group("selfbench");
    let mut entries = Vec::new();
    let mut push = |name: &'static str, median: Duration, work: u64, unit: &'static str| {
        entries.push(BenchEntry {
            name,
            median,
            work,
            unit,
        });
    };

    let machine = aws_v100();
    let part = machine.partition(PartitionScheme::OneToOne);
    let model = bert_large();
    let gpus = machine.gpus().to_vec();
    let topo = machine.topology().clone();

    // Route resolution: the lookup on every transfer's critical path.
    push(
        "engine.route",
        b.run("engine.route", || {
            black_box(topo.route(black_box(gpus[0]), black_box(gpus[7])))
        }),
        1,
        "routes",
    );

    // Flow transfers: one 1 MiB link-occupancy computation.
    {
        let size = ByteSize::mib(1);
        let mut engine = TransferEngine::new(topo.clone());
        let mut t = SimTime::ZERO;
        push(
            "engine.transfer_1mib",
            b.run("engine.transfer_1mib", || {
                let rec = engine.transfer(gpus[0], gpus[2], size, t).expect("route");
                t = rec.end;
                black_box(rec)
            }),
            size.as_u64(),
            "bytes",
        );
    }

    // Ring collective: a full 4-member allreduce (6 steps) over PCIe.
    {
        let payload = ByteSize::mib(4);
        let ready = vec![SimTime::ZERO; part.workers.len()];
        push(
            "collectives.ring_allreduce_4mib",
            b.run("collectives.ring_allreduce_4mib", || {
                let mut engine = TransferEngine::new(topo.clone());
                black_box(
                    ring_allreduce(
                        &mut engine,
                        &part.workers,
                        payload,
                        &ready,
                        RingDirection::Forward,
                        PCIE_ONLY,
                    )
                    .expect("ring completes"),
                )
            }),
            payload.as_u64(),
            "bytes",
        );
    }

    // End-to-end: steady-state COARSE iterations (pilot + 2 iterations).
    push(
        "trainsim.coarse_2iter",
        b.run("trainsim.coarse_2iter", || {
            black_box(simulate_coarse(&machine, &part, &model, 2, 2))
        }),
        2,
        "iterations",
    );

    entries
}

/// Runs the self-profiling harness on [`PROFILE_PRESET`] and summarizes it
/// for the artifact's `profile` section.
///
/// # Panics
///
/// Panics if [`PROFILE_PRESET`] stops being a valid preset — a programming
/// error, not a runtime condition.
pub fn profile_summary() -> JsonValue {
    let run = profile_preset(PROFILE_PRESET).expect("PROFILE_PRESET is a valid preset");
    profile_summary_json(&run)
}

/// The `profile` section of the artifact: a `deterministic` half (kernel
/// dispatch/queue counters and per-region event counts — exact across
/// machines, hard-gated by [`compare_reports`]) and a `wallclock` half
/// (events/sec — advisory).
pub fn profile_summary_json(run: &ProfileRun) -> JsonValue {
    let q = run.profiler.queue_stats();
    let mut regions = JsonValue::object();
    for &name in &region::ALL {
        regions = regions.with(name, JsonValue::int(run.profiler.region_events(name)));
    }
    let wall = run.profiler.wallclock_json();
    let pick = |key: &str| wall.get(key).cloned().unwrap_or(JsonValue::Null);
    JsonValue::object()
        .with("scenario", JsonValue::str(&run.scenario))
        .with(
            "deterministic",
            JsonValue::object()
                .with(
                    "events_dispatched",
                    JsonValue::int(run.profiler.events_dispatched()),
                )
                .with(
                    "queue",
                    JsonValue::object()
                        .with("scheduled", JsonValue::int(q.scheduled))
                        .with("popped", JsonValue::int(q.popped))
                        .with("cancelled", JsonValue::int(q.cancelled)),
                )
                .with("region_events", regions),
        )
        .with(
            "wallclock",
            // The preset and the event-count denominator ride along so a
            // BENCH artifact's events/sec is interpretable on its own: the
            // rate only means something relative to which scenario produced
            // how many kernel events.
            JsonValue::object()
                .with("preset", JsonValue::str(&run.scenario))
                .with(
                    "events_dispatched",
                    JsonValue::int(run.profiler.events_dispatched()),
                )
                .with("enabled", pick("enabled"))
                .with("elapsed_ns", pick("elapsed_ns"))
                .with("events_per_sec", pick("events_per_sec")),
        )
}

/// Renders entries plus the profiled section as the [`BENCH_SCHEMA`] JSON
/// document.
pub fn to_json(label: &str, entries: &[BenchEntry], profile: JsonValue) -> JsonValue {
    let mut rows = Vec::new();
    for e in entries {
        rows.push(
            JsonValue::object()
                .with("name", JsonValue::str(e.name))
                .with("median_ns", JsonValue::int(e.median.as_nanos() as u64))
                .with("work", JsonValue::int(e.work))
                .with("unit", JsonValue::str(e.unit))
                .with(
                    "ns_per_unit",
                    JsonValue::num(e.median.as_nanos() as f64 / e.work as f64),
                ),
        );
    }
    JsonValue::object()
        .with("schema", JsonValue::str(BENCH_SCHEMA))
        .with("label", JsonValue::str(label))
        .with("benches", JsonValue::Array(rows))
        .with("profile", profile)
}

/// Runs the self-benchmark and the profiled [`PROFILE_PRESET`] run and
/// writes `BENCH_<label>.json` to the current directory. Returns the path
/// written.
///
/// # Errors
///
/// Propagates the I/O error if the artifact cannot be written.
pub fn write_report(label: &str) -> std::io::Result<String> {
    let entries = run_selfbench();
    let path = format!("BENCH_{label}.json");
    let mut doc = to_json(label, &entries, profile_summary()).render_pretty();
    doc.push('\n');
    std::fs::write(&path, doc)?;
    Ok(path)
}

/// Outcome of diffing a BENCH document against a committed baseline.
#[derive(Debug, Clone, Default)]
pub struct BenchComparison {
    /// Hard failures: a deterministic field drifted (schema, work counters,
    /// profiled kernel/region counts). CI fails on any of these — the
    /// simulated program changed without the baseline being regenerated.
    pub errors: Vec<String>,
    /// Advisory findings: wall-clock drift beyond the tolerance band.
    pub warnings: Vec<String>,
}

impl BenchComparison {
    /// True when no hard failure was recorded (warnings are allowed).
    pub fn passed(&self) -> bool {
        self.errors.is_empty()
    }
}

fn banded(current: f64, baseline: f64, tolerance: f64) -> bool {
    if baseline <= 0.0 {
        return true;
    }
    let ratio = current / baseline;
    ratio <= 1.0 + tolerance && ratio >= 1.0 / (1.0 + tolerance)
}

/// Diffs `current` against `baseline`: deterministic fields must match
/// exactly (errors); normalized wall-clock timings may drift within
/// `tolerance` (fractional, e.g. [`WALL_TOLERANCE`]) before a warning.
pub fn compare_reports(
    current: &JsonValue,
    baseline: &JsonValue,
    tolerance: f64,
) -> BenchComparison {
    let mut cmp = BenchComparison::default();
    let schema = |doc: &JsonValue| {
        doc.get("schema")
            .and_then(JsonValue::as_str)
            .map(String::from)
    };
    let (cur_schema, base_schema) = (schema(current), schema(baseline));
    if cur_schema != base_schema {
        cmp.errors.push(format!(
            "schema mismatch: current {cur_schema:?} vs baseline {base_schema:?} \
             (regenerate the baseline artifact)"
        ));
        return cmp;
    }

    let rows = |doc: &JsonValue| -> Vec<JsonValue> {
        doc.get("benches")
            .and_then(JsonValue::as_array)
            .map(<[JsonValue]>::to_vec)
            .unwrap_or_default()
    };
    let cur_rows = rows(current);
    for row in rows(baseline) {
        let Some(name) = row.get("name").and_then(JsonValue::as_str) else {
            continue;
        };
        let Some(cur) = cur_rows
            .iter()
            .find(|r| r.get("name").and_then(JsonValue::as_str) == Some(name))
        else {
            cmp.errors
                .push(format!("bench '{name}' missing from current report"));
            continue;
        };
        // Work counters are deterministic: the benchmark must process the
        // same work as when the baseline was recorded.
        for key in ["work", "unit"] {
            let (b, c) = (row.get(key), cur.get(key));
            if b.map(JsonValue::render) != c.map(JsonValue::render) {
                cmp.errors.push(format!(
                    "bench '{name}': deterministic field '{key}' drifted: \
                     baseline {:?} vs current {:?}",
                    b.map(JsonValue::render),
                    c.map(JsonValue::render)
                ));
            }
        }
        if let (Some(b), Some(c)) = (
            row.get("ns_per_unit").and_then(JsonValue::as_f64),
            cur.get("ns_per_unit").and_then(JsonValue::as_f64),
        ) {
            if !banded(c, b, tolerance) {
                cmp.warnings.push(format!(
                    "bench '{name}': ns_per_unit {c:.1} vs baseline {b:.1} \
                     ({:.2}x; band ±{:.0}%) — wall-clock drift is advisory",
                    c / b,
                    tolerance * 100.0
                ));
            }
        }
    }

    match (current.get("profile"), baseline.get("profile")) {
        (Some(cur), Some(base)) => {
            let scen = |p: &JsonValue| p.get("scenario").map(JsonValue::render);
            if scen(cur) != scen(base) {
                cmp.errors.push(format!(
                    "profile scenario drifted: baseline {:?} vs current {:?}",
                    scen(base),
                    scen(cur)
                ));
            }
            let det = |p: &JsonValue| p.get("deterministic").map(JsonValue::render);
            if det(cur) != det(base) {
                cmp.errors.push(
                    "profile deterministic section drifted from baseline: kernel \
                     dispatch/queue counters and region event counts must be \
                     byte-identical (regenerate the baseline if the change is \
                     intentional)"
                        .to_string(),
                );
            }
            if let (Some(b), Some(c)) = (
                base.get("wallclock")
                    .and_then(|w| w.get("events_per_sec"))
                    .and_then(JsonValue::as_f64),
                cur.get("wallclock")
                    .and_then(|w| w.get("events_per_sec"))
                    .and_then(JsonValue::as_f64),
            ) {
                if !banded(c, b, tolerance) {
                    cmp.warnings.push(format!(
                        "profile: events_per_sec {c:.0} vs baseline {b:.0} \
                         ({:.2}x; band ±{:.0}%) — wall-clock drift is advisory",
                        c / b,
                        tolerance * 100.0
                    ));
                }
            }
        }
        (None, None) => {}
        (cur, _) => cmp.errors.push(format!(
            "profile section present in only one report (current has it: {})",
            cur.is_some()
        )),
    }
    cmp
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_profile(events: u64, eps: f64) -> JsonValue {
        JsonValue::object()
            .with("scenario", JsonValue::str(PROFILE_PRESET))
            .with(
                "deterministic",
                JsonValue::object().with("events_dispatched", JsonValue::int(events)),
            )
            .with(
                "wallclock",
                JsonValue::object()
                    .with("enabled", JsonValue::Bool(true))
                    .with("events_per_sec", JsonValue::num(eps)),
            )
    }

    fn sample_doc(median_ns: u64, work: u64, events: u64, eps: f64) -> JsonValue {
        let entries = vec![BenchEntry {
            name: "engine.route",
            median: Duration::from_nanos(median_ns),
            work,
            unit: "routes",
        }];
        to_json("unit", &entries, sample_profile(events, eps))
    }

    #[test]
    fn json_document_shape() {
        let doc = sample_doc(250, 1, 9, 1e6).render();
        assert!(doc.contains("\"schema\":\"coarse.selfbench/v2\""));
        assert!(doc.contains("\"label\":\"unit\""));
        assert!(doc.contains("\"median_ns\":250"));
        assert!(doc.contains("\"ns_per_unit\":250"));
        assert!(doc.contains("\"profile\":{\"scenario\":\"fig16d\""));
        assert!(doc.contains("\"events_dispatched\":9"));
    }

    #[test]
    fn wallclock_section_names_its_preset_and_denominator() {
        let summary = profile_summary();
        let wall = summary.get("wallclock").expect("wallclock section");
        assert_eq!(
            wall.get("preset").and_then(JsonValue::as_str),
            Some(PROFILE_PRESET)
        );
        let denom = wall
            .get("events_dispatched")
            .and_then(JsonValue::as_u64)
            .expect("event denominator");
        assert!(denom > 0, "profiled run dispatched no events");
        assert_eq!(
            summary
                .get("deterministic")
                .and_then(|d| d.get("events_dispatched"))
                .and_then(JsonValue::as_u64),
            Some(denom),
            "wallclock denominator must mirror the deterministic count"
        );
    }

    #[test]
    fn identical_reports_compare_clean() {
        let doc = sample_doc(250, 1, 9, 1e6);
        let cmp = compare_reports(&doc, &doc, WALL_TOLERANCE);
        assert!(cmp.passed(), "errors: {:?}", cmp.errors);
        assert!(cmp.warnings.is_empty(), "warnings: {:?}", cmp.warnings);
    }

    #[test]
    fn wall_clock_drift_is_a_warning_not_an_error() {
        let base = sample_doc(250, 1, 9, 1e6);
        let cur = sample_doc(2500, 1, 9, 1e5); // 10x slower on both axes
        let cmp = compare_reports(&cur, &base, WALL_TOLERANCE);
        assert!(cmp.passed(), "wall drift must not fail: {:?}", cmp.errors);
        assert_eq!(cmp.warnings.len(), 2, "warnings: {:?}", cmp.warnings);
    }

    #[test]
    fn small_wall_drift_stays_inside_the_band() {
        let base = sample_doc(250, 1, 9, 1e6);
        let cur = sample_doc(300, 1, 9, 1.2e6); // 1.2x — inside ±50%
        let cmp = compare_reports(&cur, &base, WALL_TOLERANCE);
        assert!(cmp.passed());
        assert!(cmp.warnings.is_empty(), "warnings: {:?}", cmp.warnings);
    }

    #[test]
    fn deterministic_drift_is_a_hard_failure() {
        let base = sample_doc(250, 1, 9, 1e6);
        // Same timings, different deterministic fields: work counter and
        // profiled event count.
        let cur = sample_doc(250, 2, 10, 1e6);
        let cmp = compare_reports(&cur, &base, WALL_TOLERANCE);
        assert!(!cmp.passed());
        assert_eq!(cmp.errors.len(), 2, "errors: {:?}", cmp.errors);
    }

    #[test]
    fn schema_mismatch_fails_fast() {
        let base = JsonValue::object().with("schema", JsonValue::str("coarse.selfbench/v1"));
        let cur = sample_doc(250, 1, 9, 1e6);
        let cmp = compare_reports(&cur, &base, WALL_TOLERANCE);
        assert!(!cmp.passed());
        assert_eq!(cmp.errors.len(), 1);
    }
}
