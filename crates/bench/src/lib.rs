//! # coarse-bench
//!
//! The benchmark harness regenerating **every table and figure** of the
//! COARSE paper's evaluation, plus the ablations called out in DESIGN.md:
//!
//! - [`micro`] — prototype bandwidth curves (Figs. 3/13/14) and machine
//!   characterizations (Figs. 8/15);
//! - [`mechanisms`] — tensor partitioning (Fig. 9), deadlock avoidance
//!   (Fig. 10), ring-utilization / routing / dual-sync / bidirectional /
//!   coherence ablations;
//! - [`training`] — Table I, the motivation breakdown (Fig. 2), training
//!   speedups (Fig. 16a–f) and blocked communication (Fig. 17);
//! - [`expectations`] — the declarative paper-expectation registry behind
//!   `figures -- validate` / `figures -- report` (DESIGN.md §9);
//! - [`selfbench`] — the perf self-benchmark writing `BENCH_<label>.json`
//!   artifacts for CI regression diffing.
//!
//! Run `cargo run -p coarse-bench --bin figures -- all` to print the whole
//! evaluation with paper-reported values alongside measured ones, and
//! `figures -- validate all` for the pass/warn/fail fidelity scorecard.

#![warn(missing_docs)]

pub mod expectations;
pub mod harness;
pub mod mechanisms;
pub mod micro;
pub mod selfbench;
pub mod training;
