//! Training figures: Table I, the motivation breakdown (Fig. 2), training
//! speedups (Fig. 16) and blocked-communication time (Fig. 17).

use coarse_fabric::machines::{self, Machine, PartitionScheme};
use coarse_models::profile::ModelProfile;
use coarse_models::zoo;
use coarse_trainsim::{Scenario, Scheme, TrainResult};

/// Iterations per simulated run (steady state is exact, so few suffice).
const ITERS: u32 = 3;

/// One Table I row.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Machine name.
    pub name: String,
    /// GPU SKU.
    pub sku: String,
    /// Total GPUs.
    pub gpus: usize,
    /// Worker GPUs (half emulate memory devices).
    pub workers: usize,
    /// Emulated CCI memory devices.
    pub mem_devices: usize,
    /// Whether GPU peer-to-peer is supported.
    pub p2p: bool,
    /// Whether NVLink is present.
    pub nvlink: bool,
}

/// Generates Table I.
pub fn table1() -> Vec<Table1Row> {
    machines::table1()
        .into_iter()
        .map(|m| {
            let part = m.partition(PartitionScheme::OneToOne);
            Table1Row {
                name: m.name().to_string(),
                sku: m.sku().name().to_string(),
                gpus: m.gpus().len(),
                workers: part.worker_count(),
                mem_devices: part.mem_device_count(),
                p2p: m.topology().p2p_enabled(),
                nvlink: m.has_nvlink(),
            }
        })
        .collect()
}

/// One Fig. 2 row: the fraction of training time spent in blocking
/// communication under a centralized parameter server.
#[derive(Debug, Clone)]
pub struct Fig2Row {
    /// Machine name.
    pub machine: String,
    /// Model name.
    pub model: String,
    /// Per-GPU batch size.
    pub batch: u32,
    /// Fraction of the iteration blocked on communication.
    pub comm_fraction: f64,
}

/// Generates Fig. 2: centralized-PS communication fractions across
/// machines and models (the paper's "up to 76%").
pub fn fig2() -> Vec<Fig2Row> {
    let cases: Vec<(Machine, ModelProfile, u32)> = vec![
        (machines::aws_t4(), zoo::resnet50(), 64),
        (machines::aws_t4(), zoo::bert_base(), 2),
        (machines::sdsc_p100(), zoo::bert_large(), 2),
        (machines::aws_v100(), zoo::resnet50(), 64),
        (machines::aws_v100(), zoo::bert_large(), 2),
    ];
    cases
        .into_iter()
        .map(|(m, model, batch)| {
            let machine = m.name().to_string();
            let model_name = model.name().to_string();
            let r = Scenario::new("fig2", m, model)
                .batch_per_gpu(batch)
                .iterations(ITERS)
                .scheme(Scheme::Dense)
                .run()
                .expect("every Fig. 2 case fits in GPU memory");
            Fig2Row {
                machine,
                model: model_name,
                batch,
                comm_fraction: r.comm_fraction(),
            }
        })
        .collect()
}

/// One training experiment's results across all three schemes.
#[derive(Debug, Clone)]
pub struct SchemeComparison {
    /// Experiment id matching the paper's panel (e.g. `"fig16a"`).
    pub id: &'static str,
    /// Machine name.
    pub machine: String,
    /// Model name.
    pub model: String,
    /// Per-GPU batch.
    pub batch: u32,
    /// DENSE result.
    pub dense: TrainResult,
    /// AllReduce result.
    pub allreduce: TrainResult,
    /// COARSE result.
    pub coarse: TrainResult,
}

impl SchemeComparison {
    /// AllReduce speedup over DENSE (a Fig. 16 bar).
    pub fn allreduce_speedup(&self) -> f64 {
        self.allreduce.speedup_over(&self.dense)
    }

    /// COARSE speedup over DENSE (a Fig. 16 bar).
    pub fn coarse_speedup(&self) -> f64 {
        self.coarse.speedup_over(&self.dense)
    }

    /// Blocked-communication time normalized to DENSE (a Fig. 17 bar).
    pub fn normalized_blocked(&self, r: &TrainResult) -> f64 {
        r.blocked_comm.as_secs_f64() / self.dense.blocked_comm.as_secs_f64()
    }
}

fn compare(
    id: &'static str,
    machine: Machine,
    partition: PartitionScheme,
    model: ModelProfile,
    batch: u32,
) -> SchemeComparison {
    let machine_name = machine.name().to_string();
    let model_name = model.name().to_string();
    let base = Scenario::new(id, machine, model)
        .partition(partition)
        .batch_per_gpu(batch)
        .iterations(ITERS);
    let run = |scheme: Scheme| {
        base.clone()
            .scheme(scheme)
            .run()
            .expect("every Fig. 16 panel fits in GPU memory")
    };
    SchemeComparison {
        id,
        machine: machine_name,
        model: model_name,
        batch,
        dense: run(Scheme::Dense),
        allreduce: run(Scheme::AllReduce),
        coarse: run(Scheme::Coarse),
    }
}

/// Figs. 16a–d / 17a–d: the single-node scheme comparison on each machine,
/// including the V100 two-workers-per-device variant.
pub fn fig16_single_node() -> Vec<SchemeComparison> {
    vec![
        compare(
            "fig16a",
            machines::aws_t4(),
            PartitionScheme::OneToOne,
            zoo::resnet50(),
            64,
        ),
        compare(
            "fig16b",
            machines::aws_t4(),
            PartitionScheme::OneToOne,
            zoo::bert_base(),
            2,
        ),
        compare(
            "fig16c",
            machines::sdsc_p100(),
            PartitionScheme::OneToOne,
            zoo::bert_large(),
            2,
        ),
        compare(
            "fig16d",
            machines::aws_v100(),
            PartitionScheme::OneToOne,
            zoo::bert_large(),
            2,
        ),
        compare(
            "fig16d-2to1",
            machines::aws_v100(),
            PartitionScheme::TwoToOne,
            zoo::bert_large(),
            2,
        ),
    ]
}

/// Fig. 16e: the batch-size experiment. AllReduce fits only batch 2 of
/// BERT-Large in 16 GiB; COARSE offloads the master copy and optimizer
/// state and fits batch 4, training substantially faster per sample.
#[derive(Debug, Clone)]
pub struct Fig16e {
    /// AllReduce at its maximum feasible batch (2).
    pub allreduce_b2: TrainResult,
    /// COARSE at the same batch, for reference.
    pub coarse_b2: TrainResult,
    /// COARSE at batch 4 (infeasible for AllReduce).
    pub coarse_b4: TrainResult,
    /// Whether batch 4 fits under AllReduce residency (expected: no).
    pub allreduce_b4_fits: bool,
    /// Throughput speedup of COARSE(b4) over AllReduce(b2) — paper: 48.3%.
    pub speedup: f64,
}

/// Generates Fig. 16e.
pub fn fig16e() -> Fig16e {
    // simlint: allow(preset-exists, reason = "panel label for a Scenario assembled inline, not a preset lookup")
    let base = Scenario::new("fig16e", machines::aws_v100(), zoo::bert_large()).iterations(ITERS);
    let allreduce_b2 = base
        .clone()
        .scheme(Scheme::AllReduce)
        .run()
        .expect("AllReduce fits batch 2");
    let coarse_b2 = base.clone().run().expect("COARSE fits batch 2");
    let coarse_b4 = base
        .clone()
        .batch_per_gpu(4)
        .run()
        .expect("COARSE fits batch 4");
    let allreduce_b4_fits = base
        .scheme(Scheme::AllReduce)
        .batch_per_gpu(4)
        .check_memory()
        .is_ok();
    Fig16e {
        speedup: coarse_b4.throughput / allreduce_b2.throughput,
        allreduce_b2,
        coarse_b2,
        coarse_b4,
        allreduce_b4_fits,
    }
}

/// Fig. 16f: multi-node training. Two V100 nodes joined by 25 Gbit/s.
#[derive(Debug, Clone)]
pub struct Fig16f {
    /// Two-node AllReduce at batch 2 (the baseline).
    pub allreduce_2node: TrainResult,
    /// Two-node COARSE at batch 2.
    pub coarse_2node: TrainResult,
    /// Single-node COARSE at batch 4 (same global batch as the baseline).
    pub coarse_1node_b4: TrainResult,
    /// COARSE(2 nodes) speedup over AllReduce(2 nodes) — paper: ≤42.7%.
    pub speedup_2node: f64,
    /// COARSE(1 node, b4) throughput over AllReduce(2 nodes, b2) —
    /// paper: 38.6%.
    pub speedup_1node_b4: f64,
}

/// Generates Fig. 16f.
pub fn fig16f() -> Fig16f {
    let two_node =
        // simlint: allow(preset-exists, reason = "panel label for a Scenario assembled inline, not a preset lookup")
        Scenario::new("fig16f", machines::aws_v100_cluster(2), zoo::bert_large()).iterations(ITERS);
    let allreduce_2node = two_node
        .clone()
        .scheme(Scheme::AllReduce)
        .run()
        .expect("AllReduce fits batch 2");
    let coarse_2node = two_node.run().expect("COARSE fits batch 2");
    // simlint: allow(preset-exists, reason = "panel label for a Scenario assembled inline, not a preset lookup")
    let coarse_1node_b4 = Scenario::new("fig16f-1node", machines::aws_v100(), zoo::bert_large())
        .iterations(ITERS)
        .batch_per_gpu(4)
        .run()
        .expect("COARSE fits batch 4");
    Fig16f {
        speedup_2node: coarse_2node.throughput / allreduce_2node.throughput,
        speedup_1node_b4: coarse_1node_b4.throughput / allreduce_2node.throughput,
        allreduce_2node,
        coarse_2node,
        coarse_1node_b4,
    }
}

/// Extension experiment: the capacity wall. GPT-2 XL (1.5 B parameters)
/// cannot train on a 16 GiB GPU at all with on-GPU parameters + Adam state;
/// with COARSE's offload it trains — the §VI capacity argument, pushed past
/// the paper's largest model.
#[derive(Debug, Clone)]
pub struct CapacityWall {
    /// Largest feasible per-GPU batch with everything on the GPU (0 = none).
    pub allreduce_max_batch: u32,
    /// Largest feasible per-GPU batch with COARSE's offload.
    pub coarse_max_batch: u32,
    /// COARSE training result at batch 1 (AllReduce has no feasible result).
    pub coarse_b1: TrainResult,
}

/// Generates the capacity-wall experiment.
pub fn capacity_wall() -> CapacityWall {
    use coarse_models::memory::{MemoryModel, Residency};
    let machine = machines::aws_v100();
    let model = zoo::gpt2_xl();
    let mm = MemoryModel::new(&model, machine.sku().memory_gib());
    let coarse_b1 = Scenario::new("capacity", machine, model)
        .batch_per_gpu(1)
        .iterations(2)
        .run()
        .expect("COARSE offload fits GPT-2 XL at batch 1");
    CapacityWall {
        allreduce_max_batch: mm.max_batch(Residency::AllOnGpu),
        coarse_max_batch: mm.max_batch(Residency::OffloadedToCci),
        coarse_b1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expectations::{Scorecard, Verdict};

    /// Every paper-band check in this module lives in the declarative
    /// expectation registry (`crate::expectations::REGISTRY`); the tests
    /// here evaluate a scenario's slice of the registry and require every
    /// row to land inside its calibrated pass band.
    fn assert_scenario_passes(scenario: &str) {
        let card = Scorecard::evaluate(Some(scenario));
        assert!(!card.rows.is_empty(), "no expectations for {scenario}");
        for r in &card.rows {
            assert_eq!(
                r.verdict,
                Verdict::Pass,
                "{}: measured {} outside pass band {:?} ({})",
                r.expectation.id,
                r.measured,
                r.expectation.pass,
                r.expectation.paper
            );
        }
    }

    #[test]
    fn table1_three_machines_half_devices() {
        let t = table1();
        assert_eq!(t.len(), 3);
        assert!(!t[0].p2p, "T4 has no p2p");
        assert!(t[2].nvlink, "V100 has NVLink");
        assert_scenario_passes("table1");
    }

    #[test]
    fn fig2_registry_expectations_pass() {
        assert_scenario_passes("fig2");
    }

    #[test]
    fn fig16_registry_expectations_pass() {
        assert_eq!(fig16_single_node().len(), 5);
        assert_scenario_passes("fig16");
    }

    #[test]
    fn fig17_registry_expectations_pass() {
        assert_scenario_passes("fig17");
    }

    #[test]
    fn capacity_registry_expectations_pass() {
        let c = capacity_wall();
        assert!(c.coarse_b1.throughput > 0.0);
        assert_scenario_passes("capacity");
    }

    #[test]
    fn fig16e_larger_batch_raises_throughput() {
        // Structural shape not expressible as a scalar band: more samples
        // per iteration must translate into more samples per second.
        let f = fig16e();
        assert!(f.coarse_b4.throughput > f.coarse_b2.throughput);
    }
}
