//! Training figures: Table I, the motivation breakdown (Fig. 2), training
//! speedups (Fig. 16) and blocked-communication time (Fig. 17).

use coarse_fabric::machines::{self, Machine, PartitionScheme};
use coarse_models::profile::ModelProfile;
use coarse_models::zoo;
use coarse_trainsim::{simulate_allreduce, simulate_coarse, simulate_dense, TrainResult};

/// Iterations per simulated run (steady state is exact, so few suffice).
const ITERS: u32 = 3;

/// One Table I row.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Machine name.
    pub name: String,
    /// GPU SKU.
    pub sku: String,
    /// Total GPUs.
    pub gpus: usize,
    /// Worker GPUs (half emulate memory devices).
    pub workers: usize,
    /// Emulated CCI memory devices.
    pub mem_devices: usize,
    /// Whether GPU peer-to-peer is supported.
    pub p2p: bool,
    /// Whether NVLink is present.
    pub nvlink: bool,
}

/// Generates Table I.
pub fn table1() -> Vec<Table1Row> {
    machines::table1()
        .into_iter()
        .map(|m| {
            let part = m.partition(PartitionScheme::OneToOne);
            Table1Row {
                name: m.name().to_string(),
                sku: m.sku().name().to_string(),
                gpus: m.gpus().len(),
                workers: part.worker_count(),
                mem_devices: part.mem_device_count(),
                p2p: m.topology().p2p_enabled(),
                nvlink: m.has_nvlink(),
            }
        })
        .collect()
}

/// One Fig. 2 row: the fraction of training time spent in blocking
/// communication under a centralized parameter server.
#[derive(Debug, Clone)]
pub struct Fig2Row {
    /// Machine name.
    pub machine: String,
    /// Model name.
    pub model: String,
    /// Per-GPU batch size.
    pub batch: u32,
    /// Fraction of the iteration blocked on communication.
    pub comm_fraction: f64,
}

/// Generates Fig. 2: centralized-PS communication fractions across
/// machines and models (the paper's "up to 76%").
pub fn fig2() -> Vec<Fig2Row> {
    let cases: Vec<(Machine, ModelProfile, u32)> = vec![
        (machines::aws_t4(), zoo::resnet50(), 64),
        (machines::aws_t4(), zoo::bert_base(), 2),
        (machines::sdsc_p100(), zoo::bert_large(), 2),
        (machines::aws_v100(), zoo::resnet50(), 64),
        (machines::aws_v100(), zoo::bert_large(), 2),
    ];
    cases
        .into_iter()
        .map(|(m, model, batch)| {
            let part = m.partition(PartitionScheme::OneToOne);
            let r = simulate_dense(&m, &part, &model, batch, ITERS);
            Fig2Row {
                machine: m.name().to_string(),
                model: model.name().to_string(),
                batch,
                comm_fraction: r.comm_fraction(),
            }
        })
        .collect()
}

/// One training experiment's results across all three schemes.
#[derive(Debug, Clone)]
pub struct SchemeComparison {
    /// Experiment id matching the paper's panel (e.g. `"fig16a"`).
    pub id: &'static str,
    /// Machine name.
    pub machine: String,
    /// Model name.
    pub model: String,
    /// Per-GPU batch.
    pub batch: u32,
    /// DENSE result.
    pub dense: TrainResult,
    /// AllReduce result.
    pub allreduce: TrainResult,
    /// COARSE result.
    pub coarse: TrainResult,
}

impl SchemeComparison {
    /// AllReduce speedup over DENSE (a Fig. 16 bar).
    pub fn allreduce_speedup(&self) -> f64 {
        self.allreduce.speedup_over(&self.dense)
    }

    /// COARSE speedup over DENSE (a Fig. 16 bar).
    pub fn coarse_speedup(&self) -> f64 {
        self.coarse.speedup_over(&self.dense)
    }

    /// Blocked-communication time normalized to DENSE (a Fig. 17 bar).
    pub fn normalized_blocked(&self, r: &TrainResult) -> f64 {
        r.blocked_comm.as_secs_f64() / self.dense.blocked_comm.as_secs_f64()
    }
}

fn compare(
    id: &'static str,
    machine: Machine,
    partition: PartitionScheme,
    model: ModelProfile,
    batch: u32,
) -> SchemeComparison {
    let part = machine.partition(partition);
    SchemeComparison {
        id,
        machine: machine.name().to_string(),
        model: model.name().to_string(),
        batch,
        dense: simulate_dense(&machine, &part, &model, batch, ITERS),
        allreduce: simulate_allreduce(&machine, &part, &model, batch, ITERS),
        coarse: simulate_coarse(&machine, &part, &model, batch, ITERS),
    }
}

/// Figs. 16a–d / 17a–d: the single-node scheme comparison on each machine,
/// including the V100 two-workers-per-device variant.
pub fn fig16_single_node() -> Vec<SchemeComparison> {
    vec![
        compare(
            "fig16a",
            machines::aws_t4(),
            PartitionScheme::OneToOne,
            zoo::resnet50(),
            64,
        ),
        compare(
            "fig16b",
            machines::aws_t4(),
            PartitionScheme::OneToOne,
            zoo::bert_base(),
            2,
        ),
        compare(
            "fig16c",
            machines::sdsc_p100(),
            PartitionScheme::OneToOne,
            zoo::bert_large(),
            2,
        ),
        compare(
            "fig16d",
            machines::aws_v100(),
            PartitionScheme::OneToOne,
            zoo::bert_large(),
            2,
        ),
        compare(
            "fig16d-2to1",
            machines::aws_v100(),
            PartitionScheme::TwoToOne,
            zoo::bert_large(),
            2,
        ),
    ]
}

/// Fig. 16e: the batch-size experiment. AllReduce fits only batch 2 of
/// BERT-Large in 16 GiB; COARSE offloads the master copy and optimizer
/// state and fits batch 4, training substantially faster per sample.
#[derive(Debug, Clone)]
pub struct Fig16e {
    /// AllReduce at its maximum feasible batch (2).
    pub allreduce_b2: TrainResult,
    /// COARSE at the same batch, for reference.
    pub coarse_b2: TrainResult,
    /// COARSE at batch 4 (infeasible for AllReduce).
    pub coarse_b4: TrainResult,
    /// Whether batch 4 fits under AllReduce residency (expected: no).
    pub allreduce_b4_fits: bool,
    /// Throughput speedup of COARSE(b4) over AllReduce(b2) — paper: 48.3%.
    pub speedup: f64,
}

/// Generates Fig. 16e.
pub fn fig16e() -> Fig16e {
    use coarse_models::memory::{MemoryModel, Residency};
    let machine = machines::aws_v100();
    let part = machine.partition(PartitionScheme::OneToOne);
    let model = zoo::bert_large();
    let allreduce_b2 = simulate_allreduce(&machine, &part, &model, 2, ITERS);
    let coarse_b2 = simulate_coarse(&machine, &part, &model, 2, ITERS);
    let coarse_b4 = simulate_coarse(&machine, &part, &model, 4, ITERS);
    let mm = MemoryModel::new(&model, machine.sku().memory_gib());
    Fig16e {
        speedup: coarse_b4.throughput / allreduce_b2.throughput,
        allreduce_b2,
        coarse_b2,
        coarse_b4,
        allreduce_b4_fits: mm.fits(4, Residency::AllOnGpu),
    }
}

/// Fig. 16f: multi-node training. Two V100 nodes joined by 25 Gbit/s.
#[derive(Debug, Clone)]
pub struct Fig16f {
    /// Two-node AllReduce at batch 2 (the baseline).
    pub allreduce_2node: TrainResult,
    /// Two-node COARSE at batch 2.
    pub coarse_2node: TrainResult,
    /// Single-node COARSE at batch 4 (same global batch as the baseline).
    pub coarse_1node_b4: TrainResult,
    /// COARSE(2 nodes) speedup over AllReduce(2 nodes) — paper: ≤42.7%.
    pub speedup_2node: f64,
    /// COARSE(1 node, b4) throughput over AllReduce(2 nodes, b2) —
    /// paper: 38.6%.
    pub speedup_1node_b4: f64,
}

/// Generates Fig. 16f.
pub fn fig16f() -> Fig16f {
    let model = zoo::bert_large();
    let cluster = machines::aws_v100_cluster(2);
    let cpart = cluster.partition(PartitionScheme::OneToOne);
    let allreduce_2node = simulate_allreduce(&cluster, &cpart, &model, 2, ITERS);
    let coarse_2node = simulate_coarse(&cluster, &cpart, &model, 2, ITERS);
    let single = machines::aws_v100();
    let spart = single.partition(PartitionScheme::OneToOne);
    let coarse_1node_b4 = simulate_coarse(&single, &spart, &model, 4, ITERS);
    Fig16f {
        speedup_2node: coarse_2node.throughput / allreduce_2node.throughput,
        speedup_1node_b4: coarse_1node_b4.throughput / allreduce_2node.throughput,
        allreduce_2node,
        coarse_2node,
        coarse_1node_b4,
    }
}

/// Extension experiment: the capacity wall. GPT-2 XL (1.5 B parameters)
/// cannot train on a 16 GiB GPU at all with on-GPU parameters + Adam state;
/// with COARSE's offload it trains — the §VI capacity argument, pushed past
/// the paper's largest model.
#[derive(Debug, Clone)]
pub struct CapacityWall {
    /// Largest feasible per-GPU batch with everything on the GPU (0 = none).
    pub allreduce_max_batch: u32,
    /// Largest feasible per-GPU batch with COARSE's offload.
    pub coarse_max_batch: u32,
    /// COARSE training result at batch 1 (AllReduce has no feasible result).
    pub coarse_b1: TrainResult,
}

/// Generates the capacity-wall experiment.
pub fn capacity_wall() -> CapacityWall {
    use coarse_models::memory::{MemoryModel, Residency};
    let machine = machines::aws_v100();
    let part = machine.partition(PartitionScheme::OneToOne);
    let model = zoo::gpt2_xl();
    let mm = MemoryModel::new(&model, machine.sku().memory_gib());
    CapacityWall {
        allreduce_max_batch: mm.max_batch(Residency::AllOnGpu),
        coarse_max_batch: mm.max_batch(Residency::OffloadedToCci),
        coarse_b1: simulate_coarse(&machine, &part, &model, 1, 2),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_three_machines_half_devices() {
        let t = table1();
        assert_eq!(t.len(), 3);
        for row in &t {
            assert_eq!(row.workers, row.mem_devices);
            assert_eq!(row.workers * 2, row.gpus);
        }
        assert!(!t[0].p2p, "T4 has no p2p");
        assert!(t[2].nvlink, "V100 has NVLink");
    }

    #[test]
    fn fig2_shows_heavy_comm_overhead() {
        let rows = fig2();
        let max = rows.iter().map(|r| r.comm_fraction).fold(0.0, f64::max);
        // The paper's motivation: up to 76% of training time.
        assert!(max > 0.7, "max comm fraction {max}");
        // And it is model-dependent: ResNet on V100 is far less bound.
        let min = rows.iter().map(|r| r.comm_fraction).fold(1.0, f64::min);
        assert!(min < 0.6, "min comm fraction {min}");
    }

    #[test]
    fn fig16_single_node_shapes() {
        let rows = fig16_single_node();
        assert_eq!(rows.len(), 5);
        for r in &rows {
            assert!(
                r.coarse_speedup() > 1.5,
                "{}: COARSE {}x over DENSE too small",
                r.id,
                r.coarse_speedup()
            );
            assert!(r.allreduce_speedup() > 1.5, "{}: AllReduce too slow", r.id);
        }
        // BERT panels show much larger speedups than the ResNet panel
        // (communication dominance).
        let resnet = rows.iter().find(|r| r.id == "fig16a").unwrap();
        let bert_v100 = rows.iter().find(|r| r.id == "fig16d").unwrap();
        assert!(bert_v100.coarse_speedup() > 2.0 * resnet.coarse_speedup());
        // Paper band for Fig. 16d: 10.8–13.8x.
        assert!(
            (8.0..18.0).contains(&bert_v100.coarse_speedup()),
            "fig16d speedup {}",
            bert_v100.coarse_speedup()
        );
        // On T4 (fig16b), COARSE does not beat AllReduce meaningfully.
        let t4_bert = rows.iter().find(|r| r.id == "fig16b").unwrap();
        let ratio = t4_bert.coarse.blocked_comm.as_secs_f64()
            / t4_bert.allreduce.blocked_comm.as_secs_f64();
        assert!(
            ratio > 0.8,
            "on T4 COARSE must not dominate AllReduce: ratio {ratio}"
        );
        // On P100 and V100, COARSE reduces blocked communication vs NCCL.
        for id in ["fig16c", "fig16d"] {
            let r = rows.iter().find(|r| r.id == id).unwrap();
            assert!(
                r.coarse.blocked_comm < r.allreduce.blocked_comm,
                "{id}: COARSE must reduce blocked comm"
            );
        }
    }

    #[test]
    fn fig17_blocked_under_ten_percent_of_dense() {
        for r in fig16_single_node() {
            if r.id == "fig16a" {
                // ResNet's tiny payload leaves DENSE less dominated.
                continue;
            }
            // Paper Fig. 17 shows < 10%; the two-worker P100 panel lands a
            // little higher here because its DENSE funnel is half as deep.
            assert!(
                r.normalized_blocked(&r.coarse) < 0.15,
                "{}: COARSE normalized blocked {}",
                r.id,
                r.normalized_blocked(&r.coarse)
            );
            assert!(
                r.normalized_blocked(&r.allreduce) < 0.20,
                "{}: AllReduce normalized blocked {}",
                r.id,
                r.normalized_blocked(&r.allreduce)
            );
        }
    }

    #[test]
    fn capacity_wall_shapes() {
        let c = capacity_wall();
        assert_eq!(c.allreduce_max_batch, 0, "GPT-2 XL must not fit on-GPU");
        assert!(c.coarse_max_batch >= 1);
        assert!(c.coarse_b1.throughput > 0.0);
        assert!(c.coarse_b1.gpu_utilization() > 0.3);
    }

    #[test]
    fn fig16e_large_batch_wins() {
        let f = fig16e();
        assert!(!f.allreduce_b4_fits, "AllReduce must OOM at batch 4");
        // Paper: 48.3% faster. Accept the 1.25–1.7x band.
        assert!(
            (1.25..1.7).contains(&f.speedup),
            "fig16e speedup {}",
            f.speedup
        );
        assert!(f.coarse_b4.throughput > f.coarse_b2.throughput);
    }

    #[test]
    fn fig16f_multi_node_shapes() {
        let f = fig16f();
        // Paper: COARSE up to 42.7% faster than 2-node AllReduce.
        assert!(
            f.speedup_2node > 1.1,
            "2-node COARSE speedup {}",
            f.speedup_2node
        );
        // Paper: 1-node COARSE b4 beats 2-node AllReduce by 38.6%.
        assert!(
            f.speedup_1node_b4 > 1.2,
            "1-node b4 speedup {}",
            f.speedup_1node_b4
        );
    }
}
