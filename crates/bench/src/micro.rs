//! Probe-based micro-benchmark figures: the CCI prototype curves (Figs. 3,
//! 13, 14) and the machine bandwidth characterizations (Figs. 8, 15).

use coarse_cci::device::{AccessDir, AccessMode, PrototypeModel};
use coarse_core::profiler::{profile_proxies, ProxyProfile};
use coarse_fabric::machines::{self, Machine, PartitionScheme};
use coarse_fabric::probe;
use coarse_fabric::topology::{LinkClass, LinkMask};
use coarse_simcore::units::ByteSize;

const NO_NVLINK: LinkMask = LinkMask::only(LinkClass::Pcie);

/// Fig. 3: prototype peer-to-peer bandwidth of the three access modes at a
/// large transfer, plus GPU-Direct speedups over load/store.
#[derive(Debug, Clone)]
pub struct Fig3 {
    /// `(mode label, read GiB/s, write GiB/s)` rows.
    pub rows: Vec<(&'static str, f64, f64)>,
    /// GPU-Direct ÷ CCI read speedup (paper: 17×).
    pub read_speedup: f64,
    /// GPU-Direct ÷ CCI write speedup (paper: 4×).
    pub write_speedup: f64,
}

/// Generates Fig. 3.
pub fn fig3() -> Fig3 {
    let p = PrototypeModel::hpca_prototype();
    let size = ByteSize::mib(64);
    let rows = AccessMode::ALL
        .iter()
        .map(|&m| {
            (
                m.label(),
                p.bandwidth(m, AccessDir::Read, size).as_gib_per_sec(),
                p.bandwidth(m, AccessDir::Write, size).as_gib_per_sec(),
            )
        })
        .collect();
    Fig3 {
        rows,
        read_speedup: p.direct_speedup(AccessDir::Read, size),
        write_speedup: p.direct_speedup(AccessDir::Write, size),
    }
}

/// Fig. 13: prototype bandwidth vs access size for each mode and direction.
#[derive(Debug, Clone)]
pub struct Fig13 {
    /// Access sizes probed.
    pub sizes: Vec<ByteSize>,
    /// Per mode: `(label, read GiB/s per size, write GiB/s per size)`.
    pub curves: Vec<(&'static str, Vec<f64>, Vec<f64>)>,
}

/// Generates Fig. 13.
pub fn fig13() -> Fig13 {
    let p = PrototypeModel::hpca_prototype();
    let sizes = probe::standard_sizes();
    let curves = AccessMode::ALL
        .iter()
        .map(|&m| {
            let read = sizes
                .iter()
                .map(|&s| p.bandwidth(m, AccessDir::Read, s).as_gib_per_sec())
                .collect();
            let write = sizes
                .iter()
                .map(|&s| p.bandwidth(m, AccessDir::Write, s).as_gib_per_sec())
                .collect();
            (m.label(), read, write)
        })
        .collect();
    Fig13 { sizes, curves }
}

/// Fig. 14: DMA bandwidth vs access size and the saturation point.
#[derive(Debug, Clone)]
pub struct Fig14 {
    /// `(size, read GiB/s, write GiB/s)` points.
    pub points: Vec<(ByteSize, f64, f64)>,
    /// Smallest size reaching ≥99% of peak read bandwidth (paper: 2 MiB).
    pub saturation_size: ByteSize,
}

/// Generates Fig. 14.
pub fn fig14() -> Fig14 {
    let p = PrototypeModel::hpca_prototype();
    let sizes = probe::standard_sizes();
    let points: Vec<(ByteSize, f64, f64)> = sizes
        .iter()
        .map(|&s| {
            (
                s,
                p.bandwidth(AccessMode::GpuDirect, AccessDir::Read, s)
                    .as_gib_per_sec(),
                p.bandwidth(AccessMode::GpuDirect, AccessDir::Write, s)
                    .as_gib_per_sec(),
            )
        })
        .collect();
    let peak = points.last().expect("non-empty sweep").1;
    let saturation_size = points
        .iter()
        .find(|(_, r, _)| *r >= 0.99 * peak)
        .map(|&(s, _, _)| s)
        .expect("sweep reaches saturation");
    Fig14 {
        points,
        saturation_size,
    }
}

/// Fig. 8: all-pairs GPU bidirectional bandwidth matrix of one machine.
#[derive(Debug, Clone)]
pub struct Fig8 {
    /// Machine name.
    pub machine: String,
    /// GiB/s between each GPU pair (diagonal zero).
    pub matrix: Vec<Vec<f64>>,
    /// §III-E check: unidirectional and bidirectional bandwidth of a local
    /// pair (paper quotes 13 and 25 GiB/s on SDSC).
    pub local_uni_gib: f64,
    /// Aggregate bidirectional bandwidth of the same local pair.
    pub local_bidir_gib: f64,
}

/// Generates Fig. 8 for one machine preset.
pub fn fig8(machine: &Machine) -> Fig8 {
    let gpus = machine.gpus().to_vec();
    let matrix =
        probe::bidirectional_matrix(machine.topology(), &gpus, ByteSize::mib(16), NO_NVLINK);
    let pair = probe::probe_pair(
        machine.topology(),
        gpus[0],
        gpus[1],
        ByteSize::mib(64),
        NO_NVLINK,
    );
    Fig8 {
        machine: machine.name().to_string(),
        matrix,
        local_uni_gib: pair.uni_gib(),
        local_bidir_gib: pair.bidir_gib(),
    }
}

/// Both Fig. 8 panels: (a) AWS V100, (b) SDSC P100.
pub fn fig8_all() -> Vec<Fig8> {
    vec![fig8(&machines::aws_v100()), fig8(&machines::sdsc_p100())]
}

/// Fig. 15: one client's profile against its local proxy and the best
/// remote proxy, per machine.
#[derive(Debug, Clone)]
pub struct Fig15 {
    /// Machine name.
    pub machine: String,
    /// Profile of the same-switch proxy.
    pub local: ProxyProfile,
    /// Profile of the best remote proxy.
    pub best_remote: ProxyProfile,
    /// Bandwidth-vs-size sweep to the local proxy (GiB/s).
    pub local_sweep: Vec<(ByteSize, f64)>,
    /// Bandwidth-vs-size sweep to the best remote proxy (GiB/s).
    pub remote_sweep: Vec<(ByteSize, f64)>,
}

/// Generates Fig. 15 for one machine.
pub fn fig15(machine: &Machine) -> Fig15 {
    let part = machine.partition(PartitionScheme::OneToOne);
    let client = part.workers[0];
    let local_proxy = part.proxy_for(0);
    let profiles = profile_proxies(machine.topology(), client, &part.mem_devices);
    let local = *profiles
        .iter()
        .find(|p| p.proxy == local_proxy)
        .expect("local proxy profiled");
    let best_remote = *profiles
        .iter()
        .filter(|p| p.proxy != local_proxy)
        .max_by(|a, b| a.bandwidth.partial_cmp(&b.bandwidth).expect("finite"))
        .expect("at least one remote proxy");
    let sizes = probe::standard_sizes();
    let to_gib = |pts: Vec<(ByteSize, f64)>| {
        pts.into_iter()
            .map(|(s, r)| (s, r / (1u64 << 30) as f64))
            .collect()
    };
    Fig15 {
        machine: machine.name().to_string(),
        local,
        best_remote,
        local_sweep: to_gib(probe::bandwidth_sweep(
            machine.topology(),
            client,
            local_proxy,
            &sizes,
            NO_NVLINK,
        )),
        remote_sweep: to_gib(probe::bandwidth_sweep(
            machine.topology(),
            client,
            best_remote.proxy,
            &sizes,
            NO_NVLINK,
        )),
    }
}

/// Fig. 15 for all three Table I machines.
pub fn fig15_all() -> Vec<Fig15> {
    machines::table1().iter().map(fig15).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_matches_paper_speedups() {
        let f = fig3();
        assert!(
            (16.0..17.5).contains(&f.read_speedup),
            "read {}",
            f.read_speedup
        );
        assert!(
            (3.8..4.2).contains(&f.write_speedup),
            "write {}",
            f.write_speedup
        );
        assert_eq!(f.rows.len(), 3);
    }

    #[test]
    fn fig13_loadstore_flat_direct_ramps() {
        let f = fig13();
        let (label, read, _) = &f.curves[0];
        assert_eq!(*label, "CCI");
        assert!(
            read.windows(2).all(|w| (w[0] - w[1]).abs() < 1e-9),
            "CCI read flat"
        );
        let (label, read, _) = &f.curves[2];
        assert_eq!(*label, "GPU Direct");
        assert!(read.last().unwrap() > &(read[0] * 2.0), "direct read ramps");
    }

    #[test]
    fn fig14_saturates_at_2mib() {
        let f = fig14();
        assert_eq!(f.saturation_size, ByteSize::mib(2));
    }

    #[test]
    fn fig8_panels_have_expected_character() {
        let panels = fig8_all();
        let v100 = &panels[0];
        // Anti-locality: remote (0,2) beats local (0,1).
        assert!(v100.matrix[0][2] > v100.matrix[0][1] * 1.3);
        let p100 = &panels[1];
        assert!(p100.matrix[0][1] > p100.matrix[0][2] * 1.15);
        // §III-E quote: 13 uni / ~25 bidir on the SDSC local pair.
        assert!((p100.local_uni_gib - 13.0).abs() < 1.0);
        assert!(p100.local_bidir_gib > 23.0);
    }

    #[test]
    fn fig15_v100_remote_beats_local_bandwidth() {
        let f = fig15(&machines::aws_v100());
        assert!(f.best_remote.bandwidth > f.local.bandwidth * 1.4);
        assert!(
            f.local.latency < f.best_remote.latency,
            "local latency always wins"
        );
    }

    #[test]
    fn fig15_p100_local_wins_both() {
        let f = fig15(&machines::sdsc_p100());
        assert!(f.local.bandwidth > f.best_remote.bandwidth);
        assert!(f.local.latency < f.best_remote.latency);
    }

    #[test]
    fn fig15_covers_all_machines() {
        let all = fig15_all();
        assert_eq!(all.len(), 3);
        assert!(all.iter().all(|f| f.local_sweep.len() == 15));
    }
}
