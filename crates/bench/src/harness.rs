//! A dependency-free micro-benchmark harness.
//!
//! The `benches/` binaries run on this instead of an external framework so
//! the workspace builds and benches fully offline. The loop is the classic
//! shape: warm up, time batches of the closure with [`std::time::Instant`],
//! and report the median over a configurable number of samples.
//!
//! Knobs (environment variables):
//! - `COARSE_BENCH_SAMPLES` — samples per benchmark (default 20);
//! - `COARSE_BENCH_MIN_BATCH_MS` — target milliseconds per timed batch
//!   (default 5; raises the iteration count until a batch takes this long).

use std::time::{Duration, Instant};

/// Re-export so benches can `use coarse_bench::harness::black_box`.
pub use std::hint::black_box;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// One group of related benchmarks, printed under a common heading.
pub struct Bench {
    group: String,
    samples: u64,
    min_batch: Duration,
}

impl Bench {
    /// Start a benchmark group with the given heading.
    pub fn group(name: &str) -> Self {
        println!("\n== {name} ==");
        Bench {
            group: name.to_string(),
            samples: env_u64("COARSE_BENCH_SAMPLES", 20).max(1),
            min_batch: Duration::from_millis(env_u64("COARSE_BENCH_MIN_BATCH_MS", 5)),
        }
    }

    /// Time `f` and print its median per-iteration latency.
    pub fn run<R>(&self, name: &str, mut f: impl FnMut() -> R) -> Duration {
        let per_iter = self.measure(&mut f);
        println!(
            "{:<44} {:>14}/iter",
            self.label(name),
            fmt_duration(per_iter)
        );
        per_iter
    }

    /// Time `f`, which processes `bytes` per iteration, and print both the
    /// median latency and the implied throughput.
    pub fn run_bytes<R>(&self, name: &str, bytes: u64, mut f: impl FnMut() -> R) -> Duration {
        let per_iter = self.measure(&mut f);
        let secs = per_iter.as_secs_f64();
        let gib_s = if secs > 0.0 {
            bytes as f64 / secs / (1u64 << 30) as f64
        } else {
            f64::INFINITY
        };
        println!(
            "{:<44} {:>14}/iter  {:>10.3} GiB/s",
            self.label(name),
            fmt_duration(per_iter),
            gib_s
        );
        per_iter
    }

    fn label(&self, name: &str) -> String {
        format!("{}/{}", self.group, name)
    }

    fn measure<R>(&self, f: &mut impl FnMut() -> R) -> Duration {
        // Grow the batch size until one batch meets the time floor, so
        // sub-microsecond closures are still timed against clock noise.
        let mut iters: u64 = 1;
        loop {
            let t = Self::time_batch(f, iters);
            if t >= self.min_batch || iters >= 1 << 24 {
                break;
            }
            iters = iters.saturating_mul(2);
        }
        let mut samples: Vec<Duration> = (0..self.samples)
            .map(|_| Self::time_batch(f, iters) / iters as u32)
            .collect();
        samples.sort_unstable();
        samples[samples.len() / 2]
    }

    fn time_batch<R>(f: &mut impl FnMut() -> R, iters: u64) -> Duration {
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        start.elapsed()
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_positive() {
        let b = Bench {
            group: "t".into(),
            samples: 3,
            min_batch: Duration::from_micros(50),
        };
        let d = b.run("spin", || (0..100u64).sum::<u64>());
        assert!(d > Duration::ZERO);
    }

    #[test]
    fn throughput_variant_runs() {
        let b = Bench {
            group: "t".into(),
            samples: 2,
            min_batch: Duration::from_micros(10),
        };
        let buf = vec![1u8; 4096];
        b.run_bytes("sum", buf.len() as u64, || {
            buf.iter().map(|&x| x as u64).sum::<u64>()
        });
    }

    #[test]
    fn duration_formatting_picks_sane_units() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500 ns");
        assert_eq!(fmt_duration(Duration::from_micros(150)), "150.00 µs");
        assert_eq!(fmt_duration(Duration::from_millis(25)), "25.00 ms");
        assert_eq!(fmt_duration(Duration::from_secs(12)), "12.00 s");
    }
}
