//! Criterion benches for the end-to-end training simulators themselves:
//! how fast each scheme's per-iteration timeline can be computed.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use coarse_fabric::machines::{aws_v100, PartitionScheme};
use coarse_models::zoo::{bert_large, resnet50};
use coarse_trainsim::{simulate_allreduce, simulate_coarse, simulate_dense};

fn bench_schemes(c: &mut Criterion) {
    let machine = aws_v100();
    let part = machine.partition(PartitionScheme::OneToOne);
    let mut group = c.benchmark_group("simulate_training");
    group.sample_size(10);
    for (model, batch) in [(resnet50(), 64u32), (bert_large(), 2)] {
        group.bench_with_input(
            BenchmarkId::new("dense", model.name()),
            &model,
            |b, model| {
                b.iter(|| black_box(simulate_dense(&machine, &part, model, batch, 3)));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("allreduce", model.name()),
            &model,
            |b, model| {
                b.iter(|| black_box(simulate_allreduce(&machine, &part, model, batch, 3)));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("coarse", model.name()),
            &model,
            |b, model| {
                b.iter(|| black_box(simulate_coarse(&machine, &part, model, batch, 3)));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_schemes);
criterion_main!(benches);
