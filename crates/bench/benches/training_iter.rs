//! Micro-benchmarks for the end-to-end training simulators themselves:
//! how fast each scheme's per-iteration timeline can be computed.
//!
//! Run with `cargo bench -p coarse-bench --features bench-deps`.

use coarse_bench::harness::{black_box, Bench};
use coarse_fabric::machines::{aws_v100, PartitionScheme};
use coarse_models::zoo::{bert_large, resnet50};
use coarse_trainsim::{simulate_allreduce, simulate_coarse, simulate_dense};

fn main() {
    let b = Bench::group("simulate_training");
    let machine = aws_v100();
    let part = machine.partition(PartitionScheme::OneToOne);
    for (model, batch) in [(resnet50(), 64u32), (bert_large(), 2)] {
        b.run(&format!("dense/{}", model.name()), || {
            black_box(simulate_dense(&machine, &part, &model, batch, 3))
        });
        b.run(&format!("allreduce/{}", model.name()), || {
            black_box(simulate_allreduce(&machine, &part, &model, batch, 3))
        });
        b.run(&format!("coarse/{}", model.name()), || {
            black_box(simulate_coarse(&machine, &part, &model, batch, 3))
        });
    }
}
