//! Micro-benchmarks for the copy-on-write parameter storage: snapshot
//! cost, sparse-update cost, and the dense-update worst case.
//!
//! Run with `cargo bench -p coarse-bench --features bench-deps`.

use coarse_bench::harness::{black_box, Bench};
use coarse_cci::storage::ParameterStore;
use coarse_cci::tensor::{Tensor, TensorId};

const ELEMS: usize = 1 << 20; // 4 MiB per tensor

fn store_with(tensors: u64) -> ParameterStore {
    let mut store = ParameterStore::new();
    for i in 0..tensors {
        store.insert(&Tensor::new(TensorId(i), vec![1.0; ELEMS]));
    }
    store
}

fn bench_snapshot() {
    let b = Bench::group("cow_snapshot");
    for &tensors in &[8u64, 64] {
        let mut store = store_with(tensors);
        b.run(&format!("{tensors}_tensors"), || {
            black_box(store.snapshot())
        });
    }
}

fn bench_update() {
    let b = Bench::group("cow_update");
    let bytes = (ELEMS * 4) as u64;

    {
        let mut store = store_with(1);
        let data = vec![1.0f32; ELEMS];
        b.run_bytes("unchanged", bytes, || {
            black_box(store.update(TensorId(0), black_box(&data)))
        });
    }

    {
        let mut store = store_with(1);
        let mut data = vec![1.0f32; ELEMS];
        let mut toggle = 2.0f32;
        b.run_bytes("sparse_after_snapshot", bytes, || {
            let _snap = store.snapshot();
            data[ELEMS / 2] = toggle;
            toggle += 1.0;
            black_box(store.update(TensorId(0), &data))
        });
    }

    {
        let mut store = store_with(1);
        let mut fill = 2.0f32;
        b.run_bytes("dense_in_place", bytes, || {
            let data = vec![fill; ELEMS];
            fill += 1.0;
            black_box(store.update(TensorId(0), &data))
        });
    }
}

fn main() {
    bench_snapshot();
    bench_update();
}
