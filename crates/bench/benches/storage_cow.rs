//! Criterion benches for the copy-on-write parameter storage: snapshot
//! cost, sparse-update cost, and the dense-update worst case.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use coarse_cci::storage::ParameterStore;
use coarse_cci::tensor::{Tensor, TensorId};

const ELEMS: usize = 1 << 20; // 4 MiB per tensor

fn store_with(tensors: u64) -> ParameterStore {
    let mut store = ParameterStore::new();
    for i in 0..tensors {
        store.insert(&Tensor::new(TensorId(i), vec![1.0; ELEMS]));
    }
    store
}

fn bench_snapshot(c: &mut Criterion) {
    let mut group = c.benchmark_group("cow_snapshot");
    for &tensors in &[8u64, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(tensors), &tensors, |b, &t| {
            let mut store = store_with(t);
            b.iter(|| black_box(store.snapshot()));
        });
    }
    group.finish();
}

fn bench_update(c: &mut Criterion) {
    let mut group = c.benchmark_group("cow_update");
    group.throughput(Throughput::Bytes((ELEMS * 4) as u64));

    group.bench_function("unchanged", |b| {
        let mut store = store_with(1);
        let data = vec![1.0f32; ELEMS];
        b.iter(|| black_box(store.update(TensorId(0), black_box(&data))));
    });

    group.bench_function("sparse_after_snapshot", |b| {
        let mut store = store_with(1);
        let mut data = vec![1.0f32; ELEMS];
        let mut toggle = 2.0f32;
        b.iter(|| {
            let _snap = store.snapshot();
            data[ELEMS / 2] = toggle;
            toggle += 1.0;
            black_box(store.update(TensorId(0), &data))
        });
    });

    group.bench_function("dense_in_place", |b| {
        let mut store = store_with(1);
        let mut fill = 2.0f32;
        b.iter(|| {
            let data = vec![fill; ELEMS];
            fill += 1.0;
            black_box(store.update(TensorId(0), &data))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_snapshot, bench_update);
criterion_main!(benches);
