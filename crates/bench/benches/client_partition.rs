//! Criterion benches for the client path: partitioning a large tensor into
//! shards and reconstructing it from pulled shards.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use coarse_cci::tensor::{Tensor, TensorId};
use coarse_core::client::ParameterClient;
use coarse_core::routing::RoutingTable;
use coarse_simcore::prelude::*;

fn client() -> ParameterClient {
    let mut topo = coarse_fabric::topology::Topology::new();
    let w = topo.add_device(coarse_fabric::device::DeviceKind::Gpu, "w", 0);
    let a = topo.add_device(coarse_fabric::device::DeviceKind::MemoryDevice, "a", 0);
    let b = topo.add_device(coarse_fabric::device::DeviceKind::MemoryDevice, "b", 0);
    ParameterClient::new(
        w,
        RoutingTable {
            lat_proxy: a,
            bw_proxy: b,
            threshold: ByteSize::kib(512),
            shard_size: ByteSize::mib(2),
            built_at: SimTime::ZERO,
        },
    )
}

fn bench_push_pull(c: &mut Criterion) {
    let mut group = c.benchmark_group("client_push_pull");
    for &elems in &[1usize << 16, 1 << 22] {
        group.throughput(Throughput::Bytes((elems * 4) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(elems), &elems, |b, &elems| {
            let mut cl = client();
            let tensor = Tensor::new(TensorId(1), vec![0.5; elems]);
            b.iter(|| {
                cl.push(black_box(&tensor));
                let mut rebuilt = None;
                while let Some(req) = cl.dequeue() {
                    rebuilt = cl.deliver(req.shard);
                }
                black_box(rebuilt)
            });
        });
    }
    group.finish();
}

fn bench_partition_only(c: &mut Criterion) {
    let tensor = Tensor::new(TensorId(1), vec![0.5; 1 << 22]);
    c.bench_function("tensor_partition_16m", |b| {
        b.iter(|| black_box(tensor.partition(1 << 19)));
    });
}

criterion_group!(benches, bench_push_pull, bench_partition_only);
criterion_main!(benches);
