//! Micro-benchmarks for the client path: partitioning a large tensor into
//! shards and reconstructing it from pulled shards.
//!
//! Run with `cargo bench -p coarse-bench --features bench-deps`.

use coarse_bench::harness::{black_box, Bench};
use coarse_cci::tensor::{Tensor, TensorId};
use coarse_core::client::ParameterClient;
use coarse_core::routing::RoutingTable;
use coarse_simcore::prelude::*;

fn client() -> ParameterClient {
    let mut topo = coarse_fabric::topology::Topology::new();
    let w = topo.add_device(coarse_fabric::device::DeviceKind::Gpu, "w", 0);
    let a = topo.add_device(coarse_fabric::device::DeviceKind::MemoryDevice, "a", 0);
    let b = topo.add_device(coarse_fabric::device::DeviceKind::MemoryDevice, "b", 0);
    ParameterClient::new(
        w,
        RoutingTable {
            lat_proxy: a,
            bw_proxy: b,
            threshold: ByteSize::kib(512),
            shard_size: ByteSize::mib(2),
            built_at: SimTime::ZERO,
        },
    )
}

fn bench_push_pull() {
    let b = Bench::group("client_push_pull");
    for &elems in &[1usize << 16, 1 << 22] {
        let mut cl = client();
        let tensor = Tensor::new(TensorId(1), vec![0.5; elems]);
        b.run_bytes(&format!("{elems}_elems"), (elems * 4) as u64, || {
            cl.push(black_box(&tensor));
            let mut rebuilt = None;
            while let Some(req) = cl.dequeue() {
                rebuilt = cl.deliver(req.shard);
            }
            black_box(rebuilt)
        });
    }
}

fn bench_partition_only() {
    let b = Bench::group("tensor_partition");
    let tensor = Tensor::new(TensorId(1), vec![0.5; 1 << 22]);
    b.run("partition_16m", || black_box(tensor.partition(1 << 19)));
}

fn main() {
    bench_push_pull();
    bench_partition_only();
}
