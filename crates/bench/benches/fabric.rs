//! Micro-benchmarks for the fabric: routing, single transfers, and the
//! all-pairs probe matrix.
//!
//! Run with `cargo bench -p coarse-bench --features bench-deps`.

use coarse_bench::harness::{black_box, Bench};
use coarse_fabric::engine::TransferEngine;
use coarse_fabric::machines::{aws_v100, sdsc_p100};
use coarse_fabric::probe;
use coarse_fabric::topology::LinkClass;
use coarse_simcore::prelude::*;

fn bench_routing() {
    let b = Bench::group("routing");
    let machine = aws_v100();
    let gpus = machine.gpus().to_vec();
    let topo = machine.into_topology();
    b.run("route_remote_pair", || {
        black_box(topo.route(black_box(gpus[0]), black_box(gpus[7])))
    });
}

fn bench_transfer() {
    let b = Bench::group("transfer");
    let machine = aws_v100();
    let gpus = machine.gpus().to_vec();
    let topo = machine.into_topology();
    for &mib in &[1u64, 64] {
        let mut engine = TransferEngine::new(topo.clone());
        let mut t = SimTime::ZERO;
        b.run(&format!("{mib}_mib"), || {
            let rec = engine
                .transfer(gpus[0], gpus[2], ByteSize::mib(mib), t)
                .unwrap();
            t = rec.end;
            black_box(rec)
        });
    }
}

fn bench_probe_matrix() {
    let b = Bench::group("probe_matrix");
    let machine = sdsc_p100();
    let gpus = machine.gpus().to_vec();
    let topo = machine.into_topology();
    b.run("fig8_matrix_p100", || {
        black_box(probe::bidirectional_matrix(
            &topo,
            &gpus,
            ByteSize::mib(16),
            |l| l.class() == LinkClass::Pcie,
        ))
    });
}

fn main() {
    bench_routing();
    bench_transfer();
    bench_probe_matrix();
}
