//! Criterion benches for the fabric: routing, single transfers, and the
//! all-pairs probe matrix.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use coarse_fabric::engine::TransferEngine;
use coarse_fabric::machines::{aws_v100, sdsc_p100};
use coarse_fabric::probe;
use coarse_fabric::topology::LinkClass;
use coarse_simcore::prelude::*;

fn bench_routing(c: &mut Criterion) {
    let machine = aws_v100();
    let gpus = machine.gpus().to_vec();
    let topo = machine.into_topology();
    c.bench_function("route_remote_pair", |b| {
        b.iter(|| black_box(topo.route(black_box(gpus[0]), black_box(gpus[7]))));
    });
}

fn bench_transfer(c: &mut Criterion) {
    let machine = aws_v100();
    let gpus = machine.gpus().to_vec();
    let topo = machine.into_topology();
    let mut group = c.benchmark_group("transfer");
    for &mib in &[1u64, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(mib), &mib, |b, &mib| {
            let mut engine = TransferEngine::new(topo.clone());
            let mut t = SimTime::ZERO;
            b.iter(|| {
                let rec = engine
                    .transfer(gpus[0], gpus[2], ByteSize::mib(mib), t)
                    .unwrap();
                t = rec.end;
                black_box(rec)
            });
        });
    }
    group.finish();
}

fn bench_probe_matrix(c: &mut Criterion) {
    let machine = sdsc_p100();
    let gpus = machine.gpus().to_vec();
    let topo = machine.into_topology();
    c.bench_function("fig8_matrix_p100", |b| {
        b.iter(|| {
            black_box(probe::bidirectional_matrix(
                &topo,
                &gpus,
                ByteSize::mib(16),
                |l| l.class() == LinkClass::Pcie,
            ))
        });
    });
}

criterion_group!(benches, bench_routing, bench_transfer, bench_probe_matrix);
criterion_main!(benches);
