//! Micro-benchmarks for the dual-synchronization optimizer and the
//! profiler's routing-table construction.
//!
//! Run with `cargo bench -p coarse-bench --features bench-deps`.

use coarse_bench::harness::{black_box, Bench};
use coarse_core::dualsync::{optimize, sweep, DualSyncInputs};
use coarse_core::profiler::build_routing_table;
use coarse_fabric::machines::{aws_v100, PartitionScheme};
use coarse_simcore::prelude::*;

fn inputs() -> DualSyncInputs {
    DualSyncInputs {
        workers: 4,
        total_bytes: ByteSize::mib(1280),
        proxy_bandwidth: Bandwidth::gib_per_sec(11.7),
        gpu_bandwidth: Bandwidth::gib_per_sec(22.0),
        forward: SimDuration::from_millis(82),
        backward: SimDuration::from_millis(163),
    }
}

fn bench_optimize() {
    let b = Bench::group("dualsync");
    let inp = inputs();
    b.run("optimize", || black_box(optimize(black_box(&inp))));
    b.run("sweep_101", || black_box(sweep(black_box(&inp), 101)));
}

fn bench_profiler() {
    let b = Bench::group("profiler");
    let machine = aws_v100();
    let part = machine.partition(PartitionScheme::OneToOne);
    let topo = machine.topology().clone();
    b.run("build_routing_table_v100", || {
        black_box(build_routing_table(
            &topo,
            part.workers[0],
            &part.mem_devices,
            SimTime::ZERO,
        ))
    });
}

fn main() {
    bench_optimize();
    bench_profiler();
}
