//! Criterion benches for the dual-synchronization optimizer and the
//! profiler's routing-table construction.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use coarse_core::dualsync::{optimize, sweep, DualSyncInputs};
use coarse_core::profiler::build_routing_table;
use coarse_fabric::machines::{aws_v100, PartitionScheme};
use coarse_simcore::prelude::*;

fn inputs() -> DualSyncInputs {
    DualSyncInputs {
        workers: 4,
        total_bytes: ByteSize::mib(1280),
        proxy_bandwidth: Bandwidth::gib_per_sec(11.7),
        gpu_bandwidth: Bandwidth::gib_per_sec(22.0),
        forward: SimDuration::from_millis(82),
        backward: SimDuration::from_millis(163),
    }
}

fn bench_optimize(c: &mut Criterion) {
    let inp = inputs();
    c.bench_function("dualsync_optimize", |b| {
        b.iter(|| black_box(optimize(black_box(&inp))));
    });
    c.bench_function("dualsync_sweep_101", |b| {
        b.iter(|| black_box(sweep(black_box(&inp), 101)));
    });
}

fn bench_profiler(c: &mut Criterion) {
    let machine = aws_v100();
    let part = machine.partition(PartitionScheme::OneToOne);
    let topo = machine.topology().clone();
    c.bench_function("build_routing_table_v100", |b| {
        b.iter(|| {
            black_box(build_routing_table(
                &topo,
                part.workers[0],
                &part.mem_devices,
                SimTime::ZERO,
            ))
        });
    });
}

criterion_group!(benches, bench_optimize, bench_profiler);
criterion_main!(benches);
