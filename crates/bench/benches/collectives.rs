//! Micro-benchmarks for the collective layer: the functional sync-core
//! ring on real data, and the timed ring collective on the fabric.
//!
//! Run with `cargo bench -p coarse-bench --features bench-deps`.

use coarse_bench::harness::{black_box, Bench};
use coarse_cci::synccore::{RingDirection, SyncGroup};
use coarse_collectives::functional;
use coarse_collectives::timed::ring_allreduce;
use coarse_fabric::engine::TransferEngine;
use coarse_fabric::machines::{aws_v100, PartitionScheme};
use coarse_fabric::topology::{LinkClass, LinkMask};
use coarse_simcore::prelude::*;

fn inputs(n: usize, len: usize) -> Vec<Vec<f32>> {
    (0..n)
        .map(|i| (0..len).map(|j| ((i * 31 + j) % 97) as f32).collect())
        .collect()
}

const CCI_ONLY: LinkMask = LinkMask::only(LinkClass::Cci);

fn bench_sync_core_ring() {
    let b = Bench::group("sync_core_ring");
    for &len in &[4096usize, 65_536, 1_048_576] {
        let data = inputs(4, len);
        let bytes = (4 * len * 4) as u64;
        b.run_bytes(&format!("ring/{len}"), bytes, || {
            let mut group = SyncGroup::new(4, 4096, RingDirection::Forward);
            black_box(group.allreduce_sum(black_box(&data)))
        });
        b.run_bytes(&format!("functional/{len}"), bytes, || {
            black_box(functional::allreduce_sum(black_box(&data)))
        });
    }
}

fn bench_timed_ring() {
    let b = Bench::group("timed_ring");
    let mut machine = aws_v100();
    let part = machine.partition(PartitionScheme::OneToOne);
    machine.augment_cci_ring(&part.mem_devices);
    let devs = part.mem_devices.clone();
    let ready = vec![SimTime::ZERO; devs.len()];
    for &mib in &[1u64, 16, 256] {
        b.run(&format!("{mib}_mib"), || {
            let mut engine = TransferEngine::new(machine.topology().clone());
            black_box(
                ring_allreduce(
                    &mut engine,
                    &devs,
                    ByteSize::mib(mib),
                    &ready,
                    RingDirection::Forward,
                    CCI_ONLY,
                )
                .unwrap(),
            )
        });
    }
}

fn main() {
    bench_sync_core_ring();
    bench_timed_ring();
}
