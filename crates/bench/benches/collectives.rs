//! Criterion benches for the collective layer: the functional sync-core
//! ring on real data, and the timed ring collective on the fabric.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use coarse_cci::synccore::{RingDirection, SyncGroup};
use coarse_collectives::functional::allreduce_sum;
use coarse_collectives::timed::ring_allreduce;
use coarse_fabric::engine::TransferEngine;
use coarse_fabric::machines::{aws_v100, PartitionScheme};
use coarse_fabric::topology::LinkClass;
use coarse_simcore::prelude::*;

fn inputs(n: usize, len: usize) -> Vec<Vec<f32>> {
    (0..n)
        .map(|i| (0..len).map(|j| ((i * 31 + j) % 97) as f32).collect())
        .collect()
}

fn bench_sync_core_ring(c: &mut Criterion) {
    let mut group = c.benchmark_group("sync_core_ring");
    for &len in &[4_096usize, 65_536, 1_048_576] {
        group.throughput(Throughput::Bytes((len * 4) as u64));
        group.bench_with_input(BenchmarkId::new("allreduce_sum", len), &len, |b, &len| {
            let data = inputs(4, len);
            let mut ring = SyncGroup::new(4, 4096, RingDirection::Forward);
            b.iter(|| black_box(ring.allreduce_sum(black_box(&data))));
        });
        group.bench_with_input(BenchmarkId::new("direct_sum", len), &len, |b, &len| {
            let data = inputs(4, len);
            b.iter(|| black_box(allreduce_sum(black_box(&data))));
        });
    }
    group.finish();
}

fn bench_timed_ring(c: &mut Criterion) {
    let mut machine = aws_v100();
    let part = machine.partition(PartitionScheme::OneToOne);
    machine.augment_cci_ring(&part.mem_devices);
    let devs = part.mem_devices.clone();
    let topo = machine.into_topology();
    let ready = vec![SimTime::ZERO; devs.len()];
    let mut group = c.benchmark_group("timed_ring_allreduce");
    for &mib in &[1u64, 16, 256] {
        group.bench_with_input(BenchmarkId::from_parameter(mib), &mib, |b, &mib| {
            b.iter(|| {
                let mut e = TransferEngine::new(topo.clone());
                black_box(
                    ring_allreduce(
                        &mut e,
                        &devs,
                        ByteSize::mib(mib),
                        &ready,
                        RingDirection::Forward,
                        |l| l.class() == LinkClass::Cci,
                    )
                    .unwrap(),
                )
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sync_core_ring, bench_timed_ring);
criterion_main!(benches);
