//! CLI-contract tests for the `figures` binary: the usage string must
//! enumerate every dispatchable subcommand, and bad invocations must exit 2
//! (the "usage error" code CI scripts key off) rather than 0 or a panic.

use std::process::Command;

/// Every subcommand `main` dispatches on (figure regenerators ride through
/// the `<figure>` placeholder and are listed separately by `list`).
const SUBCOMMANDS: [&str; 11] = [
    "list", "trace", "faults", "chaos", "validate", "report", "bench", "profile", "explain",
    "lint", "recover",
];

fn figures(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_figures"))
        .args(args)
        .output()
        .expect("figures binary runs")
}

#[test]
fn no_arguments_prints_usage_covering_every_subcommand() {
    let out = figures(&[]);
    assert_eq!(out.status.code(), Some(2), "no-args must be a usage error");
    let usage = String::from_utf8_lossy(&out.stderr);
    for sub in SUBCOMMANDS {
        assert!(
            usage.lines().any(|l| {
                l.trim_start()
                    .strip_prefix(sub)
                    .is_some_and(|rest| rest.starts_with(' ') || rest.starts_with(" ["))
            }),
            "usage does not document subcommand '{sub}':\n{usage}"
        );
    }
}

#[test]
fn help_prints_the_same_usage_and_exits_zero() {
    let out = figures(&["--help"]);
    assert!(out.status.success(), "--help must exit 0");
    let usage = String::from_utf8_lossy(&out.stderr);
    assert!(
        usage.contains("subcommands:"),
        "usage text missing: {usage}"
    );
}

#[test]
fn unknown_subcommand_is_a_usage_error() {
    let out = figures(&["definitely-not-a-subcommand"]);
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("unknown subcommand 'definitely-not-a-subcommand'"),
        "stderr should name the rejected subcommand: {err}"
    );
}

#[test]
fn unknown_recover_preset_is_a_usage_error() {
    let out = figures(&["recover", "fig99"]);
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("unknown recover preset 'fig99'"),
        "stderr should name the rejected preset: {err}"
    );
}

#[test]
fn unknown_explain_scenario_is_a_usage_error() {
    let out = figures(&["explain", "fig99"]);
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("unknown explain scenario 'fig99'"),
        "stderr should name the rejected scenario: {err}"
    );
}
