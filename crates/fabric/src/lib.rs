//! # coarse-fabric
//!
//! The interconnect-fabric substrate of the COARSE reproduction: device and
//! link graphs ([`topology`]), size-dependent effective-bandwidth models
//! ([`bandwidth`]), a FIFO cut-through transfer engine ([`engine`]), the
//! paper's three evaluation machines plus multi-node clusters
//! ([`machines`]), and profiler measurement kernels ([`probe`]).
//!
//! ```
//! use coarse_fabric::machines::sdsc_p100;
//! use coarse_fabric::engine::TransferEngine;
//! use coarse_simcore::prelude::*;
//!
//! let machine = sdsc_p100();
//! let gpus = machine.gpus().to_vec();
//! let mut engine = TransferEngine::new(machine.into_topology());
//! let rec = engine.transfer(gpus[0], gpus[1], ByteSize::mib(64), SimTime::ZERO)?;
//! assert!(rec.elapsed() > SimDuration::ZERO);
//! # Ok::<(), coarse_fabric::engine::TransferError>(())
//! ```

#![warn(missing_docs)]

pub mod bandwidth;
pub mod device;
pub mod diagnostics;
pub mod engine;
pub mod machines;
pub mod probe;
pub mod topology;

pub use bandwidth::BandwidthModel;
pub use device::{Device, DeviceId, DeviceKind};
pub use engine::{TransferEngine, TransferError, TransferRecord};
pub use machines::{Machine, Partition, PartitionScheme};
pub use topology::{Link, LinkClass, LinkId, Route, Topology};
