//! Size-dependent effective-bandwidth models.
//!
//! Serial-bus transfers do not reach peak bandwidth at small sizes: per-
//! transaction overheads dominate until the payload is large enough. The
//! paper's Fig. 14 measures exactly this — FPGA DMA bandwidth ramps with
//! access size and saturates at ≈2 MiB. [`BandwidthModel::Saturating`]
//! captures that ramp; [`BandwidthModel::Flat`] models interfaces whose
//! bandwidth is size-independent, like CPU load/store over CCI (Fig. 13's
//! flat "CCI" line).

use coarse_simcore::time::SimDuration;
use coarse_simcore::units::{Bandwidth, ByteSize};

/// Effective bandwidth as a function of transfer size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BandwidthModel {
    /// `eff(s) = peak · s / (s + half_size)`: reaches half of `peak` at
    /// `half_size` and saturates for `s ≫ half_size`.
    Saturating {
        /// Asymptotic peak bandwidth.
        peak: Bandwidth,
        /// Size at which half the peak is achieved.
        half_size: ByteSize,
    },
    /// Size-independent rate (fine-grained load/store interfaces).
    Flat {
        /// The constant rate.
        rate: Bandwidth,
    },
}

impl BandwidthModel {
    /// A saturating model calibrated so that ~97% of peak is reached at
    /// 2 MiB, matching the paper's DMA measurements (Fig. 14).
    pub fn pcie_like(peak: Bandwidth) -> Self {
        BandwidthModel::Saturating {
            peak,
            half_size: ByteSize::kib(64),
        }
    }

    /// The effective rate for a transfer of `size`.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero (a zero-byte transfer has no meaningful rate).
    pub fn effective(&self, size: ByteSize) -> Bandwidth {
        assert!(
            !size.is_zero(),
            "effective bandwidth of a zero-size transfer"
        );
        match *self {
            BandwidthModel::Saturating { peak, half_size } => {
                let s = size.as_f64();
                let h = half_size.as_f64();
                peak.scale(s / (s + h))
            }
            BandwidthModel::Flat { rate } => rate,
        }
    }

    /// The asymptotic (large-transfer) rate.
    pub fn peak(&self) -> Bandwidth {
        match *self {
            BandwidthModel::Saturating { peak, .. } => peak,
            BandwidthModel::Flat { rate } => rate,
        }
    }

    /// Serialization time of `size` at the effective rate (zero for zero
    /// bytes).
    pub fn serialization_time(&self, size: ByteSize) -> SimDuration {
        if size.is_zero() {
            return SimDuration::ZERO;
        }
        self.effective(size).transfer_time(size)
    }

    /// Returns a copy with the peak rate scaled by `factor` (e.g. the CCI
    /// protocol's ~90% of underlying serial-bus peak).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not positive and finite.
    pub fn scale_peak(&self, factor: f64) -> BandwidthModel {
        match *self {
            BandwidthModel::Saturating { peak, half_size } => BandwidthModel::Saturating {
                peak: peak.scale(factor),
                half_size,
            },
            BandwidthModel::Flat { rate } => BandwidthModel::Flat {
                rate: rate.scale(factor),
            },
        }
    }

    /// The smallest size in `candidates` whose effective bandwidth is at
    /// least `fraction` of peak — the paper's `S'` (smallest full-bandwidth
    /// shard size, §III-E). Returns `None` if no candidate qualifies.
    pub fn smallest_saturating_size(
        &self,
        candidates: &[ByteSize],
        fraction: f64,
    ) -> Option<ByteSize> {
        let threshold = self.peak().as_bytes_per_sec() * fraction;
        candidates
            .iter()
            .copied()
            .filter(|s| !s.is_zero())
            .find(|&s| self.effective(s).as_bytes_per_sec() >= threshold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pcie16() -> BandwidthModel {
        BandwidthModel::pcie_like(Bandwidth::gib_per_sec(13.0))
    }

    #[test]
    fn saturating_reaches_half_at_half_size() {
        let m = BandwidthModel::Saturating {
            peak: Bandwidth::gib_per_sec(10.0),
            half_size: ByteSize::kib(64),
        };
        let eff = m.effective(ByteSize::kib(64));
        assert!((eff.as_gib_per_sec() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn pcie_like_saturates_by_2mib() {
        let m = pcie16();
        let at_2mib = m.effective(ByteSize::mib(2)).as_gib_per_sec();
        assert!(
            at_2mib > 0.96 * 13.0,
            "expected ≥96% of peak at 2MiB, got {at_2mib}"
        );
        let at_4kib = m.effective(ByteSize::kib(4)).as_gib_per_sec();
        assert!(
            at_4kib < 0.1 * 13.0,
            "small transfers must be far from peak"
        );
    }

    #[test]
    fn effective_is_monotonic_in_size() {
        let m = pcie16();
        let sizes = [1u64, 512, 4096, 65536, 1 << 20, 1 << 24];
        let rates: Vec<f64> = sizes
            .iter()
            .map(|&s| m.effective(ByteSize::bytes(s)).as_bytes_per_sec())
            .collect();
        assert!(rates.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn flat_ignores_size() {
        let m = BandwidthModel::Flat {
            rate: Bandwidth::gib_per_sec(1.5),
        };
        assert_eq!(
            m.effective(ByteSize::bytes(64)),
            m.effective(ByteSize::gib(1))
        );
    }

    #[test]
    fn serialization_time_zero_for_empty() {
        assert_eq!(
            pcie16().serialization_time(ByteSize::ZERO),
            SimDuration::ZERO
        );
    }

    #[test]
    fn small_transfers_slower_than_naive_peak() {
        let m = pcie16();
        let naive = m.peak().transfer_time(ByteSize::kib(4));
        let actual = m.serialization_time(ByteSize::kib(4));
        assert!(actual > naive * 10);
    }

    #[test]
    fn scale_peak_scales() {
        let m = pcie16().scale_peak(0.9);
        assert!((m.peak().as_gib_per_sec() - 13.0 * 0.9).abs() < 1e-9);
    }

    #[test]
    fn smallest_saturating_size_finds_2mib() {
        let m = pcie16();
        let candidates: Vec<ByteSize> = (10..=26).map(|p| ByteSize::bytes(1 << p)).collect();
        let s = m.smallest_saturating_size(&candidates, 0.95).unwrap();
        // 64KiB half-size → 95% of peak needs s ≥ 19·64KiB ≈ 1.2MiB → first
        // power of two is 2MiB.
        assert_eq!(s, ByteSize::mib(2));
    }

    #[test]
    fn smallest_saturating_size_none_when_unreachable() {
        let m = pcie16();
        assert_eq!(
            m.smallest_saturating_size(&[ByteSize::bytes(512)], 0.95),
            None
        );
    }
}
