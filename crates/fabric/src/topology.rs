//! The fabric graph: devices joined by directed links, with deterministic
//! shortest-path routing.

use std::fmt;

use coarse_simcore::time::SimDuration;

use crate::bandwidth::BandwidthModel;
use crate::device::{Device, DeviceId, DeviceKind};

/// Identifies one *directed* link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkId(pub(crate) u32);

impl LinkId {
    /// The raw index of this link in its topology.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "link{}", self.0)
    }
}

/// The physical technology of a link; routing can be restricted by class
/// (e.g. the profiler measures PCIe paths with NVLink disabled, §IV-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkClass {
    /// Serial bus (PCIe) lane bundle.
    Pcie,
    /// NVLink point-to-point GPU interconnect.
    NvLink,
    /// Cache-coherent interconnect path between memory devices.
    Cci,
    /// Inter-node network (Ethernet / InfiniBand).
    Network,
}

impl LinkClass {
    /// All classes, in declaration order.
    pub const ALL: [LinkClass; 4] = [
        LinkClass::Pcie,
        LinkClass::NvLink,
        LinkClass::Cci,
        LinkClass::Network,
    ];

    const fn bit(self) -> u8 {
        match self {
            LinkClass::Pcie => 1 << 0,
            LinkClass::NvLink => 1 << 1,
            LinkClass::Cci => 1 << 2,
            LinkClass::Network => 1 << 3,
        }
    }
}

/// A set of [`LinkClass`]es, restricting which links a route may traverse.
///
/// Replaces ad-hoc `Fn(&Link) -> bool` predicates on the transfer hot path:
/// a mask is one interned byte, so routes can be cached per
/// `(src, dst, mask)` and compared without invoking a closure. Built from
/// `const` combinators:
///
/// ```
/// use coarse_fabric::topology::{LinkClass, LinkMask};
///
/// const PCIE_ONLY: LinkMask = LinkMask::only(LinkClass::Pcie);
/// const NO_NVLINK: LinkMask = LinkMask::ALL.without(LinkClass::NvLink);
/// assert!(NO_NVLINK.allows(LinkClass::Cci));
/// assert!(!NO_NVLINK.allows(LinkClass::NvLink));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LinkMask(u8);

impl LinkMask {
    /// Accepts every link class.
    pub const ALL: LinkMask = LinkMask(0b1111);
    /// Accepts no link class (routes only device-to-itself).
    pub const NONE: LinkMask = LinkMask(0);

    /// A mask accepting exactly one class.
    pub const fn only(class: LinkClass) -> LinkMask {
        LinkMask(class.bit())
    }

    /// This mask, additionally accepting `class`.
    pub const fn with(self, class: LinkClass) -> LinkMask {
        LinkMask(self.0 | class.bit())
    }

    /// This mask, with `class` removed.
    pub const fn without(self, class: LinkClass) -> LinkMask {
        LinkMask(self.0 & !class.bit())
    }

    /// Whether links of `class` may be traversed.
    pub fn allows(self, class: LinkClass) -> bool {
        self.0 & class.bit() != 0
    }

    /// The raw bit pattern, a dense index in `0..16` (used to key
    /// per-mask route caches).
    pub fn bits(self) -> u8 {
        self.0
    }
}

/// A directed edge of the fabric graph.
#[derive(Debug, Clone)]
pub struct Link {
    pub(crate) id: LinkId,
    pub(crate) src: DeviceId,
    pub(crate) dst: DeviceId,
    pub(crate) model: BandwidthModel,
    pub(crate) latency: SimDuration,
    pub(crate) class: LinkClass,
}

impl Link {
    /// This link's identifier.
    pub fn id(&self) -> LinkId {
        self.id
    }
    /// Source device.
    pub fn src(&self) -> DeviceId {
        self.src
    }
    /// Destination device.
    pub fn dst(&self) -> DeviceId {
        self.dst
    }
    /// The bandwidth model of this link.
    pub fn model(&self) -> &BandwidthModel {
        &self.model
    }
    /// Propagation + protocol latency of this hop.
    pub fn latency(&self) -> SimDuration {
        self.latency
    }
    /// Physical technology class.
    pub fn class(&self) -> LinkClass {
        self.class
    }
}

/// A loop-free directed path through the fabric.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Route {
    pub(crate) links: Vec<LinkId>,
    pub(crate) total_latency: SimDuration,
}

impl Route {
    /// The links along the path, in traversal order.
    pub fn links(&self) -> &[LinkId] {
        &self.links
    }

    /// Sum of per-hop latencies.
    pub fn total_latency(&self) -> SimDuration {
        self.total_latency
    }

    /// Number of hops.
    pub fn hops(&self) -> usize {
        self.links.len()
    }
}

/// The interconnect fabric of one or more server nodes.
#[derive(Debug, Clone, Default)]
pub struct Topology {
    devices: Vec<Device>,
    links: Vec<Link>,
    /// Outgoing link ids per device.
    adjacency: Vec<Vec<LinkId>>,
    /// Whether endpoints may transfer peer-to-peer (bypassing CPU staging).
    p2p: bool,
}

impl Topology {
    /// An empty fabric with peer-to-peer transfers enabled.
    pub fn new() -> Self {
        Topology {
            devices: Vec::new(),
            links: Vec::new(),
            adjacency: Vec::new(),
            p2p: true,
        }
    }

    /// Disables endpoint peer-to-peer transfers: GPU↔GPU and GPU↔memory-
    /// device traffic must be staged through the host CPU (the paper's AWS
    /// T4 machine, §V-D).
    pub fn set_p2p(&mut self, enabled: bool) {
        self.p2p = enabled;
    }

    /// Whether peer-to-peer endpoint transfers are supported.
    pub fn p2p_enabled(&self) -> bool {
        self.p2p
    }

    /// Adds a device and returns its id.
    pub fn add_device(&mut self, kind: DeviceKind, name: impl Into<String>, node: u32) -> DeviceId {
        let id = DeviceId(self.devices.len() as u32);
        self.devices.push(Device {
            id,
            kind,
            name: name.into(),
            node,
        });
        self.adjacency.push(Vec::new());
        id
    }

    /// Adds one directed link.
    ///
    /// # Panics
    ///
    /// Panics if `src` or `dst` is not a device of this topology, or if they
    /// are equal.
    pub fn add_link(
        &mut self,
        src: DeviceId,
        dst: DeviceId,
        model: BandwidthModel,
        latency: SimDuration,
        class: LinkClass,
    ) -> LinkId {
        assert!(src.index() < self.devices.len(), "unknown src device");
        assert!(dst.index() < self.devices.len(), "unknown dst device");
        assert_ne!(src, dst, "self-links are not allowed");
        let id = LinkId(self.links.len() as u32);
        self.links.push(Link {
            id,
            src,
            dst,
            model,
            latency,
            class,
        });
        self.adjacency[src.index()].push(id);
        id
    }

    /// Adds a full-duplex pair of links (one per direction) with identical
    /// characteristics — the normal shape of serial buses, whose two
    /// directions carry independent traffic (§III-E "bidirectional data
    /// transfer").
    pub fn add_duplex(
        &mut self,
        a: DeviceId,
        b: DeviceId,
        model: BandwidthModel,
        latency: SimDuration,
        class: LinkClass,
    ) -> (LinkId, LinkId) {
        let fwd = self.add_link(a, b, model, latency, class);
        let rev = self.add_link(b, a, model, latency, class);
        (fwd, rev)
    }

    /// The device with id `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this topology.
    pub fn device(&self, id: DeviceId) -> &Device {
        &self.devices[id.index()]
    }

    /// All devices.
    pub fn devices(&self) -> impl Iterator<Item = &Device> {
        self.devices.iter()
    }

    /// All devices of a given kind, in id order.
    pub fn devices_of_kind(&self, kind: DeviceKind) -> Vec<DeviceId> {
        self.devices
            .iter()
            .filter(|d| d.kind == kind)
            .map(|d| d.id)
            .collect()
    }

    /// The host CPU of server node `node`.
    ///
    /// # Panics
    ///
    /// Panics if the node has no CPU device.
    pub fn host_cpu(&self, node: u32) -> DeviceId {
        self.devices
            .iter()
            .find(|d| d.kind == DeviceKind::Cpu && d.node == node)
            .map(|d| d.id)
            // simlint: allow(panic-in-library, reason = "every node hosts a CPU by MachineBuilder construction")
            .expect("node has no CPU device")
    }

    /// The link with id `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this topology.
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.index()]
    }

    /// All links.
    pub fn links(&self) -> impl Iterator<Item = &Link> {
        self.links.iter()
    }

    /// Number of directed links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Number of devices.
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    /// Deterministic min-cost route from `src` to `dst` over links accepted
    /// by `allow`. Cost is lexicographic `(hops, total latency)`; ties break
    /// on link insertion order, so routes are stable across runs.
    ///
    /// Returns `None` if `dst` is unreachable through allowed links.
    pub fn route_filtered(
        &self,
        src: DeviceId,
        dst: DeviceId,
        allow: impl Fn(&Link) -> bool,
    ) -> Option<Route> {
        if src == dst {
            return Some(Route {
                links: Vec::new(),
                total_latency: SimDuration::ZERO,
            });
        }
        // Dijkstra over lexicographic (hops, latency_ns) cost. Every edge
        // adds exactly one hop, so the settled order is by hop level; the
        // priority heap collapses to one interned-ID bucket per hop level,
        // sorted by `(latency, device)` — the same deterministic ordering
        // primitive as the event core's `(time, insertion)` key.
        let n = self.devices.len();
        let mut best: Vec<(u32, u64)> = vec![(u32::MAX, u64::MAX); n];
        let mut via: Vec<Option<LinkId>> = vec![None; n];
        best[src.index()] = (0, 0);
        // `(latency_ns, device)` entries of the current hop level.
        let mut frontier: Vec<(u64, DeviceId)> = vec![(0, src)];
        let mut next_frontier: Vec<(u64, DeviceId)> = Vec::new();
        let mut hops = 0u32;
        'levels: while !frontier.is_empty() {
            frontier.sort_unstable();
            for &(lat, device) in &frontier {
                // A device improved twice within one level appears twice;
                // the later (worse) entry is stale.
                if (hops, lat) > best[device.index()] {
                    continue;
                }
                if device == dst {
                    break 'levels;
                }
                for &lid in &self.adjacency[device.index()] {
                    let link = &self.links[lid.index()];
                    if !allow(link) {
                        continue;
                    }
                    // Transfers terminate at non-forwarding endpoints: an
                    // intermediate hop through e.g. a GPU is not a valid route
                    // (that would require staging, handled above this layer).
                    if device != src && !self.devices[device.index()].kind.can_forward() {
                        continue;
                    }
                    let next = (hops + 1, lat + link.latency.as_nanos());
                    if next < best[link.dst.index()] {
                        best[link.dst.index()] = next;
                        via[link.dst.index()] = Some(lid);
                        next_frontier.push((next.1, link.dst));
                    }
                }
            }
            frontier.clear();
            std::mem::swap(&mut frontier, &mut next_frontier);
            hops += 1;
        }
        if best[dst.index()].0 == u32::MAX {
            return None;
        }
        let mut links = Vec::new();
        let mut cur = dst;
        while cur != src {
            // simlint: allow(panic-in-library, reason = "the BFS predecessor chain is complete for any reachable target")
            let lid = via[cur.index()].expect("route reconstruction broke");
            links.push(lid);
            cur = self.links[lid.index()].src;
        }
        links.reverse();
        let total_latency = links.iter().map(|&l| self.links[l.index()].latency).sum();
        Some(Route {
            links,
            total_latency,
        })
    }

    /// Deterministic min-cost route over links whose class is in `mask`.
    /// Equivalent to [`route_filtered`](Self::route_filtered) with a
    /// class-membership predicate; the interned mask is what the transfer
    /// engine's route cache keys on.
    pub fn route_masked(&self, src: DeviceId, dst: DeviceId, mask: LinkMask) -> Option<Route> {
        self.route_filtered(src, dst, |l| mask.allows(l.class()))
    }

    /// Deterministic min-cost route over all links.
    pub fn route(&self, src: DeviceId, dst: DeviceId) -> Option<Route> {
        self.route_filtered(src, dst, |_| true)
    }

    /// The bottleneck (minimum) effective bandwidth along `route` for a
    /// transfer of `size`.
    ///
    /// # Panics
    ///
    /// Panics if the route is empty or `size` is zero.
    pub fn bottleneck(
        &self,
        route: &Route,
        size: coarse_simcore::units::ByteSize,
    ) -> coarse_simcore::units::Bandwidth {
        assert!(!route.links.is_empty(), "bottleneck of an empty route");
        route
            .links
            .iter()
            .map(|&l| self.links[l.index()].model.effective(size))
            .reduce(|a, b| a.min(b))
            // simlint: allow(panic-in-library, reason = "routes returned by plan() are non-empty")
            .expect("non-empty route")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coarse_simcore::units::{Bandwidth, ByteSize};

    fn latency_us(us: u64) -> SimDuration {
        SimDuration::from_micros(us)
    }

    /// gpu0 — sw — gpu1, sw — cpu.
    fn small_topo() -> (Topology, DeviceId, DeviceId, DeviceId, DeviceId) {
        let mut t = Topology::new();
        let g0 = t.add_device(DeviceKind::Gpu, "gpu0", 0);
        let g1 = t.add_device(DeviceKind::Gpu, "gpu1", 0);
        let sw = t.add_device(DeviceKind::Switch, "sw0", 0);
        let cpu = t.add_device(DeviceKind::Cpu, "cpu0", 0);
        let m = BandwidthModel::pcie_like(Bandwidth::gib_per_sec(13.0));
        t.add_duplex(g0, sw, m, latency_us(1), LinkClass::Pcie);
        t.add_duplex(g1, sw, m, latency_us(1), LinkClass::Pcie);
        t.add_duplex(sw, cpu, m, latency_us(1), LinkClass::Pcie);
        (t, g0, g1, sw, cpu)
    }

    #[test]
    fn route_through_switch() {
        let (t, g0, g1, _, _) = small_topo();
        let r = t.route(g0, g1).unwrap();
        assert_eq!(r.hops(), 2);
        assert_eq!(r.total_latency(), latency_us(2));
    }

    #[test]
    fn route_to_self_is_empty() {
        let (t, g0, ..) = small_topo();
        let r = t.route(g0, g0).unwrap();
        assert_eq!(r.hops(), 0);
        assert_eq!(r.total_latency(), SimDuration::ZERO);
    }

    #[test]
    fn endpoints_do_not_forward() {
        // gpu0 — gpu1 — cpu: no switch, so gpu0 cannot reach cpu *through*
        // gpu1.
        let mut t = Topology::new();
        let g0 = t.add_device(DeviceKind::Gpu, "gpu0", 0);
        let g1 = t.add_device(DeviceKind::Gpu, "gpu1", 0);
        let cpu = t.add_device(DeviceKind::Cpu, "cpu0", 0);
        let m = BandwidthModel::pcie_like(Bandwidth::gib_per_sec(13.0));
        t.add_duplex(g0, g1, m, latency_us(1), LinkClass::Pcie);
        t.add_duplex(g1, cpu, m, latency_us(1), LinkClass::Pcie);
        assert!(t.route(g0, cpu).is_none());
        assert!(t.route(g0, g1).is_some());
    }

    #[test]
    fn filtered_route_excludes_class() {
        let mut t = Topology::new();
        let g0 = t.add_device(DeviceKind::Gpu, "gpu0", 0);
        let g1 = t.add_device(DeviceKind::Gpu, "gpu1", 0);
        let sw = t.add_device(DeviceKind::Switch, "sw", 0);
        let m = BandwidthModel::pcie_like(Bandwidth::gib_per_sec(13.0));
        // Fast NVLink direct, slower PCIe through the switch.
        t.add_duplex(
            g0,
            g1,
            BandwidthModel::pcie_like(Bandwidth::gib_per_sec(25.0)),
            latency_us(1),
            LinkClass::NvLink,
        );
        t.add_duplex(g0, sw, m, latency_us(1), LinkClass::Pcie);
        t.add_duplex(g1, sw, m, latency_us(1), LinkClass::Pcie);
        let direct = t.route(g0, g1).unwrap();
        assert_eq!(direct.hops(), 1);
        let pcie_only = t
            .route_filtered(g0, g1, |l| l.class() != LinkClass::NvLink)
            .unwrap();
        assert_eq!(pcie_only.hops(), 2);
    }

    #[test]
    fn masked_route_matches_filtered_route() {
        let mut t = Topology::new();
        let g0 = t.add_device(DeviceKind::Gpu, "gpu0", 0);
        let g1 = t.add_device(DeviceKind::Gpu, "gpu1", 0);
        let sw = t.add_device(DeviceKind::Switch, "sw", 0);
        let m = BandwidthModel::pcie_like(Bandwidth::gib_per_sec(13.0));
        t.add_duplex(g0, g1, m, latency_us(1), LinkClass::NvLink);
        t.add_duplex(g0, sw, m, latency_us(1), LinkClass::Pcie);
        t.add_duplex(g1, sw, m, latency_us(1), LinkClass::Pcie);
        for mask in [
            LinkMask::ALL,
            LinkMask::only(LinkClass::Pcie),
            LinkMask::ALL.without(LinkClass::NvLink),
            LinkMask::only(LinkClass::Cci),
            LinkMask::NONE,
        ] {
            let masked = t.route_masked(g0, g1, mask);
            let filtered = t.route_filtered(g0, g1, |l| mask.allows(l.class()));
            assert_eq!(masked, filtered, "mask {mask:?}");
        }
        assert_eq!(t.route_masked(g0, g1, LinkMask::NONE), None);
        // Masks are one interned byte each; all 16 subsets are distinct.
        let mut bits: Vec<u8> = Vec::new();
        for a in [LinkMask::NONE, LinkMask::only(LinkClass::Pcie)] {
            for b in [a, a.with(LinkClass::NvLink)] {
                for c in [b, b.with(LinkClass::Cci)] {
                    for d in [c, c.with(LinkClass::Network)] {
                        bits.push(d.bits());
                    }
                }
            }
        }
        bits.sort_unstable();
        bits.dedup();
        assert_eq!(bits.len(), 16);
    }

    #[test]
    fn prefers_lower_latency_on_equal_hops() {
        let mut t = Topology::new();
        let a = t.add_device(DeviceKind::Gpu, "a", 0);
        let b = t.add_device(DeviceKind::Gpu, "b", 0);
        let s1 = t.add_device(DeviceKind::Switch, "s1", 0);
        let s2 = t.add_device(DeviceKind::Switch, "s2", 0);
        let m = BandwidthModel::pcie_like(Bandwidth::gib_per_sec(13.0));
        t.add_duplex(a, s1, m, latency_us(10), LinkClass::Pcie);
        t.add_duplex(s1, b, m, latency_us(10), LinkClass::Pcie);
        t.add_duplex(a, s2, m, latency_us(1), LinkClass::Pcie);
        t.add_duplex(s2, b, m, latency_us(1), LinkClass::Pcie);
        let r = t.route(a, b).unwrap();
        assert_eq!(r.total_latency(), latency_us(2));
    }

    #[test]
    fn bottleneck_is_minimum() {
        let mut t = Topology::new();
        let a = t.add_device(DeviceKind::Gpu, "a", 0);
        let b = t.add_device(DeviceKind::Gpu, "b", 0);
        let s = t.add_device(DeviceKind::Switch, "s", 0);
        t.add_duplex(
            a,
            s,
            BandwidthModel::pcie_like(Bandwidth::gib_per_sec(13.0)),
            latency_us(1),
            LinkClass::Pcie,
        );
        t.add_duplex(
            s,
            b,
            BandwidthModel::pcie_like(Bandwidth::gib_per_sec(5.0)),
            latency_us(1),
            LinkClass::Pcie,
        );
        let r = t.route(a, b).unwrap();
        let bw = t.bottleneck(&r, ByteSize::mib(64));
        assert!(bw.as_gib_per_sec() < 5.0);
        assert!(bw.as_gib_per_sec() > 4.8);
    }

    #[test]
    fn host_cpu_lookup() {
        let (t, _, _, _, cpu) = small_topo();
        assert_eq!(t.host_cpu(0), cpu);
    }

    #[test]
    #[should_panic(expected = "self-links")]
    fn self_link_rejected() {
        let mut t = Topology::new();
        let a = t.add_device(DeviceKind::Gpu, "a", 0);
        let m = BandwidthModel::pcie_like(Bandwidth::gib_per_sec(13.0));
        t.add_link(a, a, m, SimDuration::ZERO, LinkClass::Pcie);
    }

    #[test]
    fn devices_of_kind_in_order() {
        let (t, g0, g1, ..) = small_topo();
        assert_eq!(t.devices_of_kind(DeviceKind::Gpu), vec![g0, g1]);
    }
}
