//! Communication micro-benchmarks ("the profiler's measurement kernels").
//!
//! COARSE builds its routing tables from measured point-to-point latency and
//! bandwidth (§III-E). These probes run transfers on a scratch
//! [`TransferEngine`] and report achieved figures; they also regenerate the
//! paper's Fig. 8 bandwidth matrices and the Fig. 13/14/15 size sweeps.

use coarse_simcore::time::{SimDuration, SimTime};
use coarse_simcore::units::ByteSize;

use crate::device::DeviceId;
use crate::engine::TransferEngine;
use crate::topology::{LinkMask, Topology};

/// Number of back-to-back transfers per measurement; enough to amortize the
/// first transfer's latency.
const PROBE_REPEATS: u64 = 8;

/// One point-to-point measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProbeResult {
    /// Achieved one-direction bandwidth, bytes/sec.
    pub unidirectional: f64,
    /// Achieved two-direction aggregate bandwidth, bytes/sec.
    pub bidirectional: f64,
    /// Delivery latency of a minimal (4 KiB) transfer.
    pub latency: SimDuration,
}

impl ProbeResult {
    /// Unidirectional bandwidth in GiB/s.
    pub fn uni_gib(&self) -> f64 {
        self.unidirectional / (1u64 << 30) as f64
    }

    /// Bidirectional bandwidth in GiB/s.
    pub fn bidir_gib(&self) -> f64 {
        self.bidirectional / (1u64 << 30) as f64
    }
}

/// Measures achieved one-direction bandwidth `a → b` at `size`, in
/// bytes/sec, over link classes in `mask`.
///
/// # Panics
///
/// Panics if no allowed route exists between the endpoints.
pub fn measure_unidirectional(
    topo: &Topology,
    a: DeviceId,
    b: DeviceId,
    size: ByteSize,
    mask: LinkMask,
) -> f64 {
    let mut eng = TransferEngine::new(topo.clone());
    let mut first_start = None;
    let mut last_end = SimTime::ZERO;
    for _ in 0..PROBE_REPEATS {
        let rec = eng
            .transfer_masked(a, b, size, last_end, mask)
            // simlint: allow(panic-in-library, reason = "probe endpoints are chosen from the probed machine's connected topology")
            .expect("probe endpoints must be connected");
        first_start.get_or_insert(rec.start);
        last_end = rec.end;
    }
    // simlint: allow(panic-in-library, reason = "the probe scheduled at least one transfer in the loop above")
    let elapsed = last_end - first_start.expect("at least one transfer ran");
    (size.as_f64() * PROBE_REPEATS as f64) / elapsed.as_secs_f64()
}

/// Measures achieved aggregate bandwidth with both directions saturated
/// (`a → b` and `b → a` concurrently), in bytes/sec.
///
/// # Panics
///
/// Panics if no allowed route exists between the endpoints.
pub fn measure_bidirectional(
    topo: &Topology,
    a: DeviceId,
    b: DeviceId,
    size: ByteSize,
    mask: LinkMask,
) -> f64 {
    let mut eng = TransferEngine::new(topo.clone());
    let mut fwd_end = SimTime::ZERO;
    let mut rev_end = SimTime::ZERO;
    for _ in 0..PROBE_REPEATS {
        fwd_end = eng
            .transfer_masked(a, b, size, fwd_end, mask)
            // simlint: allow(panic-in-library, reason = "probe endpoints are chosen from the probed machine's connected topology")
            .expect("probe endpoints must be connected")
            .end;
        rev_end = eng
            .transfer_masked(b, a, size, rev_end, mask)
            // simlint: allow(panic-in-library, reason = "probe endpoints are chosen from the probed machine's connected topology")
            .expect("probe endpoints must be connected")
            .end;
    }
    let makespan = fwd_end.max(rev_end);
    (size.as_f64() * 2.0 * PROBE_REPEATS as f64) / makespan.as_secs_f64()
}

/// Measures delivery latency of a minimal transfer `a → b`.
///
/// # Panics
///
/// Panics if no allowed route exists between the endpoints.
pub fn measure_latency(topo: &Topology, a: DeviceId, b: DeviceId, mask: LinkMask) -> SimDuration {
    let mut eng = TransferEngine::new(topo.clone());
    let rec = eng
        .transfer_masked(a, b, ByteSize::kib(4), SimTime::ZERO, mask)
        // simlint: allow(panic-in-library, reason = "probe endpoints are chosen from the probed machine's connected topology")
        .expect("probe endpoints must be connected");
    rec.elapsed()
}

/// Full point-to-point probe between `a` and `b` at `size`.
pub fn probe_pair(
    topo: &Topology,
    a: DeviceId,
    b: DeviceId,
    size: ByteSize,
    mask: LinkMask,
) -> ProbeResult {
    ProbeResult {
        unidirectional: measure_unidirectional(topo, a, b, size, mask),
        bidirectional: measure_bidirectional(topo, a, b, size, mask),
        latency: measure_latency(topo, a, b, mask),
    }
}

/// The all-pairs bidirectional bandwidth matrix of Fig. 8, in GiB/s.
/// `matrix[i][j]` is the aggregate bidirectional bandwidth between
/// `devices[i]` and `devices[j]`; the diagonal is 0.
pub fn bidirectional_matrix(
    topo: &Topology,
    devices: &[DeviceId],
    size: ByteSize,
    mask: LinkMask,
) -> Vec<Vec<f64>> {
    let n = devices.len();
    let mut m = vec![vec![0.0; n]; n];
    for i in 0..n {
        for j in 0..n {
            if i != j {
                m[i][j] = measure_bidirectional(topo, devices[i], devices[j], size, mask)
                    / (1u64 << 30) as f64;
            }
        }
    }
    m
}

/// Bandwidth-vs-size sweep between two endpoints: the Fig. 13/14/15 curve
/// shape. Returns `(size, bytes_per_sec)` pairs.
pub fn bandwidth_sweep(
    topo: &Topology,
    a: DeviceId,
    b: DeviceId,
    sizes: &[ByteSize],
    mask: LinkMask,
) -> Vec<(ByteSize, f64)> {
    sizes
        .iter()
        .map(|&s| (s, measure_unidirectional(topo, a, b, s, mask)))
        .collect()
}

/// Standard probe sizes: powers of two from 4 KiB to 64 MiB.
pub fn standard_sizes() -> Vec<ByteSize> {
    (12..=26).map(|p| ByteSize::bytes(1u64 << p)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machines::{aws_v100, sdsc_p100};
    use crate::topology::LinkClass;

    const NO_NVLINK: LinkMask = LinkMask::ALL.without(LinkClass::NvLink);

    #[test]
    fn bidirectional_roughly_doubles_unidirectional() {
        let m = sdsc_p100();
        let gpus = m.gpus().to_vec();
        let r = probe_pair(m.topology(), gpus[0], gpus[1], ByteSize::mib(64), NO_NVLINK);
        // §III-E: 13 GiB/s unidirectional, ~25 GiB/s bidirectional.
        assert!((r.uni_gib() - 13.0).abs() < 1.0, "uni {}", r.uni_gib());
        assert!(
            r.bidir_gib() > 1.8 * r.uni_gib(),
            "bidir {} should be near 2x uni {}",
            r.bidir_gib(),
            r.uni_gib()
        );
    }

    #[test]
    fn latency_positive_and_small() {
        let m = sdsc_p100();
        let gpus = m.gpus().to_vec();
        let lat = measure_latency(m.topology(), gpus[0], gpus[1], NO_NVLINK);
        assert!(lat > SimDuration::ZERO);
        assert!(lat < SimDuration::from_millis(1));
    }

    #[test]
    fn matrix_symmetric_and_zero_diagonal() {
        let m = sdsc_p100();
        let gpus = m.gpus().to_vec();
        let mat = bidirectional_matrix(m.topology(), &gpus, ByteSize::mib(16), NO_NVLINK);
        for (i, row) in mat.iter().enumerate() {
            assert_eq!(row[i], 0.0);
            for (j, &v) in row.iter().enumerate() {
                assert!((v - mat[j][i]).abs() < 0.2);
            }
        }
    }

    #[test]
    fn v100_matrix_shows_anti_locality() {
        let m = aws_v100();
        let gpus = m.gpus().to_vec();
        let mat = bidirectional_matrix(m.topology(), &gpus[..4], ByteSize::mib(16), NO_NVLINK);
        // gpus 0,1 share a switch; 0,2 do not.
        assert!(
            mat[0][2] > mat[0][1] * 1.3,
            "remote {} must exceed local {}",
            mat[0][2],
            mat[0][1]
        );
    }

    #[test]
    fn sweep_is_monotonic() {
        let m = sdsc_p100();
        let gpus = m.gpus().to_vec();
        let pts = bandwidth_sweep(m.topology(), gpus[0], gpus[1], &standard_sizes(), NO_NVLINK);
        assert_eq!(pts.len(), 15);
        for w in pts.windows(2) {
            assert!(
                w[1].1 >= w[0].1 * 0.999,
                "bandwidth must not drop with size"
            );
        }
    }
}
