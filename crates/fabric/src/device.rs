//! Devices: the vertices of the interconnect fabric.

use std::fmt;

/// Identifies a device within one [`Topology`](crate::topology::Topology).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DeviceId(pub(crate) u32);

impl DeviceId {
    /// The raw index of this device in its topology.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for DeviceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dev{}", self.0)
    }
}

/// What a device is; determines which roles it can play.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceKind {
    /// Host CPU socket (also acts as the PCIe host bridge / root complex).
    Cpu,
    /// A worker accelerator.
    Gpu,
    /// A CCI disaggregated memory device (on-device DRAM + processor).
    MemoryDevice,
    /// A serial-bus (PCIe) switch.
    Switch,
    /// A network interface card connecting nodes.
    Nic,
}

impl DeviceKind {
    /// True for devices that terminate transfers (not switches).
    pub fn is_endpoint(self) -> bool {
        !matches!(self, DeviceKind::Switch)
    }

    /// True for devices that forward traffic not addressed to them: PCIe
    /// switches, the CPU (root complex / host bridge) and NICs. GPUs and
    /// memory devices only terminate transfers.
    pub fn can_forward(self) -> bool {
        matches!(self, DeviceKind::Switch | DeviceKind::Cpu | DeviceKind::Nic)
    }
}

impl fmt::Display for DeviceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DeviceKind::Cpu => "cpu",
            DeviceKind::Gpu => "gpu",
            DeviceKind::MemoryDevice => "memdev",
            DeviceKind::Switch => "switch",
            DeviceKind::Nic => "nic",
        };
        f.write_str(s)
    }
}

/// A vertex of the fabric graph.
#[derive(Debug, Clone)]
pub struct Device {
    pub(crate) id: DeviceId,
    pub(crate) kind: DeviceKind,
    pub(crate) name: String,
    /// Which server node this device belongs to (multi-node topologies).
    pub(crate) node: u32,
}

impl Device {
    /// This device's identifier.
    pub fn id(&self) -> DeviceId {
        self.id
    }

    /// This device's kind.
    pub fn kind(&self) -> DeviceKind {
        self.kind
    }

    /// Human-readable name (e.g. `"gpu0"`, `"pcie-sw1"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The server node index this device belongs to.
    pub fn node(&self) -> u32 {
        self.node
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_classification() {
        assert!(DeviceKind::Gpu.is_endpoint());
        assert!(DeviceKind::Cpu.is_endpoint());
        assert!(DeviceKind::MemoryDevice.is_endpoint());
        assert!(DeviceKind::Nic.is_endpoint());
        assert!(!DeviceKind::Switch.is_endpoint());
    }

    #[test]
    fn display_forms() {
        assert_eq!(DeviceId(3).to_string(), "dev3");
        assert_eq!(DeviceKind::MemoryDevice.to_string(), "memdev");
    }
}
