//! Fabric diagnostics: structural validation and Graphviz export.

use std::fmt::Write as _;

use coarse_simcore::time::SimTime;

use crate::device::DeviceKind;
use crate::engine::TransferEngine;
use crate::topology::{LinkClass, LinkId, Topology};

/// A structural problem found by [`validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyIssue {
    /// A device has no links at all.
    IsolatedDevice {
        /// The isolated device's name.
        device: String,
    },
    /// A directed link has no reverse partner (serial buses are duplex).
    SimplexLink {
        /// Source device name.
        src: String,
        /// Destination device name.
        dst: String,
    },
    /// Two endpoints cannot reach each other at all.
    Partitioned {
        /// One endpoint's name.
        a: String,
        /// The unreachable endpoint's name.
        b: String,
    },
    /// A node has no CPU (staging and host-bridge routing need one).
    NodeWithoutCpu {
        /// The node index.
        node: u32,
    },
}

impl std::fmt::Display for TopologyIssue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TopologyIssue::IsolatedDevice { device } => write!(f, "device {device} has no links"),
            TopologyIssue::SimplexLink { src, dst } => {
                write!(f, "link {src}->{dst} has no reverse direction")
            }
            TopologyIssue::Partitioned { a, b } => write!(f, "{a} cannot reach {b}"),
            TopologyIssue::NodeWithoutCpu { node } => write!(f, "node {node} has no CPU"),
        }
    }
}

/// Checks a topology for the structural invariants every machine preset
/// must satisfy. Returns all problems found (empty = healthy).
pub fn validate(topo: &Topology) -> Vec<TopologyIssue> {
    let mut issues = Vec::new();

    // Isolated devices.
    for d in topo.devices() {
        let touched = topo.links().any(|l| l.src() == d.id() || l.dst() == d.id());
        if !touched {
            issues.push(TopologyIssue::IsolatedDevice {
                device: d.name().to_string(),
            });
        }
    }

    // Simplex links.
    for l in topo.links() {
        let has_reverse = topo
            .links()
            .any(|r| r.src() == l.dst() && r.dst() == l.src() && r.class() == l.class());
        if !has_reverse {
            issues.push(TopologyIssue::SimplexLink {
                src: topo.device(l.src()).name().to_string(),
                dst: topo.device(l.dst()).name().to_string(),
            });
        }
    }

    // Endpoint reachability (first endpoint to every other endpoint).
    let endpoints: Vec<_> = topo
        .devices()
        .filter(|d| d.kind().is_endpoint())
        .map(|d| d.id())
        .collect();
    if let Some(&first) = endpoints.first() {
        for &other in &endpoints[1..] {
            if topo.route(first, other).is_none() {
                issues.push(TopologyIssue::Partitioned {
                    a: topo.device(first).name().to_string(),
                    b: topo.device(other).name().to_string(),
                });
            }
        }
    }

    // Every node has a CPU.
    let mut nodes: Vec<u32> = topo.devices().map(|d| d.node()).collect();
    nodes.sort_unstable();
    nodes.dedup();
    for node in nodes {
        let has_cpu = topo
            .devices()
            .any(|d| d.kind() == DeviceKind::Cpu && d.node() == node);
        if !has_cpu {
            issues.push(TopologyIssue::NodeWithoutCpu { node });
        }
    }
    issues
}

/// Renders the topology as a Graphviz `dot` graph (one edge per duplex
/// pair; link class encoded as edge style).
pub fn to_dot(topo: &Topology) -> String {
    render_dot(topo, |_| None)
}

/// Like [`to_dot`], but annotates each duplex edge with its post-run
/// busy-time utilization over `[0, horizon)` (the busier direction of the
/// pair, from the engine's per-link busy accounting — the same figure the
/// `fabric.link_busy_ns` metric aggregates) and thickens hot edges, so a
/// topology dump doubles as a heatmap of whatever workload ran on `engine`.
///
/// # Panics
///
/// Panics if `horizon` is zero.
pub fn to_dot_with_utilization(engine: &TransferEngine, horizon: SimTime) -> String {
    let topo = engine.topology();
    render_dot(topo, |pair: &[LinkId]| {
        let u = pair
            .iter()
            .map(|&l| engine.link_utilization(l, horizon))
            .fold(0.0f64, f64::max);
        Some(u)
    })
}

fn render_dot(topo: &Topology, utilization: impl Fn(&[LinkId]) -> Option<f64>) -> String {
    let mut out = String::from("graph fabric {\n  rankdir=TB;\n");
    for d in topo.devices() {
        let shape = match d.kind() {
            DeviceKind::Cpu => "doubleoctagon",
            DeviceKind::Gpu => "box",
            DeviceKind::MemoryDevice => "cylinder",
            DeviceKind::Switch => "diamond",
            DeviceKind::Nic => "parallelogram",
        };
        let _ = writeln!(out, "  \"{}\" [shape={shape}];", d.name());
    }
    // Emit each duplex pair once (src id < dst id).
    for l in topo.links() {
        if l.src() >= l.dst() {
            continue;
        }
        let (style, color) = match l.class() {
            LinkClass::Pcie => ("solid", "black"),
            LinkClass::NvLink => ("bold", "green4"),
            LinkClass::Cci => ("dashed", "blue"),
            LinkClass::Network => ("dotted", "red"),
        };
        // Both directions of the pair, for the utilization callback.
        let pair: Vec<LinkId> = (0..topo.link_count())
            .map(|i| LinkId(i as u32))
            .filter(|&id| {
                let cand = topo.link(id);
                (cand.src() == l.src() && cand.dst() == l.dst()
                    || cand.src() == l.dst() && cand.dst() == l.src())
                    && cand.class() == l.class()
            })
            .collect();
        let mut attrs = format!(
            "style={style}, color={color}, label=\"{:.0}G",
            l.model().peak().as_gib_per_sec(),
        );
        match utilization(&pair) {
            Some(u) => {
                let _ = write!(
                    attrs,
                    "\\n{:.1}% busy\", penwidth={:.1}",
                    u * 100.0,
                    1.0 + 6.0 * u.clamp(0.0, 1.0)
                );
            }
            None => attrs.push('"'),
        }
        let _ = writeln!(
            out,
            "  \"{}\" -- \"{}\" [{attrs}];",
            topo.device(l.src()).name(),
            topo.device(l.dst()).name(),
        );
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bandwidth::BandwidthModel;
    use crate::machines;
    use coarse_simcore::time::SimDuration;
    use coarse_simcore::units::Bandwidth;

    #[test]
    fn presets_validate_clean() {
        for m in machines::table1() {
            let issues = validate(m.topology());
            assert!(issues.is_empty(), "{}: {issues:?}", m.name());
        }
        let cluster = machines::aws_v100_cluster(2);
        assert!(validate(cluster.topology()).is_empty());
    }

    #[test]
    fn augmented_machines_validate_clean() {
        let mut m = machines::aws_v100();
        let part = m.partition(machines::PartitionScheme::OneToOne);
        m.augment_cci_ring(&part.mem_devices);
        assert!(validate(m.topology()).is_empty());
    }

    #[test]
    fn detects_isolated_device() {
        let mut t = Topology::new();
        t.add_device(DeviceKind::Gpu, "lonely", 0);
        t.add_device(DeviceKind::Cpu, "cpu", 0);
        let issues = validate(&t);
        assert!(issues
            .iter()
            .any(|i| matches!(i, TopologyIssue::IsolatedDevice { device } if device == "lonely")));
    }

    #[test]
    fn detects_simplex_link_and_partition() {
        let mut t = Topology::new();
        let a = t.add_device(DeviceKind::Gpu, "a", 0);
        let b = t.add_device(DeviceKind::Gpu, "b", 0);
        let cpu = t.add_device(DeviceKind::Cpu, "cpu", 0);
        let m = BandwidthModel::pcie_like(Bandwidth::gib_per_sec(1.0));
        t.add_link(a, b, m, SimDuration::ZERO, crate::topology::LinkClass::Pcie);
        t.add_duplex(
            b,
            cpu,
            m,
            SimDuration::ZERO,
            crate::topology::LinkClass::Pcie,
        );
        let issues = validate(&t);
        assert!(issues
            .iter()
            .any(|i| matches!(i, TopologyIssue::SimplexLink { .. })));
        // a (endpoint) cannot reach cpu: b does not forward.
        assert!(issues
            .iter()
            .any(|i| matches!(i, TopologyIssue::Partitioned { .. })));
    }

    #[test]
    fn detects_missing_cpu() {
        let mut t = Topology::new();
        let a = t.add_device(DeviceKind::Gpu, "a", 0);
        let b = t.add_device(DeviceKind::Gpu, "b", 0);
        let m = BandwidthModel::pcie_like(Bandwidth::gib_per_sec(1.0));
        t.add_duplex(a, b, m, SimDuration::ZERO, crate::topology::LinkClass::Pcie);
        let issues = validate(&t);
        assert!(issues
            .iter()
            .any(|i| matches!(i, TopologyIssue::NodeWithoutCpu { node: 0 })));
    }

    #[test]
    fn dot_export_mentions_every_device() {
        let m = machines::sdsc_p100();
        let dot = to_dot(m.topology());
        for d in m.topology().devices() {
            assert!(dot.contains(d.name()), "missing {}", d.name());
        }
        assert!(dot.starts_with("graph fabric {"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn dot_with_utilization_annotates_busy_links() {
        use coarse_simcore::time::SimTime;
        use coarse_simcore::units::ByteSize;

        let m = machines::sdsc_p100();
        let part = m.partition(machines::PartitionScheme::OneToOne);
        let mut engine = TransferEngine::new(m.topology().clone());
        let horizon = {
            let rec = engine
                .transfer(
                    part.workers[0],
                    part.mem_devices[0],
                    ByteSize::mib(64),
                    SimTime::ZERO,
                )
                .unwrap();
            rec.end
        };
        let dot = to_dot_with_utilization(&engine, horizon);
        // Every edge carries a busy annotation; the route we drove shows a
        // non-zero one and a widened pen.
        assert!(dot.contains("% busy"), "{dot}");
        assert!(dot.contains("penwidth"), "{dot}");
        assert!(
            dot.lines()
                .any(|l| l.contains("% busy") && !l.contains("\\n0.0% busy")),
            "at least one hot edge: {dot}"
        );
        // The unannotated export is unchanged by the new plumbing.
        assert!(!to_dot(m.topology()).contains("% busy"));
    }

    #[test]
    fn dot_distinguishes_link_classes() {
        let mut m = machines::aws_v100();
        let part = m.partition(machines::PartitionScheme::OneToOne);
        m.augment_cci_ring(&part.mem_devices);
        let dot = to_dot(m.topology());
        assert!(dot.contains("style=bold"), "NVLink edges");
        assert!(dot.contains("style=dashed"), "CCI edges");
        assert!(dot.contains("style=solid"), "PCIe edges");
    }
}
