//! The transfer engine: resolves transfers to routes, arbitrates link
//! occupancy, and returns exact start/finish times.
//!
//! Each directed link owns a FIFO [`ResourceTimeline`]; a transfer occupies
//! every hop of its route for the bottleneck serialization window (a
//! cut-through approximation), and delivery completes after the route's
//! total latency on top of serialization. When the topology has peer-to-peer
//! disabled, endpoint-to-endpoint transfers are staged through the host CPU
//! as two back-to-back transfers (the paper's "GPU Indirect" path).
//!
//! An attached [`FaultPlan`] injects fabric faults at simulated time:
//! degraded links stretch their serialization window, flapped links are
//! routed around (or surface [`TransferError::NoRoute`] when no detour
//! exists), and transfers touching a dropped device fail with
//! [`TransferError::DeviceDown`]. With no plan attached — or an empty one —
//! every code path is byte-identical to the fault-free engine.

use coarse_simcore::critpath::{class as crit_class, CritPath, NodeId};
use coarse_simcore::faults::FaultPlan;
use coarse_simcore::metrics::{metered, name as metric, MetricRegistry};
use coarse_simcore::oracle::{BiteKind, OracleEvent, OracleHub};
use coarse_simcore::prof::{region as prof_region, Profiler};
use coarse_simcore::time::{SimDuration, SimTime};
use coarse_simcore::timeline::ResourceTimeline;
use coarse_simcore::trace::{active, category, SharedTracer};
use coarse_simcore::units::ByteSize;

// simlint: allow(parallel-ready, reason = "RefCell backs the route memo cache below; !Sync, so the compiler already forbids cross-thread sharing")
use std::cell::RefCell;
use std::rc::Rc;

use crate::device::{DeviceId, DeviceKind};
use crate::topology::{LinkClass, LinkId, LinkMask, Route, Topology};

/// The outcome of one transfer: when it started service and when the last
/// byte arrived.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransferRecord {
    /// When the first hop began serializing.
    pub start: SimTime,
    /// When delivery completed at the destination.
    pub end: SimTime,
    /// Bytes moved.
    pub size: ByteSize,
}

impl TransferRecord {
    /// Total elapsed time from service start to delivery.
    pub fn elapsed(&self) -> SimDuration {
        self.end - self.start
    }

    /// Achieved rate over the whole transfer, in bytes/sec.
    ///
    /// # Panics
    ///
    /// Panics if the transfer took zero time.
    pub fn achieved_bytes_per_sec(&self) -> f64 {
        let secs = self.elapsed().as_secs_f64();
        assert!(secs > 0.0, "zero-duration transfer has no rate");
        self.size.as_f64() / secs
    }
}

/// Errors from [`TransferEngine`] operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransferError {
    /// No route exists between the endpoints under the active filter.
    NoRoute {
        /// Transfer source.
        src: DeviceId,
        /// Transfer destination.
        dst: DeviceId,
    },
    /// A transfer endpoint has dropped out of the fabric (injected by the
    /// attached [`FaultPlan`]).
    DeviceDown {
        /// The dropped endpoint.
        device: DeviceId,
    },
}

impl std::fmt::Display for TransferError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransferError::NoRoute { src, dst } => {
                write!(f, "no route from {src} to {dst}")
            }
            TransferError::DeviceDown { device } => {
                write!(f, "device {device} has dropped out of the fabric")
            }
        }
    }
}

impl std::error::Error for TransferError {}

/// Resolves and schedules transfers over a [`Topology`].
#[derive(Debug)]
pub struct TransferEngine {
    topo: Topology,
    /// One FIFO timeline per directed link.
    schedules: Vec<ResourceTimeline>,
    /// Optional trace sink; `None` means tracing is off (the default).
    tracer: Option<SharedTracer>,
    /// Optional metric sink; `None` means metrics are off (the default).
    metrics: Option<MetricRegistry>,
    /// Optional self-profiler; `None` means profiling is off (the default).
    profiler: Option<Profiler>,
    /// Optional fault schedule; `None` means the fabric is healthy.
    faults: Option<FaultPlan>,
    /// Optional oracle battery; `None` means no invariant checking.
    oracles: Option<OracleHub>,
    /// Optional critical-path recorder; `None` means recording is off.
    critpath: Option<CritPath>,
    /// The pacing node of the most recent recorded transfer, for callers to
    /// chain program-order edges onto.
    last_crit: Option<NodeId>,
    /// The node at which the most recent recorded transfer *departed* — the
    /// first staging leg's pacing node when the transfer staged through the
    /// host CPU, otherwise the same node as `last_crit`.
    last_crit_entry: Option<NodeId>,
    /// Dependency nodes staged by the caller for the next collective to
    /// adopt (e.g. "this allreduce waits on those push arrivals").
    staged_crit_deps: Vec<NodeId>,
    /// Interned trace track per directed link (lazily populated).
    link_tracks: Vec<Option<coarse_simcore::trace::TrackId>>,
    /// Memoized routes, keyed by `(src, dst, mask)` — a dense
    /// `device² × 16` table (the topology is immutable once wrapped, and a
    /// [`LinkMask`] has 16 possible values). The outer `Option` is
    /// "not yet computed"; the inner one caches *unroutability* too. Routes
    /// are shared as `Rc`, so the steady-state transfer path never runs
    /// Dijkstra nor clones a hop list. Bypassed whenever a non-empty fault
    /// plan is active (flaps make routes time-dependent).
    // simlint: allow(parallel-ready, reason = "memoizes pure Dijkstra results; worst case under races is recomputing an identical route")
    route_cache: RefCell<Vec<Option<Option<Rc<Route>>>>>,
}

impl TransferEngine {
    /// Wraps a topology with idle link schedules.
    pub fn new(topo: Topology) -> Self {
        let schedules = (0..topo.link_count())
            .map(|_| ResourceTimeline::new())
            .collect();
        let link_tracks = vec![None; topo.link_count()];
        // simlint: allow(parallel-ready, reason = "constructor of the waived memo cache; same single-owner discipline")
        let route_cache = RefCell::new(vec![None; topo.device_count().pow(2) * 16]);
        TransferEngine {
            topo,
            schedules,
            tracer: None,
            metrics: None,
            profiler: None,
            faults: None,
            oracles: None,
            critpath: None,
            last_crit: None,
            last_crit_entry: None,
            staged_crit_deps: Vec::new(),
            link_tracks,
            route_cache,
        }
    }

    /// The memoized route from `src` to `dst` over `mask`, computing and
    /// caching it on first use. `None` is cached too: unroutable pairs are
    /// as cheap to re-ask as routable ones.
    fn cached_route(&self, src: DeviceId, dst: DeviceId, mask: LinkMask) -> Option<Rc<Route>> {
        let n = self.topo.device_count();
        let slot = (src.index() * n + dst.index()) * 16 + mask.bits() as usize;
        let mut cache = self.route_cache.borrow_mut();
        if let Some(entry) = &cache[slot] {
            return entry.clone();
        }
        let computed = self.topo.route_masked(src, dst, mask).map(Rc::new);
        cache[slot] = Some(computed.clone());
        computed
    }

    /// The underlying topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Attaches a tracer: subsequent transfers emit one occupancy span per
    /// route link plus a delivery instant on the destination device's track.
    pub fn set_tracer(&mut self, tracer: SharedTracer) {
        self.tracer = Some(tracer);
    }

    /// The attached tracer, if any. Layers built on the engine (timed
    /// collectives, the training simulator) emit into the same sink.
    pub fn tracer(&self) -> Option<&SharedTracer> {
        active(&self.tracer)
    }

    /// Attaches a metric registry: subsequent transfers publish
    /// `fabric.transfers`, `fabric.bytes`, `fabric.link_busy_ns`, and
    /// `fabric.staged_transfers` counters.
    pub fn set_metrics(&mut self, metrics: MetricRegistry) {
        self.metrics = Some(metrics);
    }

    /// The attached metric registry, if any. Layers built on the engine
    /// publish into the same registry.
    pub fn metrics(&self) -> Option<&MetricRegistry> {
        metered(&self.metrics)
    }

    /// Attaches a self-profiler: subsequent transfers attribute host time
    /// and per-leg work counts to the `fabric.link` region. Observation-only
    /// — simulated timings never change.
    pub fn set_profiler(&mut self, profiler: Profiler) {
        self.profiler = Some(profiler);
    }

    /// The attached self-profiler, if any. Layers built on the engine
    /// (timed collectives, the training simulator) attribute into the same
    /// session.
    pub fn profiler(&self) -> Option<&Profiler> {
        self.profiler.as_ref()
    }

    /// Attaches a fault schedule: subsequent transfers consult it at their
    /// arrival instant. Attaching an empty plan is equivalent to attaching
    /// none — timings stay byte-identical to the healthy fabric.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.faults = Some(plan);
    }

    /// The attached fault schedule, if one is active (non-empty).
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.faults.as_ref().filter(|p| !p.is_empty())
    }

    /// Attaches an oracle battery: subsequent transfers emit
    /// request/delivery/failure ledger events plus fault-bite markers.
    /// Observation-only, exactly like tracing — timings never change.
    pub fn set_oracles(&mut self, oracles: OracleHub) {
        self.oracles = Some(oracles);
    }

    /// The attached oracle battery, if any. Layers built on the engine
    /// (timed collectives, the training simulator) emit into the same hub.
    pub fn oracles(&self) -> Option<&OracleHub> {
        self.oracles.as_ref()
    }

    /// Attaches a critical-path recorder: every subsequent transfer records
    /// a fabric-queueing node (when it waited for a busy link) plus one
    /// fabric-busy node per route link, chained FIFO per link. Observation-
    /// only, exactly like tracing — timings never change.
    pub fn set_critpath(&mut self, critpath: CritPath) {
        self.critpath = Some(critpath);
    }

    /// The attached critical-path recorder, if any. Layers built on the
    /// engine record into the same graph.
    pub fn critpath(&self) -> Option<&CritPath> {
        self.critpath.as_ref()
    }

    /// The pacing node of the most recent recorded transfer — the busy node
    /// on the link that actually set the transfer's start time. Callers use
    /// it to chain program-order edges (e.g. "this ring step waited on that
    /// transfer").
    pub fn last_crit_node(&self) -> Option<NodeId> {
        self.last_crit
    }

    /// The node at which the most recent recorded transfer *departed*. For a
    /// transfer staged through the host CPU this is the first leg's pacing
    /// node; otherwise it equals [`last_crit_node`](Self::last_crit_node).
    ///
    /// Cause edges — "this transfer left because X completed" — belong here,
    /// so the backward walk can leave a link's FIFO chain at the transfer's
    /// true enabling event even when the chain consists of staging legs.
    /// Consumers waiting on *delivery* keep chaining off
    /// [`last_crit_node`](Self::last_crit_node), which ends at the final
    /// leg's completion.
    pub fn last_crit_entry_node(&self) -> Option<NodeId> {
        self.last_crit_entry
    }

    /// Overrides the "most recent node" handle, letting layers that record
    /// their own nodes (collectives) publish a join point for callers
    /// further up.
    pub fn note_crit_node(&mut self, node: NodeId) {
        self.last_crit = Some(node);
        self.last_crit_entry = Some(node);
    }

    /// Stages dependency nodes for the next collective built on this engine
    /// to adopt as predecessors of its barrier/first step — the caller's way
    /// of saying "this collective waits on those arrivals". Replaces any
    /// previously staged set. No-op when no recorder is attached.
    pub fn stage_crit_deps(&mut self, deps: &[NodeId]) {
        if self.critpath.is_some() {
            self.staged_crit_deps = deps.to_vec();
        }
    }

    /// Takes (and clears) the staged dependency set.
    pub fn take_crit_deps(&mut self) -> Vec<NodeId> {
        std::mem::take(&mut self.staged_crit_deps)
    }

    /// The critical-path resource name of a directed link; matches the
    /// trace track naming so overlays line up.
    fn link_resource_name(&self, l: LinkId) -> String {
        let link = self.topo.link(l);
        format!(
            "link {} -> {} ({:?})",
            self.topo.device(link.src()).name(),
            self.topo.device(link.dst()).name(),
            link.class()
        )
    }

    /// The trace track for a directed link, named
    /// `"link <src> -> <dst> (<class>)"`. Interned once per link.
    fn link_track(&mut self, tracer: &SharedTracer, l: LinkId) -> coarse_simcore::trace::TrackId {
        if let Some(id) = self.link_tracks[l.index()] {
            return id;
        }
        let link = self.topo.link(l);
        let name = format!(
            "link {} -> {} ({:?})",
            self.topo.device(link.src()).name(),
            self.topo.device(link.dst()).name(),
            link.class()
        );
        let id = tracer.track(&name);
        self.link_tracks[l.index()] = Some(id);
        id
    }

    /// Clears all link schedules (fresh experiment, same fabric).
    pub fn reset(&mut self) {
        for s in &mut self.schedules {
            *s = ResourceTimeline::new();
        }
    }

    /// Schedules a transfer of `size` bytes from `src` to `dst`, arriving at
    /// the engine at `arrival`. Honors the topology's peer-to-peer setting.
    ///
    /// # Errors
    ///
    /// Returns [`TransferError::NoRoute`] if the endpoints are not connected.
    pub fn transfer(
        &mut self,
        src: DeviceId,
        dst: DeviceId,
        size: ByteSize,
        arrival: SimTime,
    ) -> Result<TransferRecord, TransferError> {
        self.transfer_masked(src, dst, size, arrival, LinkMask::ALL)
    }

    /// Like [`transfer`](Self::transfer) but restricted to link classes in
    /// `mask` (e.g. excluding NVLink to probe the PCIe path). The interned
    /// mask keys the engine's route cache, so repeated transfers between the
    /// same endpoints skip routing entirely.
    ///
    /// # Errors
    ///
    /// Returns [`TransferError::NoRoute`] if no allowed route exists.
    pub fn transfer_masked(
        &mut self,
        src: DeviceId,
        dst: DeviceId,
        size: ByteSize,
        arrival: SimTime,
        mask: LinkMask,
    ) -> Result<TransferRecord, TransferError> {
        if let Some(hub) = self.oracles.clone() {
            hub.emit(OracleEvent::TransferRequested {
                src: src.index() as u32,
                dst: dst.index() as u32,
                bytes: size.as_u64(),
                at: arrival,
            });
        }
        let result = self.transfer_masked_inner(src, dst, size, arrival, mask);
        if let Some(hub) = self.oracles.clone() {
            match &result {
                Ok(rec) => hub.emit(OracleEvent::TransferDelivered {
                    src: src.index() as u32,
                    dst: dst.index() as u32,
                    bytes: size.as_u64(),
                    start: rec.start,
                    end: rec.end,
                }),
                Err(err) => {
                    if matches!(err, TransferError::DeviceDown { .. }) {
                        hub.emit(OracleEvent::FaultBite {
                            kind: BiteKind::Dropout,
                            at: arrival,
                        });
                    }
                    hub.emit(OracleEvent::TransferFailed {
                        src: src.index() as u32,
                        dst: dst.index() as u32,
                        bytes: size.as_u64(),
                        at: arrival,
                    });
                }
            }
        }
        result
    }

    fn transfer_masked_inner(
        &mut self,
        src: DeviceId,
        dst: DeviceId,
        size: ByteSize,
        arrival: SimTime,
        mask: LinkMask,
    ) -> Result<TransferRecord, TransferError> {
        if let Some(plan) = self.fault_plan() {
            for device in [src, dst] {
                if plan.device_down(device.index() as u32, arrival) {
                    return Err(TransferError::DeviceDown { device });
                }
            }
        }
        if src == dst {
            // An instant transfer leaves no node; clear the chain handles so
            // callers don't dep on an unrelated earlier transfer.
            self.last_crit = None;
            self.last_crit_entry = None;
            return Ok(TransferRecord {
                start: arrival,
                end: arrival,
                size,
            });
        }
        if self.needs_staging(src, dst) {
            if let Some(m) = metered(&self.metrics) {
                m.inc(metric::FABRIC_STAGED, 1);
            }
            let cpu = self.topo.host_cpu(self.topo.device(src).node());
            let first = self.transfer_direct(src, cpu, size, arrival, mask)?;
            let leg1 = self.last_crit;
            let leg1_entry = self.last_crit_entry;
            let second = self.transfer_direct(cpu, dst, size, first.end, mask)?;
            // Program-order edge between the staging legs: the second leg
            // only departed because the first delivered to the host. The
            // whole transfer *departs* at the first leg, so that is where
            // callers' cause edges must land — otherwise the first leg's
            // FIFO chain dead-ends mid-iteration with no way back to the
            // transfer's true enabling event.
            if let (Some(cp), Some(a), Some(b)) = (&self.critpath, leg1, self.last_crit) {
                if a != b {
                    cp.add_dep(b, a);
                }
            }
            if leg1_entry.is_some() {
                self.last_crit_entry = leg1_entry;
            }
            return Ok(TransferRecord {
                start: first.start,
                end: second.end,
                size,
            });
        }
        self.transfer_direct(src, dst, size, arrival, mask)
    }

    /// Whether a `src`→`dst` transfer must be staged through the host CPU.
    /// Peers joined by a dedicated CCI path never stage: CCI provides
    /// hardware peer-to-peer regardless of the PCIe tree's p2p support.
    pub fn needs_staging(&self, src: DeviceId, dst: DeviceId) -> bool {
        if self.topo.p2p_enabled() {
            return false;
        }
        let src_kind = self.topo.device(src).kind();
        let dst_kind = self.topo.device(dst).kind();
        // CPU-terminated transfers never need staging; only peer transfers
        // between non-CPU endpoints do.
        if src_kind == DeviceKind::Cpu || dst_kind == DeviceKind::Cpu {
            return false;
        }
        self.cached_route(src, dst, LinkMask::only(LinkClass::Cci))
            .is_none()
    }

    fn transfer_direct(
        &mut self,
        src: DeviceId,
        dst: DeviceId,
        size: ByteSize,
        arrival: SimTime,
        mask: LinkMask,
    ) -> Result<TransferRecord, TransferError> {
        // Flapped links are excluded from routing, so the engine re-routes
        // around an outage when a detour exists and reports `NoRoute` when
        // the endpoints are genuinely cut off. Faulty routes are
        // time-dependent, so only the healthy branch consults the cache.
        let route = match self.fault_plan() {
            Some(plan) => {
                // Conservative flap bite: any active flap anywhere may have
                // shifted this route, so the run no longer counts as clean.
                // Over-reporting is sound (it only widens the set of runs
                // the clean-run-equivalence oracle skips).
                if plan.any_flap_active(arrival) {
                    if let Some(hub) = &self.oracles {
                        hub.emit(OracleEvent::FaultBite {
                            kind: BiteKind::Flap,
                            at: arrival,
                        });
                    }
                }
                self.topo
                    .route_filtered(src, dst, |l| {
                        mask.allows(l.class())
                            && !plan.link_down(
                                l.src().index() as u32,
                                l.dst().index() as u32,
                                arrival,
                            )
                    })
                    .map(Rc::new)
            }
            None => self.cached_route(src, dst, mask),
        }
        .ok_or(TransferError::NoRoute { src, dst })?;
        Ok(self.transfer_on_route(&route, size, arrival))
    }

    /// Schedules a transfer along an explicit route.
    ///
    /// # Panics
    ///
    /// Panics if the route is empty and `size` is non-zero... an empty route
    /// means src == dst and completes instantly.
    pub fn transfer_on_route(
        &mut self,
        route: &Route,
        size: ByteSize,
        arrival: SimTime,
    ) -> TransferRecord {
        if route.links().is_empty() {
            return TransferRecord {
                start: arrival,
                end: arrival,
                size,
            };
        }
        let _prof = self.profiler.as_ref().map(|p| {
            p.count(prof_region::FABRIC_LINK, route.links().len() as u64);
            p.enter(prof_region::FABRIC_LINK)
        });
        // Bottleneck serialization: the slowest hop paces the cut-through
        // pipeline; every hop is occupied for that window. A degraded link
        // stretches its serialization time by the plan's factor.
        let plan = self.faults.as_ref().filter(|p| !p.is_empty());
        let mut degraded = false;
        let occupancy = route
            .links()
            .iter()
            .map(|&l| {
                let link = self.topo.link(l);
                let base = link.model().serialization_time(size);
                match plan {
                    Some(p) => {
                        let factor = p.degradation(
                            link.src().index() as u32,
                            link.dst().index() as u32,
                            arrival,
                        );
                        if factor != 1.0 {
                            degraded = true;
                            base.mul_f64(factor)
                        } else {
                            base
                        }
                    }
                    None => base,
                }
            })
            .max()
            // simlint: allow(panic-in-library, reason = "routes returned by the router are built non-empty")
            .expect("non-empty route");
        if degraded {
            if let Some(hub) = &self.oracles {
                hub.emit(OracleEvent::FaultBite {
                    kind: BiteKind::Degrade,
                    at: arrival,
                });
            }
        }
        // The pacing link is the one whose FIFO forces the latest start;
        // ties go to the later hop (stable, and the queue blame lands on
        // the link closest to the destination).
        let (pacing, start) = route
            .links()
            .iter()
            .enumerate()
            .map(|(i, &l)| (i, self.schedules[l.index()].earliest_start(arrival)))
            .max_by_key(|&(i, t)| (t, i))
            // simlint: allow(panic-in-library, reason = "routes returned by the router are built non-empty")
            .expect("non-empty route");
        for &l in route.links() {
            self.schedules[l.index()].reserve(start, occupancy);
        }
        let end = start + occupancy + route.total_latency();
        if let Some(cp) = self.critpath.clone() {
            let queue_node = if start > arrival {
                let deps: Vec<NodeId> = cp
                    .last_on(&self.link_resource_name(route.links()[pacing]))
                    .into_iter()
                    .collect();
                Some(cp.span(
                    crit_class::FABRIC_QUEUE,
                    format!("queue {size}"),
                    arrival,
                    start,
                    &deps,
                ))
            } else {
                None
            };
            // The pacing hop's node is recorded first: it alone extends to
            // delivery (so the chain a consumer hangs off `last_crit` ends
            // at `end`) and it alone carries the queue dependency plus any
            // edges the caller adds after the fact. Every other hop depends
            // on it, so a FIFO chain entering a non-pacing hop routes
            // through the pacing node to the transfer's true enabling
            // events instead of dead-ending mid-iteration.
            let pace_deps: Vec<NodeId> = queue_node.into_iter().collect();
            let pace_id = cp.span_on(
                crit_class::FABRIC_BUSY,
                format!("xfer {size}"),
                &self.link_resource_name(route.links()[pacing]),
                start,
                end,
                &pace_deps,
            );
            self.last_crit = Some(pace_id);
            self.last_crit_entry = Some(pace_id);
            for (i, &l) in route.links().iter().enumerate() {
                if i == pacing {
                    continue;
                }
                cp.span_on(
                    crit_class::FABRIC_BUSY,
                    format!("xfer {size}"),
                    &self.link_resource_name(l),
                    start,
                    start + occupancy,
                    &[pace_id],
                );
            }
        }
        if let Some(m) = metered(&self.metrics) {
            m.inc(metric::FABRIC_TRANSFERS, 1);
            m.inc(metric::FABRIC_BYTES, size.as_u64());
            m.inc(
                metric::FABRIC_LINK_BUSY_NS,
                occupancy.as_nanos() * route.links().len() as u64,
            );
        }
        if let Some(tracer) = active(&self.tracer).cloned() {
            let flow = format!("{size}");
            for &l in route.links() {
                let track = self.link_track(&tracer, l);
                tracer.span(start, start + occupancy, category::FABRIC, track, &flow);
            }
            let dst = self
                .topo
                // simlint: allow(panic-in-library, reason = "routes returned by the router are built non-empty")
                .link(*route.links().last().expect("non-empty route"))
                .dst();
            let track = tracer.track(&format!("device {}", self.topo.device(dst).name()));
            tracer.instant(
                end,
                category::FABRIC,
                track,
                &format!("delivered {size} ({} hops)", route.hops()),
            );
        }
        TransferRecord { start, end, size }
    }

    /// When the given directed link next becomes free.
    pub fn link_busy_until(&self, link: LinkId) -> SimTime {
        self.schedules[link.index()].busy_until()
    }

    /// Busy time accumulated on the given directed link.
    pub fn link_busy_time(&self, link: LinkId) -> SimDuration {
        self.schedules[link.index()].busy_time()
    }

    /// Busy fraction of a link over `[0, horizon)`.
    ///
    /// # Panics
    ///
    /// Panics if `horizon` is zero.
    pub fn link_utilization(&self, link: LinkId, horizon: SimTime) -> f64 {
        self.schedules[link.index()].utilization(horizon)
    }

    /// The `n` busiest directed links over `[0, horizon)`, as
    /// `(link, utilization)` in descending order — the congestion hotspots
    /// of whatever workload ran on this engine.
    ///
    /// # Panics
    ///
    /// Panics if `horizon` is zero.
    pub fn busiest_links(&self, horizon: SimTime, n: usize) -> Vec<(LinkId, f64)> {
        let mut all: Vec<(LinkId, f64)> = (0..self.schedules.len())
            .map(|i| {
                let id = LinkId(i as u32);
                (id, self.schedules[i].utilization(horizon))
            })
            .collect();
        // simlint: allow(panic-in-library, reason = "utilizations are finite ratios of busy to elapsed time, so the comparison is total")
        all.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("utilizations are finite"));
        all.truncate(n);
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bandwidth::BandwidthModel;
    use crate::topology::LinkClass;
    use coarse_simcore::units::Bandwidth;

    /// 1 byte/ns flat links for exact arithmetic.
    fn flat() -> BandwidthModel {
        BandwidthModel::Flat {
            rate: Bandwidth::bytes_per_sec(1e9),
        }
    }

    fn lat(ns: u64) -> SimDuration {
        SimDuration::from_nanos(ns)
    }

    /// g0 — sw — g1 and sw — cpu, all flat 1B/ns, 10ns latency per hop.
    fn topo() -> (Topology, DeviceId, DeviceId, DeviceId) {
        let mut t = Topology::new();
        let g0 = t.add_device(DeviceKind::Gpu, "g0", 0);
        let g1 = t.add_device(DeviceKind::Gpu, "g1", 0);
        let sw = t.add_device(DeviceKind::Switch, "sw", 0);
        let cpu = t.add_device(DeviceKind::Cpu, "cpu", 0);
        t.add_duplex(g0, sw, flat(), lat(10), LinkClass::Pcie);
        t.add_duplex(g1, sw, flat(), lat(10), LinkClass::Pcie);
        t.add_duplex(sw, cpu, flat(), lat(10), LinkClass::Pcie);
        (t, g0, g1, cpu)
    }

    #[test]
    fn single_transfer_timing() {
        let (t, g0, g1, _) = topo();
        let mut e = TransferEngine::new(t);
        let r = e
            .transfer(g0, g1, ByteSize::bytes(1000), SimTime::ZERO)
            .unwrap();
        // serialization 1000ns + 2 hops × 10ns latency
        assert_eq!(r.start, SimTime::ZERO);
        assert_eq!(r.end, SimTime::from_nanos(1020));
    }

    #[test]
    fn same_direction_transfers_serialize() {
        let (t, g0, g1, _) = topo();
        let mut e = TransferEngine::new(t);
        let a = e
            .transfer(g0, g1, ByteSize::bytes(1000), SimTime::ZERO)
            .unwrap();
        let b = e
            .transfer(g0, g1, ByteSize::bytes(1000), SimTime::ZERO)
            .unwrap();
        assert_eq!(a.end, SimTime::from_nanos(1020));
        // b waits for the g0→sw hop to free.
        assert_eq!(b.start, SimTime::from_nanos(1000));
        assert_eq!(b.end, SimTime::from_nanos(2020));
    }

    #[test]
    fn opposite_directions_run_concurrently() {
        let (t, g0, g1, _) = topo();
        let mut e = TransferEngine::new(t);
        let push = e
            .transfer(g0, g1, ByteSize::bytes(1000), SimTime::ZERO)
            .unwrap();
        let pull = e
            .transfer(g1, g0, ByteSize::bytes(1000), SimTime::ZERO)
            .unwrap();
        // Full-duplex links: both directions complete in parallel.
        assert_eq!(push.end, SimTime::from_nanos(1020));
        assert_eq!(pull.end, SimTime::from_nanos(1020));
    }

    #[test]
    fn staging_through_cpu_when_p2p_disabled() {
        let (mut t, g0, g1, _) = topo();
        t.set_p2p(false);
        let mut e = TransferEngine::new(t);
        let r = e
            .transfer(g0, g1, ByteSize::bytes(1000), SimTime::ZERO)
            .unwrap();
        // Two sequential 2-hop transfers: (1000+20) + (1000+20).
        assert_eq!(r.end, SimTime::from_nanos(2040));
        assert!(e.needs_staging(g0, g1));
    }

    #[test]
    fn cpu_transfers_never_staged() {
        let (mut t, g0, _, cpu) = topo();
        t.set_p2p(false);
        let e = TransferEngine::new(t);
        assert!(!e.needs_staging(g0, cpu));
        assert!(!e.needs_staging(cpu, g0));
    }

    #[test]
    fn no_route_reported() {
        let mut t = Topology::new();
        let a = t.add_device(DeviceKind::Gpu, "a", 0);
        let b = t.add_device(DeviceKind::Gpu, "b", 0);
        let mut e = TransferEngine::new(t);
        let err = e
            .transfer(a, b, ByteSize::bytes(1), SimTime::ZERO)
            .unwrap_err();
        assert_eq!(err, TransferError::NoRoute { src: a, dst: b });
    }

    #[test]
    fn self_transfer_instant() {
        let (t, g0, _, _) = topo();
        let mut e = TransferEngine::new(t);
        let r = e
            .transfer(g0, g0, ByteSize::gib(1), SimTime::from_nanos(5))
            .unwrap();
        assert_eq!(r.start, r.end);
    }

    #[test]
    fn utilization_accounting() {
        let (t, g0, g1, _) = topo();
        let first_link = t.route(g0, g1).unwrap().links()[0];
        let mut e = TransferEngine::new(t);
        e.transfer(g0, g1, ByteSize::bytes(500), SimTime::ZERO)
            .unwrap();
        assert_eq!(e.link_busy_time(first_link), SimDuration::from_nanos(500));
        let u = e.link_utilization(first_link, SimTime::from_nanos(1000));
        assert!((u - 0.5).abs() < 1e-12);
    }

    #[test]
    fn critpath_records_queue_and_busy_nodes() {
        let (t, g0, g1, _) = topo();
        let mut e = TransferEngine::new(t);
        let cp = CritPath::new();
        e.set_critpath(cp.clone());
        e.transfer(g0, g1, ByteSize::bytes(1000), SimTime::ZERO)
            .unwrap();
        let first = e.last_crit_node().expect("pacing node recorded");
        let b = e
            .transfer(g0, g1, ByteSize::bytes(1000), SimTime::ZERO)
            .unwrap();
        let second = e.last_crit_node().expect("pacing node recorded");
        assert_ne!(first, second);
        assert_eq!(cp.node_end(second), b.end);
        cp.mark_iteration(0, second);
        let ex = cp.analyze();
        // The second transfer queued behind the first: a queue node is
        // recorded, and the critical path is pure fabric time — it runs
        // through the first transfer's occupancy (which outlives the queue
        // wait by the delivery latency) into the second's.
        use coarse_simcore::critpath::class;
        assert_eq!(ex.class_events[class::FABRIC_QUEUE], 1);
        assert_eq!(
            ex.blame[class::FABRIC_BUSY],
            SimDuration::from_nanos(2020),
            "whole span blamed on fabric busy"
        );
        let sum: f64 = class::ALL.iter().map(|c| ex.fraction(c)).sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn critpath_recording_does_not_perturb_transfers() {
        let run = |record: bool| {
            let (t, g0, g1, _) = topo();
            let mut e = TransferEngine::new(t);
            if record {
                e.set_critpath(CritPath::new());
            }
            let a = e
                .transfer(g0, g1, ByteSize::bytes(1000), SimTime::ZERO)
                .unwrap();
            let b = e
                .transfer(g1, g0, ByteSize::bytes(500), SimTime::from_nanos(3))
                .unwrap();
            (a, b)
        };
        assert_eq!(run(true), run(false), "recording must not perturb");
    }

    #[test]
    fn reset_clears_schedules() {
        let (t, g0, g1, _) = topo();
        let mut e = TransferEngine::new(t);
        e.transfer(g0, g1, ByteSize::bytes(1000), SimTime::ZERO)
            .unwrap();
        e.reset();
        let r = e
            .transfer(g0, g1, ByteSize::bytes(1000), SimTime::ZERO)
            .unwrap();
        assert_eq!(r.start, SimTime::ZERO);
    }

    #[test]
    fn tracing_is_observation_only_and_records_link_spans() {
        use coarse_simcore::trace::{RecordingTracer, TraceEventKind};

        let (t, g0, g1, _) = topo();
        let mut plain = TransferEngine::new(t.clone());
        let untraced = plain
            .transfer(g0, g1, ByteSize::bytes(1000), SimTime::ZERO)
            .unwrap();

        let rec = RecordingTracer::new();
        let mut e = TransferEngine::new(t);
        e.set_tracer(rec.handle());
        let traced = e
            .transfer(g0, g1, ByteSize::bytes(1000), SimTime::ZERO)
            .unwrap();
        assert_eq!(untraced, traced, "tracing must not perturb timing");

        let trace = rec.take();
        let spans: Vec<_> = trace
            .events_in(coarse_simcore::trace::category::FABRIC)
            .filter(|e| matches!(e.kind, TraceEventKind::Span { .. }))
            .collect();
        // Two hops g0→sw→g1, one occupancy span each.
        assert_eq!(spans.len(), 2);
        assert!(trace.find_track("link g0 -> sw (Pcie)").is_some());
        assert_eq!(
            trace
                .events_in(coarse_simcore::trace::category::FABRIC)
                .filter(|e| e.kind == TraceEventKind::Instant)
                .count(),
            1
        );
    }

    #[test]
    fn metrics_count_transfers_and_bytes() {
        let (t, g0, g1, _) = topo();
        let mut plain = TransferEngine::new(t.clone());
        let unmetered = plain
            .transfer(g0, g1, ByteSize::bytes(1000), SimTime::ZERO)
            .unwrap();

        let m = MetricRegistry::new();
        let mut e = TransferEngine::new(t);
        e.set_metrics(m.clone());
        let metered_rec = e
            .transfer(g0, g1, ByteSize::bytes(1000), SimTime::ZERO)
            .unwrap();
        assert_eq!(unmetered, metered_rec, "metrics must not perturb timing");

        let snap = m.snapshot();
        assert_eq!(snap.counter(metric::FABRIC_TRANSFERS), 1);
        assert_eq!(snap.counter(metric::FABRIC_BYTES), 1000);
        // Two hops, each occupied for the 1000ns serialization window.
        assert_eq!(snap.counter(metric::FABRIC_LINK_BUSY_NS), 2000);
        assert_eq!(snap.counter(metric::FABRIC_STAGED), 0);
    }

    #[test]
    fn metrics_count_staged_transfers() {
        let (mut t, g0, g1, _) = topo();
        t.set_p2p(false);
        let m = MetricRegistry::new();
        let mut e = TransferEngine::new(t);
        e.set_metrics(m.clone());
        e.transfer(g0, g1, ByteSize::bytes(1000), SimTime::ZERO)
            .unwrap();
        let snap = m.snapshot();
        assert_eq!(snap.counter(metric::FABRIC_STAGED), 1);
        // Staging decomposes into two route transfers.
        assert_eq!(snap.counter(metric::FABRIC_TRANSFERS), 2);
        assert_eq!(snap.counter(metric::FABRIC_BYTES), 2000);
    }

    #[test]
    fn empty_fault_plan_is_byte_identical() {
        let (t, g0, g1, _) = topo();
        let mut plain = TransferEngine::new(t.clone());
        let healthy = plain
            .transfer(g0, g1, ByteSize::bytes(1000), SimTime::ZERO)
            .unwrap();
        let mut e = TransferEngine::new(t);
        e.set_fault_plan(FaultPlan::empty());
        let faulted = e
            .transfer(g0, g1, ByteSize::bytes(1000), SimTime::ZERO)
            .unwrap();
        assert_eq!(healthy, faulted, "empty plan must perturb nothing");
        assert!(e.fault_plan().is_none(), "empty plan reads as no plan");
    }

    #[test]
    fn oracles_are_observation_only_and_balance_the_ledger() {
        let (t, g0, g1, _) = topo();
        let mut plain = TransferEngine::new(t.clone());
        let healthy = plain
            .transfer(g0, g1, ByteSize::bytes(1000), SimTime::ZERO)
            .unwrap();

        let hub = OracleHub::with_builtins(SimDuration::from_millis(10));
        let mut e = TransferEngine::new(t);
        e.set_oracles(hub.clone());
        let observed = e
            .transfer(g0, g1, ByteSize::bytes(1000), SimTime::ZERO)
            .unwrap();
        assert_eq!(healthy, observed, "oracles must not perturb timing");
        assert!(hub.events_seen() >= 2, "request + delivery events");
        hub.emit(OracleEvent::RunEnd { at: observed.end });
        assert!(
            hub.violations().is_empty(),
            "healthy transfer violates: {:?}",
            hub.violations()
        );
    }

    #[test]
    fn oracles_record_failed_transfers_and_dropout_bites() {
        let (t, g0, g1, _) = topo();
        let hub = OracleHub::with_builtins(SimDuration::from_millis(10));
        let mut e = TransferEngine::new(t);
        e.set_fault_plan(FaultPlan::new(1).drop_device(1, SimTime::ZERO));
        e.set_oracles(hub.clone());
        let err = e.transfer(g0, g1, ByteSize::bytes(1000), SimTime::from_nanos(5));
        assert!(matches!(err, Err(TransferError::DeviceDown { .. })));
        hub.emit(OracleEvent::RunEnd {
            at: SimTime::from_nanos(5),
        });
        // The failed transfer is ledgered as failed, so conservation holds.
        assert!(
            hub.violations().is_empty(),
            "failed-but-ledgered transfer violates: {:?}",
            hub.violations()
        );
    }

    #[test]
    fn degraded_link_stretches_serialization() {
        let (t, g0, g1, _) = topo();
        let mut e = TransferEngine::new(t);
        // g0 has index 0, sw index 2; degrade g0-sw 3x for the first 10 µs.
        e.set_fault_plan(FaultPlan::new(1).degrade_link(
            0,
            2,
            SimTime::ZERO,
            SimTime::from_nanos(10_000),
            3.0,
        ));
        let r = e
            .transfer(g0, g1, ByteSize::bytes(1000), SimTime::ZERO)
            .unwrap();
        // Bottleneck hop now serializes in 3000ns; + 2 × 10ns latency.
        assert_eq!(r.end, SimTime::from_nanos(3020));
        // After the window the link is healthy again.
        let later = e
            .transfer(g0, g1, ByteSize::bytes(1000), SimTime::from_nanos(10_000))
            .unwrap();
        assert_eq!(later.end - later.start, SimDuration::from_nanos(1020));
    }

    #[test]
    fn flapped_link_cuts_route_until_window_ends() {
        let (t, g0, g1, _) = topo();
        let mut e = TransferEngine::new(t);
        // Only path is g0-sw-g1; flapping g0-sw (indices 0, 2) severs it.
        e.set_fault_plan(FaultPlan::new(1).flap_link(
            0,
            2,
            SimTime::ZERO,
            SimTime::from_nanos(5_000),
        ));
        let err = e
            .transfer(g0, g1, ByteSize::bytes(1), SimTime::ZERO)
            .unwrap_err();
        assert_eq!(err, TransferError::NoRoute { src: g0, dst: g1 });
        // The flap heals and transfers resume.
        let r = e
            .transfer(g0, g1, ByteSize::bytes(1000), SimTime::from_nanos(5_000))
            .unwrap();
        assert_eq!(r.end - r.start, SimDuration::from_nanos(1020));
    }

    #[test]
    fn dropped_device_rejects_transfers() {
        let (t, g0, g1, _) = topo();
        let mut e = TransferEngine::new(t);
        // g1 has index 1; it drops out at 2 µs.
        e.set_fault_plan(FaultPlan::new(1).drop_device(1, SimTime::from_nanos(2_000)));
        assert!(e
            .transfer(g0, g1, ByteSize::bytes(1), SimTime::ZERO)
            .is_ok());
        let err = e
            .transfer(g0, g1, ByteSize::bytes(1), SimTime::from_nanos(2_000))
            .unwrap_err();
        assert_eq!(err, TransferError::DeviceDown { device: g1 });
    }

    #[test]
    fn achieved_rate() {
        let (t, g0, g1, _) = topo();
        let mut e = TransferEngine::new(t);
        let r = e
            .transfer(g0, g1, ByteSize::bytes(10_000), SimTime::ZERO)
            .unwrap();
        let rate = r.achieved_bytes_per_sec();
        // 10000 bytes over 10020 ns ≈ 0.998 GB/s.
        assert!(rate < 1e9 && rate > 0.99e9);
    }
}
