//! Machine presets reproducing Table I of the paper plus the multi-node
//! configuration of §V-D.
//!
//! Three single-node instances are modeled:
//!
//! | name | GPUs | interconnect | bandwidth character |
//! |---|---|---|---|
//! | `aws_t4` | 8× T4 | PCIe, **no peer-to-peer** | uniform (all traffic staged via CPU) |
//! | `sdsc_p100` | 4× P100 | PCIe | **locality**: same-switch > remote |
//! | `aws_v100` | 8× V100 | PCIe + NVLink | **anti-locality** on PCIe: remote > local |
//!
//! Anti-locality (paper Fig. 8a, footnote 1) is modeled by giving each
//! same-switch GPU pair a dedicated *hairpin* peer link whose bandwidth is
//! below the switch-uplink path — reproducing the measured effect of
//! unbalanced signal paths in the switch chipset. The min-hop router always
//! prefers this 1-hop peer path for local pairs, exactly as real PCIe p2p
//! does.
//!
//! Half of each machine's GPUs emulate CCI memory devices (§IV-B); the
//! [`Partition`] type captures worker/memory-device role assignment
//! including the V100 2-workers-per-device variant.

use coarse_simcore::time::SimDuration;
use coarse_simcore::units::Bandwidth;

use crate::bandwidth::BandwidthModel;
use crate::device::{DeviceId, DeviceKind};
use crate::topology::{LinkClass, Topology};

/// GPU model installed in a machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GpuSku {
    /// NVIDIA T4 (AWS g4dn-class instance).
    T4,
    /// NVIDIA P100 (SDSC instance).
    P100,
    /// NVIDIA V100 (AWS p3-class instance).
    V100,
}

impl GpuSku {
    /// Marketing name.
    pub fn name(self) -> &'static str {
        match self {
            GpuSku::T4 => "T4",
            GpuSku::P100 => "P100",
            GpuSku::V100 => "V100",
        }
    }

    /// On-device memory capacity in GiB (all three SKUs ship 16 GiB in the
    /// evaluated instances).
    pub fn memory_gib(self) -> u64 {
        16
    }
}

impl std::fmt::Display for GpuSku {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The real DGX-1/p3 NVLink hybrid-cube-mesh edge list.
pub const DGX1_NVLINK_EDGES: [(usize, usize); 16] = [
    (0, 1),
    (0, 2),
    (0, 3),
    (0, 4),
    (1, 2),
    (1, 3),
    (1, 5),
    (2, 3),
    (2, 6),
    (3, 7),
    (4, 5),
    (4, 6),
    (4, 7),
    (5, 6),
    (5, 7),
    (6, 7),
];

/// A complete machine description: fabric plus GPU inventory.
#[derive(Debug, Clone)]
pub struct Machine {
    name: String,
    topo: Topology,
    gpus: Vec<DeviceId>,
    sku: GpuSku,
    nodes: u32,
    gpus_per_switch: usize,
}

impl Machine {
    /// Machine name as used in the paper's figures (e.g. `"AWS V100"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The fabric graph.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Consumes the machine, returning its fabric (for a
    /// [`TransferEngine`](crate::engine::TransferEngine)).
    pub fn into_topology(self) -> Topology {
        self.topo
    }

    /// All GPU device ids, in PCIe order.
    pub fn gpus(&self) -> &[DeviceId] {
        &self.gpus
    }

    /// GPUs belonging to server node `node`.
    pub fn gpus_on_node(&self, node: u32) -> Vec<DeviceId> {
        self.gpus
            .iter()
            .copied()
            .filter(|&g| self.topo.device(g).node() == node)
            .collect()
    }

    /// Installed GPU model.
    pub fn sku(&self) -> GpuSku {
        self.sku
    }

    /// Number of server nodes.
    pub fn nodes(&self) -> u32 {
        self.nodes
    }

    /// GPUs attached to each PCIe switch.
    pub fn gpus_per_switch(&self) -> usize {
        self.gpus_per_switch
    }

    /// Whether this machine has any NVLink links.
    pub fn has_nvlink(&self) -> bool {
        self.topo.links().any(|l| l.class() == LinkClass::NvLink)
    }

    /// Splits the GPUs into workers and emulated CCI memory devices.
    ///
    /// With [`PartitionScheme::OneToOne`], each PCIe switch contributes its
    /// first GPU as a worker and its second as that worker's memory device —
    /// the paper's default "half the GPUs emulate memory devices".
    ///
    /// With [`PartitionScheme::TwoToOne`] (V100 only in the paper), half the
    /// memory devices are dropped and each remaining one serves two workers.
    ///
    /// # Panics
    ///
    /// Panics if the machine does not have exactly two GPUs per switch.
    pub fn partition(&self, scheme: PartitionScheme) -> Partition {
        assert_eq!(
            self.gpus_per_switch, 2,
            "partitioning assumes two GPUs per switch"
        );
        let mut workers = Vec::new();
        let mut mem_devices = Vec::new();
        let mut proxy_of = Vec::new();
        match scheme {
            PartitionScheme::OneToOne => {
                for pair in self.gpus.chunks(2) {
                    workers.push(pair[0]);
                    mem_devices.push(pair[1]);
                    proxy_of.push(mem_devices.len() - 1);
                }
            }
            PartitionScheme::TwoToOne => {
                // Switch pairs (w0,m0),(w1,_),(w2,m1),(w3,_): workers keep
                // their slots; every other memory device is retained and
                // shared with the neighboring switch's worker.
                for (i, pair) in self.gpus.chunks(2).enumerate() {
                    workers.push(pair[0]);
                    if i % 2 == 0 {
                        mem_devices.push(pair[1]);
                    }
                    proxy_of.push(i / 2);
                }
            }
        }
        Partition {
            workers,
            mem_devices,
            proxy_of,
        }
    }

    /// Interconnects `members` (the emulated CCI memory devices) with a ring
    /// of dedicated duplex CCI links — the dashed proxy-to-proxy path of the
    /// paper's Fig. 4. CCI reuses the serial-bus physical layer at ~90% of
    /// its peak (§II-C) but with a lower small-transfer penalty, and its
    /// links are independent of the PCIe tree, so opposite-direction sync
    /// groups (Fig. 11b) drive each pair bidirectionally.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two members are given.
    pub fn augment_cci_ring(&mut self, members: &[DeviceId]) {
        assert!(members.len() >= 2, "a CCI ring needs at least two devices");
        let cci = BandwidthModel::Saturating {
            peak: Bandwidth::gib_per_sec(13.0 * 0.9),
            half_size: coarse_simcore::units::ByteSize::kib(16),
        };
        for i in 0..members.len() {
            let a = members[i];
            let b = members[(i + 1) % members.len()];
            if members.len() == 2 && i == 1 {
                break; // avoid a duplicate pair for two-member rings
            }
            self.topo
                .add_duplex(a, b, cci, SimDuration::from_nanos(800), LinkClass::Cci);
        }
    }

    /// Interconnects `members` with a full mesh of duplex CCI links (every
    /// pair directly connected) — the richest CCI switch fabric, needed by
    /// tree-shaped collectives whose hops are not ring-adjacent.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two members are given.
    pub fn augment_cci_mesh(&mut self, members: &[DeviceId]) {
        assert!(members.len() >= 2, "a CCI mesh needs at least two devices");
        let cci = BandwidthModel::Saturating {
            peak: Bandwidth::gib_per_sec(13.0 * 0.9),
            half_size: coarse_simcore::units::ByteSize::kib(16),
        };
        for i in 0..members.len() {
            for j in (i + 1)..members.len() {
                self.topo.add_duplex(
                    members[i],
                    members[j],
                    cci,
                    SimDuration::from_nanos(800),
                    LinkClass::Cci,
                );
            }
        }
    }

    /// Searches for a ring over `members` in which every consecutive pair is
    /// joined by a direct NVLink; used by the NCCL-style AllReduce baseline.
    /// Brute-force over permutations (member counts are ≤ 8).
    pub fn nvlink_ring(&self, members: &[DeviceId]) -> Option<Vec<DeviceId>> {
        if members.len() < 2 {
            return None;
        }
        let direct = |a: DeviceId, b: DeviceId| {
            self.topo
                .links()
                .any(|l| l.class() == LinkClass::NvLink && l.src() == a && l.dst() == b)
        };
        // Fix the first member; permute the rest.
        let mut rest: Vec<DeviceId> = members[1..].to_vec();
        let first = members[0];
        fn permute(
            rest: &mut Vec<DeviceId>,
            chosen: &mut Vec<DeviceId>,
            first: DeviceId,
            direct: &impl Fn(DeviceId, DeviceId) -> bool,
        ) -> Option<Vec<DeviceId>> {
            if rest.is_empty() {
                let last = *chosen.last().unwrap_or(&first);
                if direct(last, first) {
                    let mut ring = vec![first];
                    ring.extend_from_slice(chosen);
                    return Some(ring);
                }
                return None;
            }
            for i in 0..rest.len() {
                let cand = rest[i];
                let prev = *chosen.last().unwrap_or(&first);
                if !direct(prev, cand) {
                    continue;
                }
                rest.remove(i);
                chosen.push(cand);
                if let Some(ring) = permute(rest, chosen, first, direct) {
                    return Some(ring);
                }
                chosen.pop();
                rest.insert(i, cand);
            }
            None
        }
        permute(&mut rest, &mut Vec::new(), first, &direct)
    }
}

/// How GPUs are split between workers and emulated memory devices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionScheme {
    /// One memory device per worker (paper default).
    OneToOne,
    /// Each memory device shared by two workers (paper's extra V100 config).
    TwoToOne,
}

/// Role assignment produced by [`Machine::partition`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// Worker GPUs, in PCIe order.
    pub workers: Vec<DeviceId>,
    /// GPUs emulating CCI memory devices.
    pub mem_devices: Vec<DeviceId>,
    /// For each worker index, the index in `mem_devices` of its proxy.
    pub proxy_of: Vec<usize>,
}

impl Partition {
    /// The memory device serving worker `w` (by worker index).
    ///
    /// # Panics
    ///
    /// Panics if `w` is out of range.
    pub fn proxy_for(&self, w: usize) -> DeviceId {
        self.mem_devices[self.proxy_of[w]]
    }

    /// Number of workers.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Number of memory devices.
    pub fn mem_device_count(&self) -> usize {
        self.mem_devices.len()
    }
}

fn us(n: u64) -> SimDuration {
    SimDuration::from_micros(n)
}

fn pcie(peak_gib: f64) -> BandwidthModel {
    BandwidthModel::pcie_like(Bandwidth::gib_per_sec(peak_gib))
}

/// Same-switch peer (hairpin) paths complete small transactions without
/// traversing the root complex, so they ramp to peak much earlier than the
/// CPU path — local latency is always better even when local *bandwidth* is
/// not (the §III-E observation).
fn hairpin(peak_gib: f64) -> BandwidthModel {
    BandwidthModel::Saturating {
        peak: Bandwidth::gib_per_sec(peak_gib),
        half_size: coarse_simcore::units::ByteSize::kib(8),
    }
}

/// Builds one node's PCIe tree: `gpus_per_switch` GPUs under each of
/// `switches` switches, all switches under the node CPU. Returns the GPU ids
/// in PCIe order.
#[allow(clippy::too_many_arguments)]
fn build_pcie_node(
    topo: &mut Topology,
    node: u32,
    switches: usize,
    gpus_per_switch: usize,
    gpu_link: BandwidthModel,
    uplink: BandwidthModel,
    hairpin: Option<BandwidthModel>,
    hop_latency: SimDuration,
) -> Vec<DeviceId> {
    let cpu = topo.add_device(DeviceKind::Cpu, format!("n{node}-cpu"), node);
    let mut gpus = Vec::new();
    for s in 0..switches {
        let sw = topo.add_device(DeviceKind::Switch, format!("n{node}-sw{s}"), node);
        topo.add_duplex(sw, cpu, uplink, hop_latency, LinkClass::Pcie);
        let mut switch_gpus = Vec::new();
        for g in 0..gpus_per_switch {
            let idx = s * gpus_per_switch + g;
            let gpu = topo.add_device(DeviceKind::Gpu, format!("n{node}-gpu{idx}"), node);
            topo.add_duplex(gpu, sw, gpu_link, hop_latency, LinkClass::Pcie);
            switch_gpus.push(gpu);
            gpus.push(gpu);
        }
        if let Some(hp) = hairpin {
            // Dedicated same-switch peer path (models measured p2p hairpin
            // bandwidth, including anti-locality when slower than the
            // uplink route).
            for i in 0..switch_gpus.len() {
                for j in (i + 1)..switch_gpus.len() {
                    topo.add_duplex(
                        switch_gpus[i],
                        switch_gpus[j],
                        hp,
                        hop_latency,
                        LinkClass::Pcie,
                    );
                }
            }
        }
    }
    gpus
}

/// Consolidated machine construction: every preset below is a parameter
/// set over this one builder, so custom fabrics (different switch counts,
/// bandwidths, cluster sizes) are built the same way — and in the same
/// device-creation order, which keeps [`DeviceId`]s stable across variants
/// of the same shape (the basis of routing-table re-profiling, §III-E).
///
/// ```
/// use coarse_fabric::machines::{GpuSku, MachineBuilder};
///
/// let m = MachineBuilder::new("lab rig", GpuSku::V100)
///     .switches(2)
///     .uplink_gib(11.0)
///     .hairpin_gib(6.0)
///     .build();
/// assert_eq!(m.gpus().len(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct MachineBuilder {
    name: String,
    sku: GpuSku,
    nodes: u32,
    switches: usize,
    gpus_per_switch: usize,
    gpu_link: BandwidthModel,
    uplink: BandwidthModel,
    hairpin: Option<BandwidthModel>,
    hop_latency: SimDuration,
    nvlink: bool,
    /// Cluster mode: give every node a NIC (and join nodes through a
    /// network switch when there is more than one).
    nics: bool,
    p2p: bool,
}

impl MachineBuilder {
    /// A builder with the V100-class defaults: one node, four switches of
    /// two GPUs, 13 GiB/s device slots, 9 GiB/s uplinks, no hairpin, no
    /// NVLink, peer-to-peer enabled.
    pub fn new(name: &str, sku: GpuSku) -> MachineBuilder {
        MachineBuilder {
            name: name.to_string(),
            sku,
            nodes: 1,
            switches: 4,
            gpus_per_switch: 2,
            gpu_link: pcie(13.0),
            uplink: pcie(9.0),
            hairpin: None,
            hop_latency: us(1),
            nvlink: false,
            nics: false,
            p2p: true,
        }
    }

    /// The builder behind a named preset (see [`MachineBuilder::presets`]),
    /// ready for further overrides before [`build`](Self::build).
    ///
    /// # Panics
    ///
    /// Panics if `name` is not a known preset.
    pub fn preset(name: &str) -> MachineBuilder {
        match name {
            "aws_t4" => MachineBuilder::new("AWS T4", GpuSku::T4)
                .gpu_link_gib(6.0) // T4 sits on a PCIe x8-equivalent slot
                .uplink_gib(12.0)
                .hop_latency(us(2))
                .p2p(false),
            "sdsc_p100" => MachineBuilder::new("SDSC P100", GpuSku::P100)
                .switches(2)
                .uplink_gib(10.0)
                .hairpin_gib(13.0), // full x16 hairpin: locality preserved
            "aws_v100" => MachineBuilder::new("AWS V100", GpuSku::V100)
                .hairpin_gib(5.0) // unbalanced switch signal paths
                .nvlink(true),
            // simlint: allow(panic-in-library, reason = "documented # Panics contract: unknown machine preset names are caller bugs")
            other => panic!(
                "unknown machine preset {other:?}; known presets: {}",
                MachineBuilder::presets().join(", ")
            ),
        }
    }

    /// Names accepted by [`MachineBuilder::preset`].
    pub fn presets() -> Vec<&'static str> {
        vec!["aws_t4", "sdsc_p100", "aws_v100"]
    }

    /// Number of PCIe switches per node.
    pub fn switches(mut self, switches: usize) -> MachineBuilder {
        self.switches = switches;
        self
    }

    /// GPUs under each switch.
    pub fn gpus_per_switch(mut self, gpus: usize) -> MachineBuilder {
        self.gpus_per_switch = gpus;
        self
    }

    /// GPU slot bandwidth (GiB/s per direction).
    pub fn gpu_link_gib(mut self, gib: f64) -> MachineBuilder {
        self.gpu_link = pcie(gib);
        self
    }

    /// Switch-to-CPU uplink bandwidth (GiB/s per direction).
    pub fn uplink_gib(mut self, gib: f64) -> MachineBuilder {
        self.uplink = pcie(gib);
        self
    }

    /// Adds a dedicated same-switch peer (hairpin) path at `gib` GiB/s per
    /// direction — below the uplink path this models the V100's measured
    /// anti-locality (Fig. 8a), above it the P100's normal locality.
    pub fn hairpin_gib(mut self, gib: f64) -> MachineBuilder {
        self.hairpin = Some(hairpin(gib));
        self
    }

    /// Per-hop PCIe latency.
    pub fn hop_latency(mut self, latency: SimDuration) -> MachineBuilder {
        self.hop_latency = latency;
        self
    }

    /// Adds the DGX-1 NVLink cube mesh over each node's GPUs.
    pub fn nvlink(mut self, nvlink: bool) -> MachineBuilder {
        self.nvlink = nvlink;
        self
    }

    /// Whether the PCIe tree supports GPU peer-to-peer (default true).
    pub fn p2p(mut self, p2p: bool) -> MachineBuilder {
        self.p2p = p2p;
        self
    }

    /// Cluster mode: replicate the node `nodes` times, give every node a
    /// NIC, and join the NICs through a 25 Gbit/s network switch when
    /// `nodes > 1` (§V-D's multi-node evaluation).
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero.
    pub fn cluster(mut self, nodes: u32) -> MachineBuilder {
        assert!(nodes >= 1, "cluster needs at least one node");
        self.nodes = nodes;
        self.nics = true;
        self
    }

    /// Builds the machine. Device creation order is fixed — per node: CPU,
    /// then per switch the switch device followed by its GPUs, then the
    /// node's NIC (cluster mode only); the network switch, when present,
    /// comes last.
    pub fn build(self) -> Machine {
        let mut topo = Topology::new();
        let mut gpus = Vec::new();
        let mut nics = Vec::new();
        for node in 0..self.nodes {
            let node_gpus = build_pcie_node(
                &mut topo,
                node,
                self.switches,
                self.gpus_per_switch,
                self.gpu_link,
                self.uplink,
                self.hairpin,
                self.hop_latency,
            );
            if self.nvlink {
                add_nvlink_mesh(&mut topo, &node_gpus);
            }
            gpus.extend_from_slice(&node_gpus);
            if self.nics {
                let nic = topo.add_device(DeviceKind::Nic, format!("n{node}-nic"), node);
                let cpu = topo.host_cpu(node);
                topo.add_duplex(nic, cpu, pcie(12.0), us(1), LinkClass::Pcie);
                nics.push(nic);
            }
        }
        if self.nodes > 1 {
            // A network switch joining all NICs at 25 Gbit/s per port.
            let net = BandwidthModel::Saturating {
                peak: Bandwidth::gbit_per_sec(25.0),
                half_size: coarse_simcore::units::ByteSize::kib(256),
            };
            let netsw = topo.add_device(DeviceKind::Switch, "net-switch", 0);
            for &nic in &nics {
                topo.add_duplex(nic, netsw, net, us(15), LinkClass::Network);
            }
        }
        if !self.p2p {
            topo.set_p2p(false);
        }
        Machine {
            name: self.name,
            topo,
            gpus,
            sku: self.sku,
            nodes: self.nodes,
            gpus_per_switch: self.gpus_per_switch,
        }
    }
}

/// AWS instance with 8× T4: PCIe only, **no GPU peer-to-peer**, uniform
/// bandwidth (every GPU-to-GPU path is staged through the CPU).
pub fn aws_t4() -> Machine {
    MachineBuilder::preset("aws_t4").build()
}

/// SDSC instance with 4× P100: PCIe with normal locality — same-switch
/// bandwidth (13 GiB/s per direction, ≈25 GiB/s bidirectional, §III-E)
/// exceeds the cross-switch path (10 GiB/s uplink bottleneck).
pub fn sdsc_p100() -> Machine {
    MachineBuilder::preset("sdsc_p100").build()
}

/// AWS p3-class instance with 8× V100: PCIe shows **anti-locality** (local
/// hairpin 5 GiB/s per direction vs 9 GiB/s through the CPU path, Fig. 8a)
/// and the GPUs are additionally joined by the DGX-1 NVLink cube mesh.
pub fn aws_v100() -> Machine {
    MachineBuilder::preset("aws_v100").build()
}

/// The V100 machine with custom hairpin and uplink bandwidths (GiB/s per
/// direction). Device ids match [`aws_v100`] exactly, so routing tables
/// profiled against one variant remain addressable against another — the
/// basis of the dynamic re-profiling experiments (§III-E: "while training
/// is in progress, COARSE periodically profiles the communication and
/// updates the routing and partitioning strategies").
///
/// # Panics
///
/// Panics if either bandwidth is not positive.
pub fn aws_v100_custom(local_hairpin_gib: f64, uplink_gib: f64) -> Machine {
    MachineBuilder::preset("aws_v100")
        .hairpin_gib(local_hairpin_gib)
        .uplink_gib(uplink_gib)
        .build()
}

fn add_nvlink_mesh(topo: &mut Topology, gpus: &[DeviceId]) {
    let nv = BandwidthModel::Saturating {
        peak: Bandwidth::gib_per_sec(22.0),
        half_size: coarse_simcore::units::ByteSize::kib(32),
    };
    for &(a, b) in DGX1_NVLINK_EDGES.iter() {
        if a < gpus.len() && b < gpus.len() {
            topo.add_duplex(
                gpus[a],
                gpus[b],
                nv,
                SimDuration::from_nanos(700),
                LinkClass::NvLink,
            );
        }
    }
}

/// A cluster of `nodes` AWS V100 machines joined by a 25 Gbit/s network
/// (§V-D's multi-node evaluation).
///
/// # Panics
///
/// Panics if `nodes` is zero.
pub fn aws_v100_cluster(nodes: u32) -> Machine {
    let name = if nodes == 1 {
        "AWS V100".to_string()
    } else {
        format!("AWS V100 x{nodes}")
    };
    let mut b = MachineBuilder::preset("aws_v100").cluster(nodes);
    b.name = name;
    b.build()
}

/// All three Table I machines, in the paper's order.
pub fn table1() -> Vec<Machine> {
    vec![aws_t4(), sdsc_p100(), aws_v100()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::TransferEngine;
    use crate::topology::LinkMask;
    use coarse_simcore::time::SimTime;
    use coarse_simcore::units::ByteSize;

    fn p2p_bw_gib(machine: Machine, a: usize, b: usize) -> f64 {
        let gpus = machine.gpus().to_vec();
        let mut eng = TransferEngine::new(machine.into_topology());
        let rec = eng
            .transfer_masked(
                gpus[a],
                gpus[b],
                ByteSize::mib(64),
                SimTime::ZERO,
                LinkMask::ALL.without(LinkClass::NvLink),
            )
            .unwrap();
        rec.achieved_bytes_per_sec() / (1u64 << 30) as f64
    }

    #[test]
    fn t4_machine_shape() {
        let m = aws_t4();
        assert_eq!(m.gpus().len(), 8);
        assert!(!m.topology().p2p_enabled());
        assert!(!m.has_nvlink());
        assert_eq!(m.sku(), GpuSku::T4);
    }

    #[test]
    fn t4_bandwidth_uniform() {
        let local = p2p_bw_gib(aws_t4(), 0, 1);
        let remote = p2p_bw_gib(aws_t4(), 0, 7);
        assert!(
            (local - remote).abs() / local < 0.01,
            "T4 paths must be uniform: local {local} vs remote {remote}"
        );
    }

    #[test]
    fn p100_has_locality() {
        let local = p2p_bw_gib(sdsc_p100(), 0, 1);
        let remote = p2p_bw_gib(sdsc_p100(), 0, 2);
        assert!(
            local > remote * 1.15,
            "P100 local ({local}) must exceed remote ({remote})"
        );
        assert!((local - 13.0).abs() < 1.0, "local ≈ 13 GiB/s, got {local}");
    }

    #[test]
    fn v100_has_anti_locality() {
        let local = p2p_bw_gib(aws_v100(), 0, 1);
        let remote = p2p_bw_gib(aws_v100(), 0, 2);
        assert!(
            remote > local * 1.4,
            "V100 remote ({remote}) must exceed local ({local})"
        );
    }

    #[test]
    fn v100_nvlink_present_and_fast() {
        let m = aws_v100();
        assert!(m.has_nvlink());
        let gpus = m.gpus().to_vec();
        let mut eng = TransferEngine::new(m.into_topology());
        let rec = eng
            .transfer(gpus[0], gpus[1], ByteSize::mib(64), SimTime::ZERO)
            .unwrap();
        let bw = rec.achieved_bytes_per_sec() / (1u64 << 30) as f64;
        assert!(bw > 18.0, "NVLink path should exceed 18 GiB/s, got {bw}");
    }

    #[test]
    fn one_to_one_partition_pairs_by_switch() {
        let m = aws_v100();
        let p = m.partition(PartitionScheme::OneToOne);
        assert_eq!(p.worker_count(), 4);
        assert_eq!(p.mem_device_count(), 4);
        // Worker i's proxy sits under the same switch.
        for (i, &w) in p.workers.iter().enumerate() {
            let proxy = p.proxy_for(i);
            assert_eq!(w.index() + 1, proxy.index(), "pairing must be same-switch");
        }
    }

    #[test]
    fn two_to_one_partition_halves_devices() {
        let m = aws_v100();
        let p = m.partition(PartitionScheme::TwoToOne);
        assert_eq!(p.worker_count(), 4);
        assert_eq!(p.mem_device_count(), 2);
        assert_eq!(p.proxy_of, vec![0, 0, 1, 1]);
    }

    #[test]
    fn nvlink_ring_among_workers_exists() {
        let m = aws_v100();
        let p = m.partition(PartitionScheme::OneToOne);
        let ring = m
            .nvlink_ring(&p.workers)
            .expect("workers form an NVLink ring");
        assert_eq!(ring.len(), 4);
        // Every consecutive pair (and the wrap-around) is NVLink-adjacent.
        for i in 0..ring.len() {
            let a = ring[i];
            let b = ring[(i + 1) % ring.len()];
            assert!(m
                .topology()
                .links()
                .any(|l| l.class() == LinkClass::NvLink && l.src() == a && l.dst() == b));
        }
    }

    #[test]
    fn no_nvlink_ring_on_p100() {
        let m = sdsc_p100();
        let gpus = m.gpus().to_vec();
        assert!(m.nvlink_ring(&gpus).is_none());
    }

    #[test]
    fn cluster_spans_nodes() {
        let m = aws_v100_cluster(2);
        assert_eq!(m.nodes(), 2);
        assert_eq!(m.gpus().len(), 16);
        assert_eq!(m.gpus_on_node(0).len(), 8);
        assert_eq!(m.gpus_on_node(1).len(), 8);
        // Cross-node transfer possible but slow.
        let gpus = m.gpus().to_vec();
        let mut eng = TransferEngine::new(m.into_topology());
        let rec = eng
            .transfer(gpus[0], gpus[8], ByteSize::mib(64), SimTime::ZERO)
            .unwrap();
        let bw = rec.achieved_bytes_per_sec() / 1e9;
        assert!(
            bw < 3.2,
            "cross-node must bottleneck on the 25 Gbit NIC, got {bw} GB/s"
        );
    }

    #[test]
    fn builder_presets_match_free_functions() {
        for (preset, reference) in [
            ("aws_t4", aws_t4()),
            ("sdsc_p100", sdsc_p100()),
            ("aws_v100", aws_v100()),
        ] {
            let built = MachineBuilder::preset(preset).build();
            assert_eq!(built.name(), reference.name());
            assert_eq!(built.gpus(), reference.gpus());
            assert_eq!(built.sku(), reference.sku());
            assert_eq!(
                built.topology().p2p_enabled(),
                reference.topology().p2p_enabled()
            );
            assert_eq!(
                built.topology().links().count(),
                reference.topology().links().count(),
                "{preset}: link sets must match"
            );
        }
    }

    #[test]
    fn builder_customization_changes_shape() {
        let m = MachineBuilder::new("lab", GpuSku::P100)
            .switches(3)
            .gpus_per_switch(2)
            .uplink_gib(11.0)
            .build();
        assert_eq!(m.gpus().len(), 6);
        assert_eq!(m.name(), "lab");
        assert_eq!(m.nodes(), 1);
    }

    #[test]
    fn builder_cluster_matches_free_function() {
        let built = MachineBuilder::preset("aws_v100").cluster(2).build();
        let reference = aws_v100_cluster(2);
        assert_eq!(built.gpus(), reference.gpus());
        assert_eq!(
            built.topology().links().count(),
            reference.topology().links().count()
        );
        assert_eq!(reference.name(), "AWS V100 x2");
    }

    #[test]
    #[should_panic(expected = "unknown machine preset")]
    fn builder_unknown_preset_panics() {
        let _ = MachineBuilder::preset("cray-1");
    }

    #[test]
    fn table1_lists_three_machines() {
        let names: Vec<String> = table1().iter().map(|m| m.name().to_string()).collect();
        assert_eq!(names, vec!["AWS T4", "SDSC P100", "AWS V100"]);
    }
}
