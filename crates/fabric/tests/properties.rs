//! Property tests for the fabric: bandwidth curves, routing, and transfer
//! scheduling invariants, driven by the in-repo deterministic harness.

use coarse_fabric::bandwidth::BandwidthModel;
use coarse_fabric::device::DeviceKind;
use coarse_fabric::engine::TransferEngine;
use coarse_fabric::machines;
use coarse_fabric::topology::{LinkClass, Topology};
use coarse_simcore::check::{run_cases, Gen};
use coarse_simcore::prelude::*;

/// Effective bandwidth is monotone nondecreasing in size and bounded by
/// the peak for any saturating model.
#[test]
fn saturating_model_monotone() {
    run_cases("saturating_model_monotone", 128, |g: &mut Gen| {
        let m = BandwidthModel::Saturating {
            peak: Bandwidth::mib_per_sec(g.u64_in(1..100_000) as f64),
            half_size: ByteSize::kib(g.u64_in(1..10_000)),
        };
        let a = g.u64_in(1..u32::MAX as u64);
        let b = g.u64_in(1..u32::MAX as u64);
        let (lo, hi) = (a.min(b), a.max(b));
        let e_lo = m.effective(ByteSize::bytes(lo)).as_bytes_per_sec();
        let e_hi = m.effective(ByteSize::bytes(hi)).as_bytes_per_sec();
        assert!(e_lo <= e_hi);
        assert!(e_hi <= m.peak().as_bytes_per_sec());
    });
}

/// On any of the preset machines, a transfer between two random GPUs
/// succeeds, starts no earlier than its arrival, and its duration is at
/// least the payload over the fastest link's peak.
#[test]
fn transfers_well_formed() {
    run_cases("transfers_well_formed", 48, |g: &mut Gen| {
        let machine = machines::table1().swap_remove(g.usize_in(0..3));
        let gpus = machine.gpus().to_vec();
        let src = g.usize_in(0..8) % gpus.len();
        let dst = g.usize_in(0..8) % gpus.len();
        if src == dst {
            return;
        }
        let mut engine = TransferEngine::new(machine.into_topology());
        let arrival = SimTime::from_nanos(g.u64_in(0..1_000_000));
        let size = ByteSize::kib(g.u64_in(1..100_000));
        let rec = engine
            .transfer(gpus[src], gpus[dst], size, arrival)
            .unwrap();
        assert!(rec.start >= arrival);
        assert!(rec.end > rec.start);
        // Nothing moves faster than 26 GiB/s on any preset link.
        let floor = Bandwidth::gib_per_sec(26.0).transfer_time(size);
        assert!(rec.elapsed() >= floor);
    });
}

/// Back-to-back same-direction transfers never finish earlier than a
/// single transfer of the combined size (FIFO link capacity).
#[test]
fn serialization_conservation() {
    run_cases("serialization_conservation", 64, |g: &mut Gen| {
        let size_a = g.u64_in(1..10_000);
        let size_b = g.u64_in(1..10_000);
        let machine = machines::sdsc_p100();
        let gpus = machine.gpus().to_vec();
        let topo = machine.into_topology();
        let mut e1 = TransferEngine::new(topo.clone());
        let a = e1
            .transfer(gpus[0], gpus[1], ByteSize::kib(size_a), SimTime::ZERO)
            .unwrap();
        let b = e1
            .transfer(gpus[0], gpus[1], ByteSize::kib(size_b), SimTime::ZERO)
            .unwrap();
        let pair_end = a.end.max(b.end);
        let mut e2 = TransferEngine::new(topo);
        let combined = e2
            .transfer(
                gpus[0],
                gpus[1],
                ByteSize::kib(size_a + size_b),
                SimTime::ZERO,
            )
            .unwrap();
        // Two transfers pay two latencies but the same serialization, so
        // they can never beat the combined transfer minus one hop latency
        // allowance; assert the weaker, always-true direction:
        assert!(pair_end.as_nanos() + 10_000 >= combined.end.as_nanos());
    });
}

/// Routes never traverse a non-forwarding endpoint mid-path.
#[test]
fn routes_respect_forwarding() {
    run_cases("routes_respect_forwarding", 64, |g: &mut Gen| {
        let machine = machines::table1().swap_remove(g.usize_in(0..3));
        let gpus = machine.gpus().to_vec();
        let src = g.usize_in(0..8) % gpus.len();
        let dst = g.usize_in(0..8) % gpus.len();
        if src == dst {
            return;
        }
        let topo = machine.topology();
        if let Some(route) = topo.route(gpus[src], gpus[dst]) {
            for &lid in &route.links()[1..] {
                let hop_src = topo.link(lid).src();
                assert!(
                    topo.device(hop_src).kind().can_forward(),
                    "route forwards through {:?}",
                    topo.device(hop_src).kind()
                );
            }
        }
    });
}

/// Adding links never disconnects anything: augmenting a machine with a
/// CCI ring or mesh keeps all presets validation-clean.
#[test]
fn augmentation_preserves_validity() {
    for scheme in [
        machines::PartitionScheme::OneToOne,
        machines::PartitionScheme::TwoToOne,
    ] {
        let mut m = machines::aws_v100();
        let part = m.partition(scheme);
        m.augment_cci_ring(&part.mem_devices);
        assert!(coarse_fabric::diagnostics::validate(m.topology()).is_empty());
        let mut m2 = machines::aws_v100();
        m2.augment_cci_mesh(&part.mem_devices);
        assert!(coarse_fabric::diagnostics::validate(m2.topology()).is_empty());
    }
}

/// Every shipped machine preset — the Table I instances, the custom
/// builder, and the multi-node cluster — passes topology validation, both
/// bare and with the CCI augmentations COARSE deploys.
#[test]
fn all_presets_validate() {
    let mut presets: Vec<(String, machines::Machine)> = machines::table1()
        .into_iter()
        .map(|m| (m.name().to_string(), m))
        .collect();
    presets.push(("aws_v100_cluster(2)".into(), machines::aws_v100_cluster(2)));
    presets.push(("aws_v100_cluster(4)".into(), machines::aws_v100_cluster(4)));
    presets.push((
        "aws_v100_custom".into(),
        machines::aws_v100_custom(10.0, 12.0),
    ));
    assert!(presets.len() >= 5, "expected the full preset roster");
    for (name, machine) in presets {
        let issues = coarse_fabric::diagnostics::validate(machine.topology());
        assert!(issues.is_empty(), "{name}: {issues:?}");
        for scheme in [
            machines::PartitionScheme::OneToOne,
            machines::PartitionScheme::TwoToOne,
        ] {
            let part = machine.partition(scheme);
            if part.mem_devices.len() < 2 {
                continue;
            }
            let mut ringed = machine.clone();
            ringed.augment_cci_ring(&part.mem_devices);
            let issues = coarse_fabric::diagnostics::validate(ringed.topology());
            assert!(issues.is_empty(), "{name} + ring ({scheme:?}): {issues:?}");
            let mut meshed = machine.clone();
            meshed.augment_cci_mesh(&part.mem_devices);
            let issues = coarse_fabric::diagnostics::validate(meshed.topology());
            assert!(issues.is_empty(), "{name} + mesh ({scheme:?}): {issues:?}");
        }
    }
}

/// The transfer engine and a hand-built two-hop chain agree on exact
/// timing: start at max busy, duration = latency + bottleneck serialization.
#[test]
fn engine_timing_exact() {
    let mut t = Topology::new();
    let a = t.add_device(DeviceKind::Gpu, "a", 0);
    let b = t.add_device(DeviceKind::Gpu, "b", 0);
    let sw = t.add_device(DeviceKind::Switch, "sw", 0);
    let fast = BandwidthModel::Flat {
        rate: Bandwidth::bytes_per_sec(2e9),
    };
    let slow = BandwidthModel::Flat {
        rate: Bandwidth::bytes_per_sec(1e9),
    };
    t.add_duplex(a, sw, fast, SimDuration::from_nanos(5), LinkClass::Pcie);
    t.add_duplex(sw, b, slow, SimDuration::from_nanos(7), LinkClass::Pcie);
    let mut e = TransferEngine::new(t);
    let rec = e
        .transfer(a, b, ByteSize::bytes(1000), SimTime::from_nanos(100))
        .unwrap();
    // serialization at bottleneck (1 B/ns): 1000 ns; latency 12 ns.
    assert_eq!(rec.start, SimTime::from_nanos(100));
    assert_eq!(rec.end, SimTime::from_nanos(100 + 1000 + 12));
}
